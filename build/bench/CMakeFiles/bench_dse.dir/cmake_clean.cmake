file(REMOVE_RECURSE
  "CMakeFiles/bench_dse.dir/bench_dse.cpp.o"
  "CMakeFiles/bench_dse.dir/bench_dse.cpp.o.d"
  "bench_dse"
  "bench_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
