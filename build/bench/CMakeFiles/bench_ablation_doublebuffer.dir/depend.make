# Empty dependencies file for bench_ablation_doublebuffer.
# This may be replaced when dependencies are built.
