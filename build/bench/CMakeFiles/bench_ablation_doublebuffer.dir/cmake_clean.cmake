file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_doublebuffer.dir/bench_ablation_doublebuffer.cpp.o"
  "CMakeFiles/bench_ablation_doublebuffer.dir/bench_ablation_doublebuffer.cpp.o.d"
  "bench_ablation_doublebuffer"
  "bench_ablation_doublebuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_doublebuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
