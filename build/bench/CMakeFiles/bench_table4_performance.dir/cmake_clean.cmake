file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_performance.dir/bench_table4_performance.cpp.o"
  "CMakeFiles/bench_table4_performance.dir/bench_table4_performance.cpp.o.d"
  "bench_table4_performance"
  "bench_table4_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
