file(REMOVE_RECURSE
  "CMakeFiles/bench_accuracy_admm.dir/bench_accuracy_admm.cpp.o"
  "CMakeFiles/bench_accuracy_admm.dir/bench_accuracy_admm.cpp.o.d"
  "bench_accuracy_admm"
  "bench_accuracy_admm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_accuracy_admm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
