# Empty dependencies file for bench_accuracy_admm.
# This may be replaced when dependencies are built.
