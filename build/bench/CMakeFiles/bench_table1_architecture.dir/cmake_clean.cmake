file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_architecture.dir/bench_table1_architecture.cpp.o"
  "CMakeFiles/bench_table1_architecture.dir/bench_table1_architecture.cpp.o.d"
  "bench_table1_architecture"
  "bench_table1_architecture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_architecture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
