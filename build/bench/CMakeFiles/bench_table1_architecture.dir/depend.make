# Empty dependencies file for bench_table1_architecture.
# This may be replaced when dependencies are built.
