# Empty compiler generated dependencies file for bench_motivation_r2p1d_vs_c3d.
# This may be replaced when dependencies are built.
