file(REMOVE_RECURSE
  "CMakeFiles/bench_motivation_r2p1d_vs_c3d.dir/bench_motivation_r2p1d_vs_c3d.cpp.o"
  "CMakeFiles/bench_motivation_r2p1d_vs_c3d.dir/bench_motivation_r2p1d_vs_c3d.cpp.o.d"
  "bench_motivation_r2p1d_vs_c3d"
  "bench_motivation_r2p1d_vs_c3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation_r2p1d_vs_c3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
