# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_motivation_r2p1d_vs_c3d.
