
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/init.cpp" "src/tensor/CMakeFiles/hwp_tensor.dir/init.cpp.o" "gcc" "src/tensor/CMakeFiles/hwp_tensor.dir/init.cpp.o.d"
  "/root/repo/src/tensor/serialize.cpp" "src/tensor/CMakeFiles/hwp_tensor.dir/serialize.cpp.o" "gcc" "src/tensor/CMakeFiles/hwp_tensor.dir/serialize.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/tensor/CMakeFiles/hwp_tensor.dir/shape.cpp.o" "gcc" "src/tensor/CMakeFiles/hwp_tensor.dir/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor_ops.cpp" "src/tensor/CMakeFiles/hwp_tensor.dir/tensor_ops.cpp.o" "gcc" "src/tensor/CMakeFiles/hwp_tensor.dir/tensor_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/hwp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
