file(REMOVE_RECURSE
  "CMakeFiles/hwp_tensor.dir/init.cpp.o"
  "CMakeFiles/hwp_tensor.dir/init.cpp.o.d"
  "CMakeFiles/hwp_tensor.dir/serialize.cpp.o"
  "CMakeFiles/hwp_tensor.dir/serialize.cpp.o.d"
  "CMakeFiles/hwp_tensor.dir/shape.cpp.o"
  "CMakeFiles/hwp_tensor.dir/shape.cpp.o.d"
  "CMakeFiles/hwp_tensor.dir/tensor_ops.cpp.o"
  "CMakeFiles/hwp_tensor.dir/tensor_ops.cpp.o.d"
  "libhwp_tensor.a"
  "libhwp_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwp_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
