file(REMOVE_RECURSE
  "libhwp_tensor.a"
)
