# Empty compiler generated dependencies file for hwp_tensor.
# This may be replaced when dependencies are built.
