file(REMOVE_RECURSE
  "CMakeFiles/hwp_report.dir/table.cpp.o"
  "CMakeFiles/hwp_report.dir/table.cpp.o.d"
  "libhwp_report.a"
  "libhwp_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwp_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
