file(REMOVE_RECURSE
  "libhwp_report.a"
)
