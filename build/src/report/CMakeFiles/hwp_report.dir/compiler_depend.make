# Empty compiler generated dependencies file for hwp_report.
# This may be replaced when dependencies are built.
