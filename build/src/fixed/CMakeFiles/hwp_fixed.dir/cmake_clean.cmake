file(REMOVE_RECURSE
  "CMakeFiles/hwp_fixed.dir/quantize.cpp.o"
  "CMakeFiles/hwp_fixed.dir/quantize.cpp.o.d"
  "libhwp_fixed.a"
  "libhwp_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwp_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
