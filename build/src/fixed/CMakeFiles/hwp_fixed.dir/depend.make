# Empty dependencies file for hwp_fixed.
# This may be replaced when dependencies are built.
