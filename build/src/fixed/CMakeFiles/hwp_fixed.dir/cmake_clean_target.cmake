file(REMOVE_RECURSE
  "libhwp_fixed.a"
)
