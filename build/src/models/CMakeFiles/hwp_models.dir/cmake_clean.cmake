file(REMOVE_RECURSE
  "CMakeFiles/hwp_models.dir/network_spec.cpp.o"
  "CMakeFiles/hwp_models.dir/network_spec.cpp.o.d"
  "CMakeFiles/hwp_models.dir/tiny_c3d.cpp.o"
  "CMakeFiles/hwp_models.dir/tiny_c3d.cpp.o.d"
  "CMakeFiles/hwp_models.dir/tiny_r2plus1d.cpp.o"
  "CMakeFiles/hwp_models.dir/tiny_r2plus1d.cpp.o.d"
  "libhwp_models.a"
  "libhwp_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwp_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
