file(REMOVE_RECURSE
  "libhwp_models.a"
)
