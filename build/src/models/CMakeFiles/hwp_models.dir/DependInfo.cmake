
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/network_spec.cpp" "src/models/CMakeFiles/hwp_models.dir/network_spec.cpp.o" "gcc" "src/models/CMakeFiles/hwp_models.dir/network_spec.cpp.o.d"
  "/root/repo/src/models/tiny_c3d.cpp" "src/models/CMakeFiles/hwp_models.dir/tiny_c3d.cpp.o" "gcc" "src/models/CMakeFiles/hwp_models.dir/tiny_c3d.cpp.o.d"
  "/root/repo/src/models/tiny_r2plus1d.cpp" "src/models/CMakeFiles/hwp_models.dir/tiny_r2plus1d.cpp.o" "gcc" "src/models/CMakeFiles/hwp_models.dir/tiny_r2plus1d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hwp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hwp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hwp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
