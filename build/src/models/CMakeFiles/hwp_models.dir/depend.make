# Empty dependencies file for hwp_models.
# This may be replaced when dependencies are built.
