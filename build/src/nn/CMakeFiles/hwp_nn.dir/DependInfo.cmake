
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/hwp_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/hwp_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm3d.cpp" "src/nn/CMakeFiles/hwp_nn.dir/batchnorm3d.cpp.o" "gcc" "src/nn/CMakeFiles/hwp_nn.dir/batchnorm3d.cpp.o.d"
  "/root/repo/src/nn/checkpoint.cpp" "src/nn/CMakeFiles/hwp_nn.dir/checkpoint.cpp.o" "gcc" "src/nn/CMakeFiles/hwp_nn.dir/checkpoint.cpp.o.d"
  "/root/repo/src/nn/conv3d.cpp" "src/nn/CMakeFiles/hwp_nn.dir/conv3d.cpp.o" "gcc" "src/nn/CMakeFiles/hwp_nn.dir/conv3d.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/nn/CMakeFiles/hwp_nn.dir/linear.cpp.o" "gcc" "src/nn/CMakeFiles/hwp_nn.dir/linear.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/hwp_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/hwp_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/hwp_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/hwp_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pool3d.cpp" "src/nn/CMakeFiles/hwp_nn.dir/pool3d.cpp.o" "gcc" "src/nn/CMakeFiles/hwp_nn.dir/pool3d.cpp.o.d"
  "/root/repo/src/nn/r2plus1d_block.cpp" "src/nn/CMakeFiles/hwp_nn.dir/r2plus1d_block.cpp.o" "gcc" "src/nn/CMakeFiles/hwp_nn.dir/r2plus1d_block.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/hwp_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/hwp_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/hwp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hwp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
