file(REMOVE_RECURSE
  "libhwp_nn.a"
)
