# Empty compiler generated dependencies file for hwp_nn.
# This may be replaced when dependencies are built.
