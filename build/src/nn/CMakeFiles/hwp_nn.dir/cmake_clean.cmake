file(REMOVE_RECURSE
  "CMakeFiles/hwp_nn.dir/activations.cpp.o"
  "CMakeFiles/hwp_nn.dir/activations.cpp.o.d"
  "CMakeFiles/hwp_nn.dir/batchnorm3d.cpp.o"
  "CMakeFiles/hwp_nn.dir/batchnorm3d.cpp.o.d"
  "CMakeFiles/hwp_nn.dir/checkpoint.cpp.o"
  "CMakeFiles/hwp_nn.dir/checkpoint.cpp.o.d"
  "CMakeFiles/hwp_nn.dir/conv3d.cpp.o"
  "CMakeFiles/hwp_nn.dir/conv3d.cpp.o.d"
  "CMakeFiles/hwp_nn.dir/linear.cpp.o"
  "CMakeFiles/hwp_nn.dir/linear.cpp.o.d"
  "CMakeFiles/hwp_nn.dir/loss.cpp.o"
  "CMakeFiles/hwp_nn.dir/loss.cpp.o.d"
  "CMakeFiles/hwp_nn.dir/optimizer.cpp.o"
  "CMakeFiles/hwp_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/hwp_nn.dir/pool3d.cpp.o"
  "CMakeFiles/hwp_nn.dir/pool3d.cpp.o.d"
  "CMakeFiles/hwp_nn.dir/r2plus1d_block.cpp.o"
  "CMakeFiles/hwp_nn.dir/r2plus1d_block.cpp.o.d"
  "CMakeFiles/hwp_nn.dir/trainer.cpp.o"
  "CMakeFiles/hwp_nn.dir/trainer.cpp.o.d"
  "libhwp_nn.a"
  "libhwp_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwp_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
