# Empty compiler generated dependencies file for hwp_data.
# This may be replaced when dependencies are built.
