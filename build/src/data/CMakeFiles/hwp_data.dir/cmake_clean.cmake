file(REMOVE_RECURSE
  "CMakeFiles/hwp_data.dir/synthetic_video.cpp.o"
  "CMakeFiles/hwp_data.dir/synthetic_video.cpp.o.d"
  "libhwp_data.a"
  "libhwp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
