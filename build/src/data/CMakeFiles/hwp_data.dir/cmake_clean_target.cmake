file(REMOVE_RECURSE
  "libhwp_data.a"
)
