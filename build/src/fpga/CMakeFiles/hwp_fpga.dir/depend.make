# Empty dependencies file for hwp_fpga.
# This may be replaced when dependencies are built.
