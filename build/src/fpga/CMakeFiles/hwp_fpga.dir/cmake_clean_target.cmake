file(REMOVE_RECURSE
  "libhwp_fpga.a"
)
