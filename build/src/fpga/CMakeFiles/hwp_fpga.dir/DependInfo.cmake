
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/bandwidth_model.cpp" "src/fpga/CMakeFiles/hwp_fpga.dir/bandwidth_model.cpp.o" "gcc" "src/fpga/CMakeFiles/hwp_fpga.dir/bandwidth_model.cpp.o.d"
  "/root/repo/src/fpga/device.cpp" "src/fpga/CMakeFiles/hwp_fpga.dir/device.cpp.o" "gcc" "src/fpga/CMakeFiles/hwp_fpga.dir/device.cpp.o.d"
  "/root/repo/src/fpga/dse.cpp" "src/fpga/CMakeFiles/hwp_fpga.dir/dse.cpp.o" "gcc" "src/fpga/CMakeFiles/hwp_fpga.dir/dse.cpp.o.d"
  "/root/repo/src/fpga/model_compiler.cpp" "src/fpga/CMakeFiles/hwp_fpga.dir/model_compiler.cpp.o" "gcc" "src/fpga/CMakeFiles/hwp_fpga.dir/model_compiler.cpp.o.d"
  "/root/repo/src/fpga/perf_model.cpp" "src/fpga/CMakeFiles/hwp_fpga.dir/perf_model.cpp.o" "gcc" "src/fpga/CMakeFiles/hwp_fpga.dir/perf_model.cpp.o.d"
  "/root/repo/src/fpga/resource_model.cpp" "src/fpga/CMakeFiles/hwp_fpga.dir/resource_model.cpp.o" "gcc" "src/fpga/CMakeFiles/hwp_fpga.dir/resource_model.cpp.o.d"
  "/root/repo/src/fpga/scheduler.cpp" "src/fpga/CMakeFiles/hwp_fpga.dir/scheduler.cpp.o" "gcc" "src/fpga/CMakeFiles/hwp_fpga.dir/scheduler.cpp.o.d"
  "/root/repo/src/fpga/spec_masks.cpp" "src/fpga/CMakeFiles/hwp_fpga.dir/spec_masks.cpp.o" "gcc" "src/fpga/CMakeFiles/hwp_fpga.dir/spec_masks.cpp.o.d"
  "/root/repo/src/fpga/tiled_conv_sim.cpp" "src/fpga/CMakeFiles/hwp_fpga.dir/tiled_conv_sim.cpp.o" "gcc" "src/fpga/CMakeFiles/hwp_fpga.dir/tiled_conv_sim.cpp.o.d"
  "/root/repo/src/fpga/tiling.cpp" "src/fpga/CMakeFiles/hwp_fpga.dir/tiling.cpp.o" "gcc" "src/fpga/CMakeFiles/hwp_fpga.dir/tiling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hwp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/hwp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/hwp_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hwp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hwp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hwp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
