file(REMOVE_RECURSE
  "CMakeFiles/hwp_fpga.dir/bandwidth_model.cpp.o"
  "CMakeFiles/hwp_fpga.dir/bandwidth_model.cpp.o.d"
  "CMakeFiles/hwp_fpga.dir/device.cpp.o"
  "CMakeFiles/hwp_fpga.dir/device.cpp.o.d"
  "CMakeFiles/hwp_fpga.dir/dse.cpp.o"
  "CMakeFiles/hwp_fpga.dir/dse.cpp.o.d"
  "CMakeFiles/hwp_fpga.dir/model_compiler.cpp.o"
  "CMakeFiles/hwp_fpga.dir/model_compiler.cpp.o.d"
  "CMakeFiles/hwp_fpga.dir/perf_model.cpp.o"
  "CMakeFiles/hwp_fpga.dir/perf_model.cpp.o.d"
  "CMakeFiles/hwp_fpga.dir/resource_model.cpp.o"
  "CMakeFiles/hwp_fpga.dir/resource_model.cpp.o.d"
  "CMakeFiles/hwp_fpga.dir/scheduler.cpp.o"
  "CMakeFiles/hwp_fpga.dir/scheduler.cpp.o.d"
  "CMakeFiles/hwp_fpga.dir/spec_masks.cpp.o"
  "CMakeFiles/hwp_fpga.dir/spec_masks.cpp.o.d"
  "CMakeFiles/hwp_fpga.dir/tiled_conv_sim.cpp.o"
  "CMakeFiles/hwp_fpga.dir/tiled_conv_sim.cpp.o.d"
  "CMakeFiles/hwp_fpga.dir/tiling.cpp.o"
  "CMakeFiles/hwp_fpga.dir/tiling.cpp.o.d"
  "libhwp_fpga.a"
  "libhwp_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwp_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
