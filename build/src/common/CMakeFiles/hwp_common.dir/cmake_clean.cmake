file(REMOVE_RECURSE
  "CMakeFiles/hwp_common.dir/logging.cpp.o"
  "CMakeFiles/hwp_common.dir/logging.cpp.o.d"
  "CMakeFiles/hwp_common.dir/strings.cpp.o"
  "CMakeFiles/hwp_common.dir/strings.cpp.o.d"
  "libhwp_common.a"
  "libhwp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
