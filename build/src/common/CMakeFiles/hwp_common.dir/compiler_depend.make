# Empty compiler generated dependencies file for hwp_common.
# This may be replaced when dependencies are built.
