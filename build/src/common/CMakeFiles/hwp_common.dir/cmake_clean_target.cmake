file(REMOVE_RECURSE
  "libhwp_common.a"
)
