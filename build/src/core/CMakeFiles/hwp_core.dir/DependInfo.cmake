
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admm.cpp" "src/core/CMakeFiles/hwp_core.dir/admm.cpp.o" "gcc" "src/core/CMakeFiles/hwp_core.dir/admm.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/hwp_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/hwp_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/block_partition.cpp" "src/core/CMakeFiles/hwp_core.dir/block_partition.cpp.o" "gcc" "src/core/CMakeFiles/hwp_core.dir/block_partition.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/hwp_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/hwp_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/projection.cpp" "src/core/CMakeFiles/hwp_core.dir/projection.cpp.o" "gcc" "src/core/CMakeFiles/hwp_core.dir/projection.cpp.o.d"
  "/root/repo/src/core/sensitivity.cpp" "src/core/CMakeFiles/hwp_core.dir/sensitivity.cpp.o" "gcc" "src/core/CMakeFiles/hwp_core.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/hwp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hwp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hwp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
