# Empty dependencies file for hwp_core.
# This may be replaced when dependencies are built.
