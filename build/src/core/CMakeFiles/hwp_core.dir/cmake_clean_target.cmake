file(REMOVE_RECURSE
  "libhwp_core.a"
)
