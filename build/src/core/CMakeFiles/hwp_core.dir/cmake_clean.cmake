file(REMOVE_RECURSE
  "CMakeFiles/hwp_core.dir/admm.cpp.o"
  "CMakeFiles/hwp_core.dir/admm.cpp.o.d"
  "CMakeFiles/hwp_core.dir/baselines.cpp.o"
  "CMakeFiles/hwp_core.dir/baselines.cpp.o.d"
  "CMakeFiles/hwp_core.dir/block_partition.cpp.o"
  "CMakeFiles/hwp_core.dir/block_partition.cpp.o.d"
  "CMakeFiles/hwp_core.dir/pipeline.cpp.o"
  "CMakeFiles/hwp_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/hwp_core.dir/projection.cpp.o"
  "CMakeFiles/hwp_core.dir/projection.cpp.o.d"
  "CMakeFiles/hwp_core.dir/sensitivity.cpp.o"
  "CMakeFiles/hwp_core.dir/sensitivity.cpp.o.d"
  "libhwp_core.a"
  "libhwp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
