# Empty dependencies file for prune_video_model.
# This may be replaced when dependencies are built.
