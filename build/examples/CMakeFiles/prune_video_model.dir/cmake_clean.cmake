file(REMOVE_RECURSE
  "CMakeFiles/prune_video_model.dir/prune_video_model.cpp.o"
  "CMakeFiles/prune_video_model.dir/prune_video_model.cpp.o.d"
  "prune_video_model"
  "prune_video_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prune_video_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
