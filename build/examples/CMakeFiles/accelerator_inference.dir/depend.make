# Empty dependencies file for accelerator_inference.
# This may be replaced when dependencies are built.
