file(REMOVE_RECURSE
  "CMakeFiles/accelerator_inference.dir/accelerator_inference.cpp.o"
  "CMakeFiles/accelerator_inference.dir/accelerator_inference.cpp.o.d"
  "accelerator_inference"
  "accelerator_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
