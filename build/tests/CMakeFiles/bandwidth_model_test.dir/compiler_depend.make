# Empty compiler generated dependencies file for bandwidth_model_test.
# This may be replaced when dependencies are built.
