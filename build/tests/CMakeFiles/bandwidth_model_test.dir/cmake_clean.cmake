file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_model_test.dir/bandwidth_model_test.cpp.o"
  "CMakeFiles/bandwidth_model_test.dir/bandwidth_model_test.cpp.o.d"
  "bandwidth_model_test"
  "bandwidth_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
