file(REMOVE_RECURSE
  "CMakeFiles/block_partition_test.dir/block_partition_test.cpp.o"
  "CMakeFiles/block_partition_test.dir/block_partition_test.cpp.o.d"
  "block_partition_test"
  "block_partition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
