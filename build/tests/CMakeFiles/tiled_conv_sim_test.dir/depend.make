# Empty dependencies file for tiled_conv_sim_test.
# This may be replaced when dependencies are built.
