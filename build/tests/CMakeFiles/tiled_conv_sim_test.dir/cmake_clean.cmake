file(REMOVE_RECURSE
  "CMakeFiles/tiled_conv_sim_test.dir/tiled_conv_sim_test.cpp.o"
  "CMakeFiles/tiled_conv_sim_test.dir/tiled_conv_sim_test.cpp.o.d"
  "tiled_conv_sim_test"
  "tiled_conv_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiled_conv_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
