# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tiled_conv_sim_test.
