file(REMOVE_RECURSE
  "CMakeFiles/loss_optimizer_test.dir/loss_optimizer_test.cpp.o"
  "CMakeFiles/loss_optimizer_test.dir/loss_optimizer_test.cpp.o.d"
  "loss_optimizer_test"
  "loss_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loss_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
