file(REMOVE_RECURSE
  "CMakeFiles/conv3d_test.dir/conv3d_test.cpp.o"
  "CMakeFiles/conv3d_test.dir/conv3d_test.cpp.o.d"
  "conv3d_test"
  "conv3d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
