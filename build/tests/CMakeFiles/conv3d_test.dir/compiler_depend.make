# Empty compiler generated dependencies file for conv3d_test.
# This may be replaced when dependencies are built.
