file(REMOVE_RECURSE
  "CMakeFiles/sim_perf_consistency_test.dir/sim_perf_consistency_test.cpp.o"
  "CMakeFiles/sim_perf_consistency_test.dir/sim_perf_consistency_test.cpp.o.d"
  "sim_perf_consistency_test"
  "sim_perf_consistency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_perf_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
