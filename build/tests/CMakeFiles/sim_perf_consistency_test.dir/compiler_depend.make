# Empty compiler generated dependencies file for sim_perf_consistency_test.
# This may be replaced when dependencies are built.
