file(REMOVE_RECURSE
  "CMakeFiles/model_compiler_test.dir/model_compiler_test.cpp.o"
  "CMakeFiles/model_compiler_test.dir/model_compiler_test.cpp.o.d"
  "model_compiler_test"
  "model_compiler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
