# Empty dependencies file for model_compiler_test.
# This may be replaced when dependencies are built.
