# Empty compiler generated dependencies file for resource_model_test.
# This may be replaced when dependencies are built.
