file(REMOVE_RECURSE
  "CMakeFiles/resource_model_test.dir/resource_model_test.cpp.o"
  "CMakeFiles/resource_model_test.dir/resource_model_test.cpp.o.d"
  "resource_model_test"
  "resource_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
