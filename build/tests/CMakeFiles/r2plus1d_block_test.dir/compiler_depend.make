# Empty compiler generated dependencies file for r2plus1d_block_test.
# This may be replaced when dependencies are built.
