# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for r2plus1d_block_test.
