file(REMOVE_RECURSE
  "CMakeFiles/r2plus1d_block_test.dir/r2plus1d_block_test.cpp.o"
  "CMakeFiles/r2plus1d_block_test.dir/r2plus1d_block_test.cpp.o.d"
  "r2plus1d_block_test"
  "r2plus1d_block_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/r2plus1d_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
