file(REMOVE_RECURSE
  "CMakeFiles/network_spec_test.dir/network_spec_test.cpp.o"
  "CMakeFiles/network_spec_test.dir/network_spec_test.cpp.o.d"
  "network_spec_test"
  "network_spec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
