file(REMOVE_RECURSE
  "CMakeFiles/projection_test.dir/projection_test.cpp.o"
  "CMakeFiles/projection_test.dir/projection_test.cpp.o.d"
  "projection_test"
  "projection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
