file(REMOVE_RECURSE
  "CMakeFiles/admm_test.dir/admm_test.cpp.o"
  "CMakeFiles/admm_test.dir/admm_test.cpp.o.d"
  "admm_test"
  "admm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
