# Empty compiler generated dependencies file for admm_test.
# This may be replaced when dependencies are built.
