
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fixed_point_test.cpp" "tests/CMakeFiles/fixed_point_test.dir/fixed_point_test.cpp.o" "gcc" "tests/CMakeFiles/fixed_point_test.dir/fixed_point_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpga/CMakeFiles/hwp_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hwp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/hwp_models.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/hwp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/hwp_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/hwp_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/hwp_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/hwp_report.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/hwp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
