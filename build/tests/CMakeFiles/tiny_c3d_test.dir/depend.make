# Empty dependencies file for tiny_c3d_test.
# This may be replaced when dependencies are built.
