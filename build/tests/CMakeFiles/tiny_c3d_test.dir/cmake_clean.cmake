file(REMOVE_RECURSE
  "CMakeFiles/tiny_c3d_test.dir/tiny_c3d_test.cpp.o"
  "CMakeFiles/tiny_c3d_test.dir/tiny_c3d_test.cpp.o.d"
  "tiny_c3d_test"
  "tiny_c3d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiny_c3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
