#include <gtest/gtest.h>

#include "models/network_spec.h"

namespace hwp3d {
namespace {

using models::MakeC3DSpec;
using models::MakeR2Plus1DSpec;
using models::NetworkSpec;

// ---- R(2+1)D vs Table I / Table II "before pruning" columns ----

TEST(R2Plus1DSpecTest, GroupParamsMatchTableII) {
  const NetworkSpec spec = MakeR2Plus1DSpec();
  // Table II, params in millions: 0.015 / 0.444 / 1.56 / 6.23 / 24.92.
  EXPECT_NEAR(spec.GroupParams("conv1") / 1e6, 0.015, 0.001);
  EXPECT_NEAR(spec.GroupParams("conv2_x") / 1e6, 0.444, 0.003);
  EXPECT_NEAR(spec.GroupParams("conv3_x") / 1e6, 1.56, 0.01);
  EXPECT_NEAR(spec.GroupParams("conv4_x") / 1e6, 6.23, 0.02);
  EXPECT_NEAR(spec.GroupParams("conv5_x") / 1e6, 24.92, 0.05);
}

TEST(R2Plus1DSpecTest, TotalParamsMatchTableII) {
  const NetworkSpec spec = MakeR2Plus1DSpec();
  // Table II total: 33.22M (ours excludes FC/BN, so slightly below).
  EXPECT_NEAR(spec.TotalParams() / 1e6, 33.22, 0.15);
}

TEST(R2Plus1DSpecTest, GroupOpsMatchTableII) {
  const NetworkSpec spec = MakeR2Plus1DSpec();
  // Table II, giga-operations: 1.53 / 44.39 / 21.21 / 10.61 / 5.31.
  EXPECT_NEAR(spec.GroupOps("conv1") / 1e9, 1.53, 0.02);
  EXPECT_NEAR(spec.GroupOps("conv2_x") / 1e9, 44.39, 0.2);
  EXPECT_NEAR(spec.GroupOps("conv3_x") / 1e9, 21.21, 0.2);
  EXPECT_NEAR(spec.GroupOps("conv4_x") / 1e9, 10.61, 0.15);
  EXPECT_NEAR(spec.GroupOps("conv5_x") / 1e9, 5.31, 0.1);
}

TEST(R2Plus1DSpecTest, TotalOpsMatchTableII) {
  const NetworkSpec spec = MakeR2Plus1DSpec();
  EXPECT_NEAR(spec.TotalOps() / 1e9, 83.05, 0.5);
}

TEST(R2Plus1DSpecTest, StructureFollowsTableI) {
  const NetworkSpec spec = MakeR2Plus1DSpec();
  // 2 stem layers + 4 stages x 8 factorized layers + 3 shortcuts.
  EXPECT_EQ(spec.layers.size(), 2u + 4u * 8u + 3u);
  const auto groups = spec.Groups();
  ASSERT_EQ(groups.size(), 5u);
  EXPECT_EQ(groups[0], "conv1");
  EXPECT_EQ(groups[4], "conv5_x");
}

TEST(R2Plus1DSpecTest, OutputExtentsFollowTableI) {
  const NetworkSpec spec = MakeR2Plus1DSpec();
  for (const auto& l : spec.layers) {
    if (l.group == "conv2_x") {
      EXPECT_EQ(l.R, 56) << l.name;
    } else if (l.group == "conv3_x") {
      EXPECT_EQ(l.R, 28) << l.name;
    } else if (l.group == "conv4_x") {
      EXPECT_EQ(l.R, 14) << l.name;
    } else if (l.group == "conv5_x") {
      EXPECT_EQ(l.R, 7) << l.name;
      if (l.Kd == 3) EXPECT_EQ(l.D, 2) << l.name;  // temporal convs
    }
  }
}

TEST(R2Plus1DSpecTest, FactorizedKernelShapes) {
  const NetworkSpec spec = MakeR2Plus1DSpec();
  for (const auto& l : spec.layers) {
    const bool spatial = l.Kd == 1 && l.Kr == l.Kc && l.Kr > 1;
    const bool temporal = l.Kd == 3 && l.Kr == 1 && l.Kc == 1;
    const bool pointwise = l.Kd == 1 && l.Kr == 1 && l.Kc == 1;  // shortcut
    EXPECT_TRUE(spatial || temporal || pointwise) << l.name;
  }
}

TEST(R2Plus1DSpecTest, InputExtentInversion) {
  // in_d/in_r/in_c must invert the output-extent formula.
  const NetworkSpec spec = MakeR2Plus1DSpec();
  for (const auto& l : spec.layers) {
    EXPECT_EQ((l.in_d() - l.Kd) / l.Sd + 1, l.D) << l.name;
    EXPECT_EQ((l.in_r() - l.Kr) / l.Sr + 1, l.R) << l.name;
  }
}

TEST(R2Plus1DSpecTest, PaperPruningTargets) {
  NetworkSpec spec = MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(spec);
  for (const auto& l : spec.layers) {
    if (l.group == "conv2_x") {
      EXPECT_DOUBLE_EQ(l.eta, 0.90) << l.name;
    } else if (l.group == "conv3_x") {
      EXPECT_DOUBLE_EQ(l.eta, 0.80) << l.name;
    } else {
      EXPECT_DOUBLE_EQ(l.eta, 0.0) << l.name;
    }
  }
}

// ---- C3D baseline ----

TEST(C3DSpecTest, EightConvLayers) {
  const NetworkSpec spec = MakeC3DSpec();
  EXPECT_EQ(spec.layers.size(), 8u);
  for (const auto& l : spec.layers) {
    EXPECT_EQ(l.Kd, 3);
    EXPECT_EQ(l.Kr, 3);
    EXPECT_EQ(l.Kc, 3);
    EXPECT_FALSE(l.has_bn);
  }
}

TEST(C3DSpecTest, MacsMatchPublishedWorkload) {
  // C3D is universally quoted at ~38.5 GMACs for 16x112x112 clips
  // (e.g. [13] reports 71 GOPS at 542.5 ms => 38.5 G units of work).
  const NetworkSpec spec = MakeC3DSpec();
  EXPECT_NEAR(spec.TotalMacs() / 1e9, 38.5, 0.4);
}

TEST(C3DSpecTest, ParamsMatchStandardC3DConvTotal) {
  // Standard C3D conv parameters: ~27.7M (FC layers excluded).
  const NetworkSpec spec = MakeC3DSpec();
  EXPECT_NEAR(spec.TotalParams() / 1e6, 27.7, 0.3);
}

TEST(C3DSpecTest, PoolingPyramidExtents) {
  const NetworkSpec spec = MakeC3DSpec();
  EXPECT_EQ(spec.layers[0].R, 112);  // conv1a before pool1
  EXPECT_EQ(spec.layers[1].R, 56);   // conv2a
  EXPECT_EQ(spec.layers[3].D, 8);    // conv3b
  EXPECT_EQ(spec.layers[7].R, 7);    // conv5b
}

TEST(NetworkSpecTest, GroupQueriesOnMissingGroup) {
  const NetworkSpec spec = MakeC3DSpec();
  EXPECT_DOUBLE_EQ(spec.GroupParams("no_such_group"), 0.0);
  EXPECT_DOUBLE_EQ(spec.GroupOps("no_such_group"), 0.0);
}

}  // namespace
}  // namespace hwp3d
