#include <gtest/gtest.h>

#include "fpga/dse.h"

namespace hwp3d {
namespace {

using fpga::DseOptions;
using fpga::DseResult;
using fpga::ExploreDesignSpace;

TEST(DseTest, FindsFeasibleCandidatesOnZcu102) {
  const auto spec = models::MakeR2Plus1DSpec();
  DseOptions opt;
  const DseResult r = ExploreDesignSpace({&spec}, {}, fpga::Zcu102(), opt);
  EXPECT_GT(r.evaluated, 0u);
  ASSERT_FALSE(r.best.empty());
  EXPECT_LE(r.best.size(), opt.top_k);
  for (const auto& c : r.best) {
    EXPECT_TRUE(c.feasible);
    EXPECT_LE(c.usage.bram36_eq18, fpga::Zcu102().bram36);
    EXPECT_LE(c.usage.dsp, fpga::Zcu102().dsp);
  }
}

TEST(DseTest, CandidatesSortedByLatency) {
  const auto spec = models::MakeR2Plus1DSpec();
  const DseResult r =
      ExploreDesignSpace({&spec}, {}, fpga::Zcu102(), DseOptions{});
  for (size_t i = 1; i < r.best.size(); ++i) {
    EXPECT_LE(r.best[i - 1].cycles, r.best[i].cycles);
  }
}

TEST(DseTest, BestNoWorseThanPaperTiling) {
  const auto spec = models::MakeR2Plus1DSpec();
  DseOptions opt;
  const DseResult r = ExploreDesignSpace({&spec}, {}, fpga::Zcu102(), opt);
  ASSERT_FALSE(r.best.empty());
  fpga::PerfModel paper(fpga::PaperTilingTn16(), opt.ports);
  EXPECT_LE(r.best[0].cycles, paper.NetworkCycles(spec).cycles);
}

TEST(DseTest, SmallerDeviceRulesOutBigTiles) {
  const auto spec = models::MakeR2Plus1DSpec();
  DseOptions opt;
  const DseResult big = ExploreDesignSpace({&spec}, {}, fpga::Zcu102(), opt);
  const DseResult small = ExploreDesignSpace({&spec}, {}, fpga::Zc706(), opt);
  EXPECT_GT(small.infeasible, big.infeasible);
  // ZC706 has 900 DSPs: every survivor respects that.
  for (const auto& c : small.best) {
    EXPECT_LE(c.usage.dsp, 900);
  }
}

TEST(DseTest, MasksReduceBestLatencyWhenConfigMatches) {
  auto spec = models::MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(spec);
  const fpga::SpecMasks masks = fpga::GenerateSpecMasks(spec, {64, 8});
  DseOptions opt;
  opt.Tm = {64};
  opt.Tn = {8};
  opt.Td = {4};
  opt.Tr = {14};
  opt.Tc = {14};
  const DseResult dense =
      ExploreDesignSpace({&spec}, {}, fpga::Zcu102(), opt);
  const DseResult pruned =
      ExploreDesignSpace({&spec}, {&masks}, fpga::Zcu102(), opt);
  ASSERT_EQ(dense.best.size(), 1u);
  ASSERT_EQ(pruned.best.size(), 1u);
  EXPECT_LT(pruned.best[0].cycles, dense.best[0].cycles);
}

TEST(DseTest, MultiNetworkSumsCycles) {
  const auto r2p1d = models::MakeR2Plus1DSpec();
  const auto c3d = models::MakeC3DSpec();
  DseOptions opt;
  opt.Tm = {64};
  opt.Tn = {8};
  opt.Td = {4};
  opt.Tr = {14};
  opt.Tc = {14};
  const DseResult one = ExploreDesignSpace({&r2p1d}, {}, fpga::Zcu102(), opt);
  const DseResult two =
      ExploreDesignSpace({&r2p1d, &c3d}, {}, fpga::Zcu102(), opt);
  ASSERT_FALSE(one.best.empty());
  ASSERT_FALSE(two.best.empty());
  EXPECT_GT(two.best[0].cycles, one.best[0].cycles);
}

TEST(DseTest, RejectsBadArguments) {
  EXPECT_THROW(ExploreDesignSpace({}, {}, fpga::Zcu102(), DseOptions{}),
               Error);
  const auto spec = models::MakeR2Plus1DSpec();
  const fpga::SpecMasks masks = fpga::GenerateSpecMasks(spec, {64, 8});
  EXPECT_THROW(ExploreDesignSpace({&spec, &spec}, {&masks}, fpga::Zcu102(),
                                  DseOptions{}),
               Error);
}

}  // namespace
}  // namespace hwp3d
