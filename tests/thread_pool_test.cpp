#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/parallel.h"
#include "kernels/thread_pool.h"

namespace hwp3d {
namespace {

TEST(ThreadPoolTest, SingletonIsProcessWideAndSized) {
  ThreadPool& a = ThreadPool::Get();
  ThreadPool& b = ThreadPool::Get();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.threads(), 1);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.For(0, 10000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyAndReversedRangesAreNoops) {
  ThreadPool pool(4);
  bool called = false;
  pool.For(5, 5, [&](int64_t) { called = true; });
  pool.For(7, 3, [&](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.For(0, 1000,
                        [](int64_t i) {
                          if (i == 321) throw Error("boom");
                        }),
               Error);
  // The pool must stay fully usable after a body threw.
  std::atomic<int64_t> sum{0};
  pool.For(0, 100, [&](int64_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, NestedSubmitRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.For(0, 8, [&](int64_t) {
    // A nested region from inside a body must not deadlock; it runs
    // serially inline on the submitting participant.
    pool.For(0, 100, [&](int64_t) { count++; });
  });
  EXPECT_EQ(count.load(), 800);
}

TEST(ThreadPoolTest, SingleThreadPoolIsSerialAndOrdered) {
  // HWP_THREADS=1 semantics: no workers, strict in-order execution.
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1);
  std::vector<int64_t> order;  // unsynchronized on purpose: must be serial
  pool.For(0, 64, [&](int64_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 64u);
  for (int64_t i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ThreadsEqualsOneArgForcesSerialOrder) {
  ThreadPool pool(4);
  std::vector<int64_t> order;
  pool.For(0, 64, [&](int64_t i) { order.push_back(i); }, /*threads=*/1);
  ASSERT_EQ(order.size(), 64u);
  for (int64_t i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ConcurrentTopLevelSubmitsSerialize) {
  // Two external threads race to submit regions to one pool; the
  // submissions must serialize and every index must still run once.
  ThreadPool pool(3);
  std::atomic<int64_t> total{0};
  auto submitter = [&] {
    for (int r = 0; r < 50; ++r) {
      pool.For(0, 100, [&](int64_t) { total++; });
    }
  };
  std::thread t1(submitter), t2(submitter);
  t1.join();
  t2.join();
  EXPECT_EQ(total.load(), 2 * 50 * 100);
}

TEST(ThreadPoolTest, ManySmallRegionsReuseWorkers) {
  // Per-call thread spawn would make this test take seconds; the
  // persistent pool handles thousands of tiny regions instantly.
  ThreadPool pool(4);
  std::atomic<int64_t> total{0};
  for (int r = 0; r < 2000; ++r) {
    pool.For(0, 8, [&](int64_t) { total++; });
  }
  EXPECT_EQ(total.load(), 2000 * 8);
}

TEST(ParallelForTest, RoutesThroughSingletonPool) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, MoveOnlyStateInBody) {
  // The templated ParallelFor must not require a copyable body (the old
  // std::function-based signature did).
  std::atomic<int64_t> sum{0};
  auto token = std::make_unique<int64_t>(7);
  ParallelFor(0, 10, [&sum, t = std::move(token)](int64_t i) { sum += i * *t; });
  EXPECT_EQ(sum.load(), 45 * 7);
}

}  // namespace
}  // namespace hwp3d
