#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "fixed/fixed_point.h"
#include "fixed/quantize.h"
#include "tensor/init.h"

namespace hwp3d {
namespace {

TEST(Fixed16Test, ExactValuesRoundTrip) {
  // Multiples of 1/256 are exactly representable in Q7.8.
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, -0.25f, 127.0f, -128.0f, 3.75f}) {
    EXPECT_FLOAT_EQ(Fixed16::FromFloat(v).ToFloat(), v) << v;
  }
}

TEST(Fixed16Test, RoundsToNearest) {
  const float eps = Fixed16::Epsilon();  // 1/256
  EXPECT_FLOAT_EQ(Fixed16::FromFloat(0.4f * eps).ToFloat(), 0.0f);
  EXPECT_FLOAT_EQ(Fixed16::FromFloat(0.6f * eps).ToFloat(), eps);
  EXPECT_FLOAT_EQ(Fixed16::FromFloat(-0.6f * eps).ToFloat(), -eps);
}

TEST(Fixed16Test, SaturatesAtRange) {
  EXPECT_FLOAT_EQ(Fixed16::FromFloat(500.0f).ToFloat(), Fixed16::MaxValue());
  EXPECT_FLOAT_EQ(Fixed16::FromFloat(-500.0f).ToFloat(), Fixed16::MinValue());
  EXPECT_NEAR(Fixed16::MaxValue(), 128.0f, 0.01f);
  EXPECT_FLOAT_EQ(Fixed16::MinValue(), -128.0f);
}

TEST(Fixed16Test, NonFiniteAndHugeInputsAreSafe) {
  // Casting a non-finite or out-of-range float to int is UB, so these
  // inputs must be handled in the float domain: NaN maps to zero, and
  // ±Inf / huge magnitudes saturate like any other out-of-range value.
  EXPECT_EQ(Fixed16::FromFloat(std::nanf("")).raw(), 0);
  EXPECT_EQ(Fixed16::FromFloat(std::numeric_limits<float>::quiet_NaN()).raw(),
            0);
  EXPECT_EQ(Fixed16::FromFloat(std::numeric_limits<float>::infinity()).raw(),
            Fixed16::kRawMax);
  EXPECT_EQ(Fixed16::FromFloat(-std::numeric_limits<float>::infinity()).raw(),
            Fixed16::kRawMin);
  EXPECT_EQ(Fixed16::FromFloat(1e10f).raw(), Fixed16::kRawMax);
  EXPECT_EQ(Fixed16::FromFloat(-1e10f).raw(), Fixed16::kRawMin);
  EXPECT_EQ(Fixed16::FromFloat(std::numeric_limits<float>::max()).raw(),
            Fixed16::kRawMax);
  EXPECT_EQ(Fixed16::FromFloat(std::numeric_limits<float>::lowest()).raw(),
            Fixed16::kRawMin);
}

TEST(Fixed16Test, AdditionExact) {
  const Fixed16 a = Fixed16::FromFloat(1.25f);
  const Fixed16 b = Fixed16::FromFloat(2.5f);
  EXPECT_FLOAT_EQ((a + b).ToFloat(), 3.75f);
  EXPECT_FLOAT_EQ((a - b).ToFloat(), -1.25f);
  EXPECT_FLOAT_EQ((-a).ToFloat(), -1.25f);
}

TEST(Fixed16Test, AdditionSaturates) {
  const Fixed16 big = Fixed16::FromFloat(127.0f);
  EXPECT_FLOAT_EQ((big + big).ToFloat(), Fixed16::MaxValue());
  const Fixed16 low = Fixed16::FromFloat(-127.0f);
  EXPECT_FLOAT_EQ((low + low).ToFloat(), Fixed16::MinValue());
}

TEST(Fixed16Test, MultiplicationExactOnRepresentable) {
  const Fixed16 a = Fixed16::FromFloat(1.5f);
  const Fixed16 b = Fixed16::FromFloat(2.0f);
  EXPECT_FLOAT_EQ((a * b).ToFloat(), 3.0f);
  const Fixed16 c = Fixed16::FromFloat(-0.5f);
  EXPECT_FLOAT_EQ((a * c).ToFloat(), -0.75f);
}

TEST(Fixed16Test, MultiplicationRoundsProduct) {
  // (1/256) * (1/256) = 1/65536 rounds to 0 in Q7.8... but
  // (1/16)*(1/16) = 1/256 is exact.
  const Fixed16 eps = Fixed16::FromFloat(Fixed16::Epsilon());
  EXPECT_FLOAT_EQ((eps * eps).ToFloat(), 0.0f);
  const Fixed16 s = Fixed16::FromFloat(1.0f / 16.0f);
  EXPECT_FLOAT_EQ((s * s).ToFloat(), 1.0f / 256.0f);
}

TEST(Fixed16Test, Comparisons) {
  const Fixed16 a = Fixed16::FromFloat(1.0f);
  const Fixed16 b = Fixed16::FromFloat(2.0f);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a == Fixed16::FromFloat(1.0f));
  EXPECT_TRUE(a != b);
}

TEST(Fixed16Test, CompoundOps) {
  Fixed16 v = Fixed16::FromFloat(1.0f);
  v += Fixed16::FromFloat(0.5f);
  v *= Fixed16::FromFloat(2.0f);
  v -= Fixed16::FromFloat(1.0f);
  EXPECT_FLOAT_EQ(v.ToFloat(), 2.0f);
}

TEST(FixedAccumTest, MatchesWideProductSum) {
  // Accumulating many products must not lose precision until narrowing.
  FixedAccum acc;
  const Fixed16 a = Fixed16::FromFloat(0.1f);  // ~25.6/256, rounds to 26
  const Fixed16 b = Fixed16::FromFloat(0.1f);
  for (int i = 0; i < 1000; ++i) acc.MulAdd(a, b);
  // exact: 1000 * (26 * 26) / 256 / 256 = 10.31...
  const double expected = 1000.0 * 26 * 26 / 65536.0;
  EXPECT_NEAR(acc.ToFixed16().ToFloat(), expected, 0.01);
}

TEST(FixedAccumTest, SplitAccumulationIsAssociative) {
  // Summing partial accumulators equals one long accumulation — the
  // property that makes the tiled simulator bit-identical to the dense
  // reference.
  Rng rng(9);
  std::vector<Fixed16> xs, ys;
  for (int i = 0; i < 64; ++i) {
    xs.push_back(Fixed16::FromFloat(static_cast<float>(rng.Uniform(-2, 2))));
    ys.push_back(Fixed16::FromFloat(static_cast<float>(rng.Uniform(-2, 2))));
  }
  FixedAccum whole;
  for (int i = 0; i < 64; ++i) whole.MulAdd(xs[i], ys[i]);
  FixedAccum part1, part2;
  for (int i = 0; i < 32; ++i) part1.MulAdd(xs[i], ys[i]);
  for (int i = 32; i < 64; ++i) part2.MulAdd(xs[i], ys[i]);
  part1.Add(part2);
  EXPECT_EQ(whole.raw(), part1.raw());
  EXPECT_EQ(whole.ToFixed16().raw(), part1.ToFixed16().raw());
}

TEST(FixedAccumTest, AddFixedMatchesScale) {
  FixedAccum acc;
  acc.AddFixed(Fixed16::FromFloat(2.5f));
  EXPECT_FLOAT_EQ(acc.ToFixed16().ToFloat(), 2.5f);
}

TEST(FixedAccumTest, NarrowingSaturates) {
  FixedAccum acc;
  const Fixed16 big = Fixed16::FromFloat(100.0f);
  for (int i = 0; i < 10; ++i) acc.MulAdd(big, big);  // 100000 >> max
  EXPECT_FLOAT_EQ(acc.ToFixed16().ToFloat(), Fixed16::MaxValue());
}

TEST(QuantizeTest, TensorRoundTripWithinEpsilon) {
  Rng rng(4);
  TensorF t(Shape{100});
  FillUniform(t, rng, -10.0f, 10.0f);
  const TensorQ q = Quantize(t);
  const TensorF back = Dequantize(q);
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_NEAR(back[i], t[i], Fixed16::Epsilon() / 2.0f + 1e-6f);
  }
}

TEST(QuantizeTest, StatsBoundedByHalfEpsilon) {
  Rng rng(4);
  TensorF t(Shape{1000});
  FillUniform(t, rng, -100.0f, 100.0f);
  const QuantStats stats = MeasureQuantization(t);
  EXPECT_LE(stats.max_abs_error, Fixed16::Epsilon() / 2.0f + 1e-6f);
  EXPECT_EQ(stats.saturated, 0);
}

TEST(QuantizeTest, CountsSaturation) {
  TensorF t(Shape{3}, std::vector<float>{0.0f, 1000.0f, -1000.0f});
  const QuantStats stats = MeasureQuantization(t);
  EXPECT_EQ(stats.saturated, 2);
}

// Property sweep: quantization error never exceeds half an LSB for
// in-range values, across magnitudes.
class QuantizeSweep : public ::testing::TestWithParam<float> {};

TEST_P(QuantizeSweep, ErrorWithinHalfLsb) {
  const float v = GetParam();
  const Fixed16 q = Fixed16::FromFloat(v);
  EXPECT_NEAR(q.ToFloat(), v, Fixed16::Epsilon() / 2.0f + 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(InRangeValues, QuantizeSweep,
                         ::testing::Values(0.0f, 0.001f, -0.001f, 0.33f,
                                           -0.66f, 1.0f, -1.5f, 12.345f,
                                           -99.99f, 127.49f, -127.99f));

}  // namespace
}  // namespace hwp3d
