#include <gtest/gtest.h>

#include "fpga/scheduler.h"

namespace hwp3d {
namespace {

using fpga::GenerateSpecMasks;
using fpga::NetworkPerfReport;
using fpga::NetworkScheduler;
using fpga::SpecMasks;
using models::MakeC3DSpec;
using models::MakeR2Plus1DSpec;

NetworkScheduler PaperScheduler8() {
  return NetworkScheduler(fpga::PaperTilingTn8(), fpga::Ports{},
                          fpga::Zcu102(), 150.0);
}

TEST(SchedulerTest, ReportInternalConsistency) {
  const auto spec = MakeR2Plus1DSpec();
  const NetworkPerfReport r = PaperScheduler8().Evaluate(spec);
  // latency = cycles / freq.
  EXPECT_NEAR(r.latency_ms, r.total_cycles / (150.0 * 1e3), 1e-6);
  // throughput = ops / time.
  EXPECT_NEAR(r.throughput_gops,
              r.ops_counted / 1e9 / (r.latency_ms / 1e3), 1e-6);
  EXPECT_NEAR(r.power_eff_gops_w, r.throughput_gops / r.power_w, 1e-9);
  // Per-layer cycles sum to the total.
  int64_t sum = 0;
  for (const auto& l : r.layers) sum += l.cycles;
  EXPECT_EQ(sum, r.total_cycles);
  EXPECT_EQ(r.layers.size(), spec.layers.size());
}

TEST(SchedulerTest, UnprunedCountsFullOps) {
  const auto spec = MakeR2Plus1DSpec();
  const NetworkPerfReport r = PaperScheduler8().Evaluate(spec);
  EXPECT_NEAR(r.ops_counted, spec.TotalOps(), 1.0);
}

TEST(SchedulerTest, PrunedCountsSurvivingOps) {
  auto spec = MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(spec);
  const SpecMasks masks = GenerateSpecMasks(spec, {64, 8});
  const NetworkPerfReport r = PaperScheduler8().Evaluate(spec, &masks);
  EXPECT_NEAR(r.ops_counted, 2.0 * masks.kept_macs, 1.0);
  EXPECT_LT(r.ops_counted, spec.TotalOps());
}

TEST(SchedulerTest, PruningGivesPaperScaleSpeedup) {
  // The paper: unpruned 1044 ms -> pruned 386 ms at Tn=8, i.e. ~2.7x.
  // Our cycle model must land in the same regime (2x-4x).
  auto spec = MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(spec);
  NetworkScheduler sched = PaperScheduler8();
  const NetworkPerfReport unpruned = sched.Evaluate(spec);
  const SpecMasks masks = GenerateSpecMasks(spec, {64, 8});
  const NetworkPerfReport pruned = sched.Evaluate(spec, &masks);
  const double speedup = unpruned.latency_ms / pruned.latency_ms;
  EXPECT_GT(speedup, 2.0);
  EXPECT_LT(speedup, 4.0);
}

TEST(SchedulerTest, Tn16FasterButMorePower) {
  const auto spec = MakeR2Plus1DSpec();
  NetworkScheduler s8 = PaperScheduler8();
  NetworkScheduler s16(fpga::PaperTilingTn16(), fpga::Ports{},
                       fpga::Zcu102(), 150.0);
  const NetworkPerfReport r8 = s8.Evaluate(spec);
  const NetworkPerfReport r16 = s16.Evaluate(spec);
  EXPECT_LT(r16.latency_ms, r8.latency_ms);
  EXPECT_GT(r16.power_w, r8.power_w);
  EXPECT_EQ(r8.dsp_used, 695);
  EXPECT_EQ(r16.dsp_used, 1215);
}

TEST(SchedulerTest, UnprunedLatencyInPaperRegime) {
  // Paper Table IV: unpruned R(2+1)D at Tn=8 runs in 1044 ms. The cycle
  // model should land within ~35% without any latency calibration.
  const auto spec = MakeR2Plus1DSpec();
  const NetworkPerfReport r = PaperScheduler8().Evaluate(spec);
  EXPECT_GT(r.latency_ms, 1044.0 * 0.65);
  EXPECT_LT(r.latency_ms, 1044.0 * 1.35);
}

TEST(SchedulerTest, C3dLatencyInPaperRegime) {
  // Paper: our-design C3D at Tn=8 runs in 826 ms.
  const auto spec = MakeC3DSpec();
  const NetworkPerfReport r = PaperScheduler8().Evaluate(spec);
  EXPECT_GT(r.latency_ms, 826.0 * 0.6);
  EXPECT_LT(r.latency_ms, 826.0 * 1.4);
}

TEST(SchedulerTest, UtilizationFractions) {
  const auto spec = MakeR2Plus1DSpec();
  const NetworkPerfReport r = PaperScheduler8().Evaluate(spec);
  EXPECT_NEAR(r.dsp_utilization, 695.0 / 2520.0, 1e-9);
  EXPECT_GT(r.bram_utilization, 0.5);
  EXPECT_LE(r.bram_utilization, 1.0);  // capped at device capacity
}

TEST(SchedulerTest, DefaultFrequencyFromDevice) {
  NetworkScheduler sched(fpga::PaperTilingTn8(), fpga::Ports{},
                         fpga::Zc706());  // 176 MHz default
  const NetworkPerfReport r = sched.Evaluate(MakeC3DSpec());
  EXPECT_NEAR(r.freq_mhz, 176.0, 1e-9);
}

TEST(SpecMasksTest, KeptFractionTracksEta) {
  auto spec = MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(spec);
  const SpecMasks masks = GenerateSpecMasks(spec, {64, 8});
  ASSERT_EQ(masks.storage.size(), spec.layers.size());
  // conv2_x (eta 0.9): roughly 10% of params survive; edge blocks skew
  // this a little, exactly as the paper's Table II shows (9.85x not 10x).
  double conv2_total = 0.0, conv2_kept = 0.0;
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    const auto& l = spec.layers[i];
    if (l.group != "conv2_x") continue;
    core::BlockPartition part(Shape{l.M, l.N, l.Kd, l.Kr, l.Kc}, {64, 8});
    conv2_total += static_cast<double>(l.params());
    conv2_kept += static_cast<double>(part.EnabledParams(masks.storage[i]));
  }
  const double rate = conv2_total / conv2_kept;
  EXPECT_GT(rate, 6.0);
  EXPECT_LT(rate, 14.0);
}

TEST(SpecMasksTest, UnprunedLayersGetFullMasks) {
  auto spec = MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(spec);
  const SpecMasks masks = GenerateSpecMasks(spec, {64, 8});
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    if (spec.layers[i].eta == 0.0) {
      EXPECT_EQ(masks.ptrs[i], nullptr);
      EXPECT_EQ(masks.storage[i].CountEnabled(),
                masks.storage[i].num_blocks());
    } else {
      EXPECT_EQ(masks.ptrs[i], &masks.storage[i]);
    }
  }
}

TEST(SpecMasksTest, DeterministicForSeed) {
  auto spec = MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(spec);
  const SpecMasks a = GenerateSpecMasks(spec, {64, 8}, 7);
  const SpecMasks b = GenerateSpecMasks(spec, {64, 8}, 7);
  for (size_t i = 0; i < a.storage.size(); ++i) {
    EXPECT_EQ(a.storage[i].enabled, b.storage[i].enabled);
  }
}

}  // namespace
}  // namespace hwp3d
