#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/error.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

namespace hwp3d {
namespace {

TEST(ErrorTest, CheckThrowsWithMessage) {
  try {
    HWP_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom detail 42"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(ErrorTest, CheckPassesSilently) {
  EXPECT_NO_THROW(HWP_CHECK(2 + 2 == 4));
}

TEST(ErrorTest, ShapeCheckThrowsShapeError) {
  EXPECT_THROW(HWP_SHAPE_CHECK_MSG(false, "bad"), ShapeError);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Uniform() != b.Uniform()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformIntRespectsBounds) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NormalHasRoughMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(ParallelTest, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, [&](int64_t i) { hits[static_cast<size_t>(i)]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelTest, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(0, 100,
                  [](int64_t i) {
                    if (i == 50) throw Error("boom");
                  }),
      Error);
}


TEST(StatusTest, OkAndErrorBasics) {
  const Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.ToString(), "OK");

  const Status s = NotFoundError("no such thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such thing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such thing");
  EXPECT_EQ(s, NotFoundError("no such thing"));
  EXPECT_FALSE(s == NotFoundError("different"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument),
            "INVALID_ARGUMENT");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            "DEADLINE_EXCEEDED");
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());

  StatusOr<int> e(InvalidArgumentError("nope"));
  ASSERT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(e.value(), Error);
}

TEST(StatusOrTest, MovesAndCopies) {
  StatusOr<std::string> a(std::string("payload"));
  StatusOr<std::string> b = a;  // copy keeps the source intact
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, "payload");

  StatusOr<std::string> c = std::move(b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, "payload");

  c = StatusOr<std::string>(UnavailableError("gone"));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kUnavailable);
}

TEST(StatusOrTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return DataLossError("inner"); };
  auto outer = [&]() -> Status {
    HWP_RETURN_IF_ERROR(fails());
    return Status::Ok();
  };
  EXPECT_EQ(outer().code(), StatusCode::kDataLoss);
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({1, 2, 3}, "x"), "1x2x3");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({7}, ","), "7");
}

TEST(StringsTest, HumanCount) {
  EXPECT_EQ(HumanCount(1234567.0), "1.23M");
  EXPECT_EQ(HumanCount(2048.0), "2.05K");
  EXPECT_EQ(HumanCount(12.0), "12.00");
  EXPECT_EQ(HumanCount(3.2e9), "3.20G");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(1536.0), "1.50 KiB");
  EXPECT_EQ(HumanBytes(10.0), "10.00 B");
}

}  // namespace
}  // namespace hwp3d
