#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/conv3d.h"
#include "tensor/init.h"
#include "testing/gradcheck.h"

namespace hwp3d {
namespace {

using nn::Conv3d;
using nn::Conv3dConfig;

Conv3dConfig SmallConfig() {
  Conv3dConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 3;
  cfg.kernel = {2, 3, 3};
  cfg.stride = {1, 1, 1};
  cfg.padding = {0, 1, 1};
  return cfg;
}

TEST(Conv3dTest, OutputShape) {
  Rng rng(1);
  Conv3d conv(SmallConfig(), rng);
  TensorF x(Shape{2, 2, 4, 5, 5});
  const TensorF y = conv.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 3, 5, 5}));
}

TEST(Conv3dTest, StridedOutputShape) {
  Rng rng(1);
  Conv3dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.kernel = {1, 3, 3};
  cfg.stride = {1, 2, 2};
  cfg.padding = {0, 1, 1};
  Conv3d conv(cfg, rng);
  TensorF x(Shape{1, 1, 4, 8, 8});
  const TensorF y = conv.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 4, 4, 4}));
}

TEST(Conv3dTest, IdentityKernelCopiesInput) {
  Rng rng(1);
  Conv3dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.kernel = {1, 1, 1};
  cfg.bias = false;
  Conv3d conv(cfg, rng);
  conv.weight().value.Fill(1.0f);
  TensorF x(Shape{1, 1, 2, 3, 3});
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = static_cast<float>(i);
  const TensorF y = conv.Forward(x, false);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv3dTest, KnownSumKernel) {
  // All-ones 3x3x3 kernel over an all-ones input (no padding) sums the
  // 27-element window.
  Rng rng(1);
  Conv3dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.kernel = {3, 3, 3};
  cfg.bias = false;
  Conv3d conv(cfg, rng);
  conv.weight().value.Fill(1.0f);
  TensorF x(Shape{1, 1, 3, 3, 3}, 1.0f);
  const TensorF y = conv.Forward(x, false);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 27.0f);
}

TEST(Conv3dTest, BiasAdds) {
  Rng rng(1);
  Conv3dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.kernel = {1, 1, 1};
  Conv3d conv(cfg, rng);
  conv.weight().value.Fill(0.0f);
  conv.bias()->value[0] = 1.5f;
  conv.bias()->value[1] = -2.0f;
  TensorF x(Shape{1, 1, 1, 2, 2}, 3.0f);
  const TensorF y = conv.Forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y(0, 1, 0, 1, 1), -2.0f);
}

TEST(Conv3dTest, PaddingZeros) {
  // With padding, corner output sees fewer input elements.
  Rng rng(1);
  Conv3dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 1;
  cfg.kernel = {1, 3, 3};
  cfg.padding = {0, 1, 1};
  cfg.bias = false;
  Conv3d conv(cfg, rng);
  conv.weight().value.Fill(1.0f);
  TensorF x(Shape{1, 1, 1, 3, 3}, 1.0f);
  const TensorF y = conv.Forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0, 0, 1, 1), 9.0f);  // center: full window
  EXPECT_FLOAT_EQ(y(0, 0, 0, 0, 0), 4.0f);  // corner: 2x2 visible
}

TEST(Conv3dTest, RejectsBadInput) {
  Rng rng(1);
  Conv3d conv(SmallConfig(), rng);
  EXPECT_THROW(conv.Forward(TensorF(Shape{2, 5, 4, 5, 5}), false),
               ShapeError);  // wrong channels
  EXPECT_THROW(conv.Forward(TensorF(Shape{2, 2, 4, 5}), false),
               ShapeError);  // wrong rank
}

TEST(Conv3dTest, BackwardBeforeForwardThrows) {
  Rng rng(1);
  Conv3d conv(SmallConfig(), rng);
  EXPECT_THROW(conv.Backward(TensorF(Shape{1, 3, 1, 1, 1})), Error);
}

TEST(Conv3dTest, GradCheckInput) {
  Rng rng(2);
  Conv3dConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.kernel = {2, 2, 2};
  cfg.padding = {1, 0, 1};
  Conv3d conv(cfg, rng);
  TensorF x(Shape{2, 2, 3, 3, 3});
  FillUniform(x, rng, -1.0f, 1.0f);
  testing::CheckInputGradient(conv, x);
}

TEST(Conv3dTest, GradCheckParams) {
  Rng rng(2);
  Conv3dConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 3;
  cfg.kernel = {2, 2, 2};
  cfg.stride = {1, 1, 1};
  Conv3d conv(cfg, rng);
  TensorF x(Shape{2, 2, 3, 4, 4});
  FillUniform(x, rng, -1.0f, 1.0f);
  testing::CheckParamGradients(conv, x);
}

TEST(Conv3dTest, GradCheckStrided) {
  Rng rng(3);
  Conv3dConfig cfg;
  cfg.in_channels = 1;
  cfg.out_channels = 2;
  cfg.kernel = {1, 3, 3};
  cfg.stride = {1, 2, 2};
  cfg.padding = {0, 1, 1};
  Conv3d conv(cfg, rng);
  TensorF x(Shape{1, 1, 2, 6, 6});
  FillUniform(x, rng, -1.0f, 1.0f);
  testing::CheckInputGradient(conv, x);
  testing::CheckParamGradients(conv, x);
}

// Property sweep over kernel/stride/padding combinations: output extent
// formula and gradient shapes stay consistent.
struct ConvCase {
  int64_t k, s, p, in;
};

class ConvShapeSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvShapeSweep, ForwardBackwardShapes) {
  const ConvCase c = GetParam();
  Rng rng(1);
  Conv3dConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.kernel = {c.k, c.k, c.k};
  cfg.stride = {c.s, c.s, c.s};
  cfg.padding = {c.p, c.p, c.p};
  Conv3d conv(cfg, rng);
  TensorF x(Shape{1, 2, c.in, c.in, c.in});
  FillUniform(x, rng, -1.0f, 1.0f);
  const TensorF y = conv.Forward(x, true);
  const int64_t expected = (c.in + 2 * c.p - c.k) / c.s + 1;
  EXPECT_EQ(y.dim(2), expected);
  const TensorF dx = conv.Backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvShapeSweep,
    ::testing::Values(ConvCase{1, 1, 0, 4}, ConvCase{3, 1, 1, 4},
                      ConvCase{3, 2, 1, 8}, ConvCase{2, 2, 0, 6},
                      ConvCase{3, 1, 0, 5}, ConvCase{1, 2, 0, 7}));

}  // namespace
}  // namespace hwp3d
