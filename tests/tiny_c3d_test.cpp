#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "data/synthetic_video.h"
#include "models/tiny_c3d.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/init.h"
#include "testing/gradcheck.h"

namespace hwp3d {
namespace {

models::TinyC3dConfig SmallCfg() {
  models::TinyC3dConfig cfg;
  cfg.num_classes = 4;
  cfg.conv1_channels = 4;
  cfg.conv2_channels = 6;
  cfg.conv3_channels = 8;
  return cfg;
}

TEST(TinyC3dTest, ForwardShape) {
  Rng rng(1);
  models::TinyC3d model(SmallCfg(), rng);
  TensorF x(Shape{2, 1, 4, 8, 8});
  const TensorF y = model.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 4}));
}

TEST(TinyC3dTest, AllKernelsAre3x3x3) {
  Rng rng(1);
  models::TinyC3d model(SmallCfg(), rng);
  for (nn::Conv3d* c : model.Convs()) {
    EXPECT_EQ(c->weight().value.dim(2), 3);
    EXPECT_EQ(c->weight().value.dim(3), 3);
    EXPECT_EQ(c->weight().value.dim(4), 3);
  }
}

TEST(TinyC3dTest, PoolingPyramid) {
  // conv1 pool is spatial-only, conv2 pool halves everything.
  Rng rng(1);
  models::TinyC3d model(SmallCfg(), rng);
  TensorF x(Shape{1, 1, 4, 8, 8});
  const TensorF y = model.Forward(x, false);
  EXPECT_EQ(y.dim(1), 4);  // logits; pyramid checked via no-throw shapes
}

TEST(TinyC3dTest, BackwardShapesAndGrads) {
  Rng rng(2);
  models::TinyC3d model(SmallCfg(), rng);
  TensorF x(Shape{2, 1, 4, 8, 8});
  FillUniform(x, rng, -1.0f, 1.0f);
  const TensorF y = model.Forward(x, true);
  const TensorF dx = model.Backward(TensorF(y.shape(), 1.0f));
  EXPECT_EQ(dx.shape(), x.shape());
  // Every param received some gradient signal.
  int64_t nonzero_params = 0;
  for (nn::Param* p : model.Params()) {
    if (MaxAbs(p->grad) > 0.0f) ++nonzero_params;
  }
  EXPECT_GT(nonzero_params, 0);
}

TEST(TinyC3dTest, NoBnVariantHasBias) {
  Rng rng(3);
  models::TinyC3dConfig cfg = SmallCfg();
  cfg.batch_norm = false;
  models::TinyC3d model(cfg, rng);
  // With BN off, the convs carry biases (classic C3D).
  bool found_bias = false;
  for (nn::Param* p : model.Params()) {
    if (p->name.find("conv") != std::string::npos &&
        p->name.find("bias") != std::string::npos) {
      found_bias = true;
    }
  }
  EXPECT_TRUE(found_bias);
  TensorF x(Shape{1, 1, 4, 8, 8});
  EXPECT_EQ(model.Forward(x, false).shape(), (Shape{1, 4}));
}

TEST(TinyC3dTest, LearnsMotionClasses) {
  SetLogLevel(LogLevel::Warning);
  Rng rng(4);
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(48, 8, rng);

  models::TinyC3dConfig cfg = SmallCfg();
  models::TinyC3d model(cfg, rng);
  nn::Sgd opt(model.Params(),
              {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 0.0f});
  double first = 0.0, last = 0.0;
  for (int e = 0; e < 6; ++e) {
    const auto s = nn::TrainEpoch(model, opt, train, {});
    if (e == 0) first = s.accuracy;
    last = s.accuracy;
  }
  EXPECT_GT(last, first);
  EXPECT_GT(last, 0.4);
  SetLogLevel(LogLevel::Info);
}

TEST(TinyC3dTest, ParamCountExceedsR2Plus1dAtEqualWidth) {
  // The motivation: full 3D kernels cost more parameters than the
  // factorized (2+1)D pair at comparable width.
  Rng rng(5);
  models::TinyC3d c3d(SmallCfg(), rng);
  EXPECT_GT(c3d.TotalParams(), 0);
}

}  // namespace
}  // namespace hwp3d
