#include <gtest/gtest.h>

#include "core/block_partition.h"
#include "fpga/perf_model.h"
#include "models/network_spec.h"

namespace hwp3d {
namespace {

using core::BlockMask;
using core::BlockPartition;
using fpga::LayerLatency;
using fpga::PerfModel;
using fpga::Ports;
using fpga::Tiling;
using models::ConvLayerSpec;

ConvLayerSpec SmallLayer() {
  // M=8, N=8, 3x3x3 kernel, stride 1, output 4x14x14 (exactly one tile
  // with the paper's (Td,Tr,Tc)).
  ConvLayerSpec l;
  l.name = "small";
  l.M = 8;
  l.N = 8;
  l.Kd = l.Kr = l.Kc = 3;
  l.Sd = l.Sr = l.Sc = 1;
  l.D = 4;
  l.R = l.C = 14;
  return l;
}

TEST(PerfModelTest, HandComputedDenseCase) {
  // Tiling (Tm=8, Tn=8, Td=4, Tr=14, Tc=14), ports 8/8/8.
  const Tiling t{8, 8, 4, 14, 14};
  const Ports p{8, 8, 8};
  PerfModel pm(t, p);
  const LayerLatency lat = pm.LayerCycles(SmallLayer());
  // Eq. 19: t_wgt = 8*8*27/8 = 216.
  EXPECT_EQ(lat.t_wgt, 216);
  // Eq. 20: T' = (4-1)*1+3=6, (14-1)*1+3=16 -> t_in = 8*6*16*16/8 = 1536.
  EXPECT_EQ(lat.t_in, 1536);
  // Eq. 21: t_out = 8*4*14*14/8 = 784.
  EXPECT_EQ(lat.t_out, 784);
  // Eq. 22: t_comp = 27*4*14*14 = 21168.
  EXPECT_EQ(lat.t_comp, 21168);
  // Eq. 23: compute-bound.
  EXPECT_EQ(lat.t_L3, 21168);
  // Eq. 24: ceil(N/Tn)=1 -> t_L2 = 21168*1 + 21168 = 42336 > t_out.
  // Eq. 25: 1 spatial tile x 1 m-block x t_L2 + t_out.
  EXPECT_EQ(lat.cycles, 42336 + 784);
  EXPECT_EQ(lat.tile_iterations, 1);
  EXPECT_EQ(lat.blocks_loaded, 1);
  EXPECT_EQ(lat.blocks_skipped, 0);
}

TEST(PerfModelTest, LoadBoundWhenPortsNarrow) {
  const Tiling t{8, 8, 4, 14, 14};
  const Ports p{1, 1, 8};  // starve the input port
  PerfModel pm(t, p);
  const LayerLatency lat = pm.LayerCycles(SmallLayer());
  // t_in = 8*6*16*16 = 12288 < t_comp, t_wgt = 1728 -> still compute
  // bound; shrink tile to make loading dominate.
  EXPECT_EQ(lat.t_L3, std::max<int64_t>({lat.t_wgt, lat.t_in, lat.t_comp}));

  const Tiling t2{8, 8, 1, 1, 1};
  PerfModel pm2(t2, p);
  const LayerLatency lat2 = pm2.LayerCycles(SmallLayer());
  // With a 1-element tile and 1-wide ports, the weight load dominates:
  // t_wgt = 8*8*27/1 = 1728 > t_in = 8*3*3*3/1 = 216 > t_comp = 27.
  EXPECT_GT(lat2.t_wgt, lat2.t_comp);
  EXPECT_EQ(lat2.t_L3, lat2.t_wgt);
}

TEST(PerfModelTest, TileCountsUseCeiling) {
  ConvLayerSpec l = SmallLayer();
  l.M = 144;  // ceil(144/64) = 3 m-blocks
  l.N = 64;
  const Tiling t{64, 8, 4, 14, 14};
  PerfModel pm(t, Ports{});
  const LayerLatency lat = pm.LayerCycles(l);
  // spatial tiles: 1 x 1 x 1; m blocks: 3; n blocks: 8.
  EXPECT_EQ(lat.tile_iterations, 3);
  EXPECT_EQ(lat.blocks_loaded, 24);
}

TEST(PerfModelTest, BlockEnableSkipsProportionally) {
  ConvLayerSpec l = SmallLayer();
  l.M = 64;
  l.N = 64;
  const Tiling t{64, 8, 4, 14, 14};
  PerfModel pm(t, Ports{});
  const LayerLatency dense = pm.LayerCycles(l);

  BlockPartition part(Shape{l.M, l.N, l.Kd, l.Kr, l.Kc}, t.block());
  BlockMask mask = part.FullMask();
  // Disable 6 of 8 input blocks.
  for (int64_t bn = 0; bn < 6; ++bn) mask.set(0, bn, false);
  const LayerLatency pruned = pm.LayerCycles(l, &mask);

  EXPECT_LT(pruned.cycles, dense.cycles);
  EXPECT_EQ(pruned.blocks_skipped, 6);
  EXPECT_EQ(pruned.blocks_loaded, 2);
  // Compute-bound layer: cycle ratio ~ (2+1)/(8+1).
  const double ratio =
      static_cast<double>(pruned.cycles) / static_cast<double>(dense.cycles);
  EXPECT_NEAR(ratio, 3.0 / 9.0, 0.05);
}

TEST(PerfModelTest, FullyPrunedRowCostsOnlyStore) {
  ConvLayerSpec l = SmallLayer();
  const Tiling t{8, 8, 4, 14, 14};
  PerfModel pm(t, Ports{});
  BlockPartition part(Shape{l.M, l.N, l.Kd, l.Kr, l.Kc}, t.block());
  BlockMask mask = part.FullMask();
  mask.set(0, 0, false);  // the only block
  const LayerLatency lat = pm.LayerCycles(l, &mask);
  // One row, zero enabled -> t_L2 = t_out; total = t_out + final t_out.
  EXPECT_EQ(lat.cycles, 2 * lat.t_out);
}

TEST(PerfModelTest, MaskGridMismatchThrows) {
  ConvLayerSpec l = SmallLayer();
  const Tiling t{8, 8, 4, 14, 14};
  PerfModel pm(t, Ports{});
  BlockMask bad;
  bad.blocks_m = 2;
  bad.blocks_n = 2;
  bad.enabled.assign(4, 1);
  EXPECT_THROW(pm.LayerCycles(l, &bad), Error);
}

TEST(PerfModelTest, NetworkCyclesSumLayers) {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  const Tiling t = fpga::PaperTilingTn8();
  PerfModel pm(t, Ports{});
  int64_t manual = 0;
  for (const auto& l : spec.layers) manual += pm.LayerCycles(l).cycles;
  EXPECT_EQ(pm.NetworkCycles(spec).cycles, manual);
}

TEST(PerfModelTest, Tn16FasterThanTn8OnR2Plus1D) {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  PerfModel pm8(fpga::PaperTilingTn8(), Ports{});
  PerfModel pm16(fpga::PaperTilingTn16(), Ports{});
  // Doubling Tn roughly halves ceil(N/Tn); the paper sees 1044 -> 609 ms.
  const double ratio =
      static_cast<double>(pm8.NetworkCycles(spec).cycles) /
      static_cast<double>(pm16.NetworkCycles(spec).cycles);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.1);
}

TEST(PerfModelTest, DoubleBufferingOverlapSavesCycles) {
  // With realistic (narrow) ports the loads are substantial and the
  // ping-pong overlap of Eq. 23 hides them.
  ConvLayerSpec l = SmallLayer();
  l.N = 64;
  const Tiling t{8, 8, 4, 14, 14};
  Ports overlapped;
  overlapped.p_wgt = overlapped.p_in = overlapped.p_out = 1;
  Ports serialized = overlapped;
  serialized.double_buffered = false;
  const int64_t with_db = PerfModel(t, overlapped).LayerCycles(l).cycles;
  const int64_t without_db = PerfModel(t, serialized).LayerCycles(l).cycles;
  EXPECT_LT(with_db, without_db);
  // The overlap can at best hide the loads entirely.
  EXPECT_LT(static_cast<double>(without_db) / with_db, 3.0);
}

TEST(PerfModelTest, PartialTilesCostProportionallyLess) {
  // conv5_x-shaped layer: 2x7x7 outputs on 4x14x14 tiles must cost ~1/8
  // of the full-tile charge, not the same.
  ConvLayerSpec big = SmallLayer();  // 4x14x14 output
  ConvLayerSpec small = big;
  small.D = 2;
  small.R = small.C = 7;
  const Tiling t{8, 8, 4, 14, 14};
  PerfModel pm(t, Ports{});
  const double ratio =
      static_cast<double>(pm.LayerCycles(big).cycles) /
      static_cast<double>(pm.LayerCycles(small).cycles);
  EXPECT_GT(ratio, 5.0);
  EXPECT_LT(ratio, 9.0);
}

TEST(PerfModelTest, MsConversion) {
  LayerLatency lat;
  lat.cycles = 150000;
  EXPECT_NEAR(lat.MsAt(150.0), 1.0, 1e-9);  // 150k cycles at 150MHz = 1ms
}

// Property sweep: more pruning never increases modeled cycles.
class PruneLevelSweep : public ::testing::TestWithParam<int> {};

TEST_P(PruneLevelSweep, MonotoneInEnabledBlocks) {
  const int disabled = GetParam();
  ConvLayerSpec l = SmallLayer();
  l.N = 64;
  const Tiling t{8, 8, 4, 14, 14};
  PerfModel pm(t, Ports{});
  BlockPartition part(Shape{l.M, l.N, l.Kd, l.Kr, l.Kc}, t.block());
  BlockMask mask = part.FullMask();
  for (int bn = 0; bn < disabled; ++bn) mask.set(0, bn, false);
  BlockMask mask_more = mask;
  if (disabled < 8) mask_more.set(0, disabled, false);
  EXPECT_LE(pm.LayerCycles(l, &mask_more).cycles,
            pm.LayerCycles(l, &mask).cycles);
}

INSTANTIATE_TEST_SUITE_P(Levels, PruneLevelSweep,
                         ::testing::Values(0, 1, 2, 4, 6, 7));

}  // namespace
}  // namespace hwp3d
