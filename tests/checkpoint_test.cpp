#include <gtest/gtest.h>

#include <fstream>

#include "common/rng.h"
#include "models/tiny_r2plus1d.h"
#include "nn/checkpoint.h"
#include "nn/linear.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CheckpointTest, RoundTripLinearModel) {
  Rng rng(1);
  nn::Sequential model;
  model.Emplace<nn::Linear>(4, 8, rng, "fc1");
  model.Emplace<nn::Linear>(8, 2, rng, "fc2");
  const std::string path = TempPath("ckpt_linear.bin");
  nn::SaveCheckpoint(path, model);

  // A same-seed clone has identical structure but will be clobbered.
  Rng rng2(99);
  nn::Sequential other;
  other.Emplace<nn::Linear>(4, 8, rng2, "fc1");
  other.Emplace<nn::Linear>(8, 2, rng2, "fc2");
  nn::LoadCheckpoint(path, other);

  auto a = model.Params();
  auto b = other.Params();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(AllClose(a[i]->value, b[i]->value, 0.0f, 0.0f))
        << a[i]->name;
  }
}

TEST(CheckpointTest, RoundTripTinyR2Plus1dPreservesPrunedZeros) {
  Rng rng(2);
  models::TinyR2Plus1dConfig cfg;
  cfg.stem_channels = 4;
  cfg.stage1_channels = 8;
  cfg.stage2_channels = 8;
  models::TinyR2Plus1d model(cfg, rng);
  // Zero a block by hand to mimic a pruned model.
  nn::Conv3d* conv = model.PrunableConvs()[0];
  for (int64_t i = 0; i < conv->weight().value.numel() / 2; ++i) {
    conv->weight().value[i] = 0.0f;
  }
  const double sparsity = Sparsity(conv->weight().value);

  const std::string path = TempPath("ckpt_tiny.bin");
  nn::SaveCheckpoint(path, model);

  Rng rng2(77);
  models::TinyR2Plus1d loaded(cfg, rng2);
  nn::LoadCheckpoint(path, loaded);
  EXPECT_NEAR(Sparsity(loaded.PrunableConvs()[0]->weight().value), sparsity,
              1e-12);
}

TEST(CheckpointTest, RejectsStructureMismatch) {
  Rng rng(3);
  nn::Sequential model;
  model.Emplace<nn::Linear>(4, 8, rng, "fc1");
  const std::string path = TempPath("ckpt_mismatch.bin");
  nn::SaveCheckpoint(path, model);

  nn::Sequential bigger;
  bigger.Emplace<nn::Linear>(4, 8, rng, "fc1");
  bigger.Emplace<nn::Linear>(8, 2, rng, "fc2");
  EXPECT_THROW(nn::LoadCheckpoint(path, bigger), Error);  // param count

  nn::Sequential renamed;
  renamed.Emplace<nn::Linear>(4, 8, rng, "other_name");
  EXPECT_THROW(nn::LoadCheckpoint(path, renamed), Error);  // name mismatch

  nn::Sequential reshaped;
  reshaped.Emplace<nn::Linear>(8, 4, rng, "fc1");
  EXPECT_THROW(nn::LoadCheckpoint(path, reshaped), Error);  // shape
}

TEST(CheckpointTest, RejectsGarbageFile) {
  const std::string path = TempPath("ckpt_garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a checkpoint";
  }
  Rng rng(4);
  nn::Sequential model;
  model.Emplace<nn::Linear>(2, 2, rng, "fc");
  EXPECT_THROW(nn::LoadCheckpoint(path, model), Error);
}

TEST(CheckpointTest, MissingFileThrows) {
  Rng rng(5);
  nn::Sequential model;
  model.Emplace<nn::Linear>(2, 2, rng, "fc");
  EXPECT_THROW(nn::LoadCheckpoint("/no/such/file.bin", model), Error);
}

}  // namespace
}  // namespace hwp3d
