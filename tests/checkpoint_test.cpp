#include <gtest/gtest.h>

#include <fstream>

#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/status.h"
#include "models/tiny_r2plus1d.h"
#include "nn/batchnorm3d.h"
#include "nn/checkpoint.h"
#include "nn/linear.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(CheckpointTest, RoundTripLinearModel) {
  Rng rng(1);
  nn::Sequential model;
  model.Emplace<nn::Linear>(4, 8, rng, "fc1");
  model.Emplace<nn::Linear>(8, 2, rng, "fc2");
  const std::string path = TempPath("ckpt_linear.bin");
  ASSERT_TRUE(nn::SaveCheckpoint(path, model).ok());

  // A same-seed clone has identical structure but will be clobbered.
  Rng rng2(99);
  nn::Sequential other;
  other.Emplace<nn::Linear>(4, 8, rng2, "fc1");
  other.Emplace<nn::Linear>(8, 2, rng2, "fc2");
  ASSERT_TRUE(nn::LoadCheckpoint(path, other).ok());

  auto a = model.Params();
  auto b = other.Params();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(AllClose(a[i]->value, b[i]->value, 0.0f, 0.0f))
        << a[i]->name;
  }
}

TEST(CheckpointTest, RoundTripTinyR2Plus1dPreservesPrunedZeros) {
  Rng rng(2);
  models::TinyR2Plus1dConfig cfg;
  cfg.stem_channels = 4;
  cfg.stage1_channels = 8;
  cfg.stage2_channels = 8;
  models::TinyR2Plus1d model(cfg, rng);
  // Zero a block by hand to mimic a pruned model.
  nn::Conv3d* conv = model.PrunableConvs()[0];
  for (int64_t i = 0; i < conv->weight().value.numel() / 2; ++i) {
    conv->weight().value[i] = 0.0f;
  }
  const double sparsity = Sparsity(conv->weight().value);

  const std::string path = TempPath("ckpt_tiny.bin");
  ASSERT_TRUE(nn::SaveCheckpoint(path, model).ok());

  Rng rng2(77);
  models::TinyR2Plus1d loaded(cfg, rng2);
  ASSERT_TRUE(nn::LoadCheckpoint(path, loaded).ok());
  EXPECT_NEAR(Sparsity(loaded.PrunableConvs()[0]->weight().value), sparsity,
              1e-12);
}

TEST(CheckpointTest, RoundTripRestoresBatchNormRunningStats) {
  // v2 checkpoints carry the non-trainable buffers (BN running mean /
  // var), which BN folding during compilation depends on.
  Rng rng(6);
  models::TinyR2Plus1dConfig cfg;
  cfg.stem_channels = 4;
  cfg.stage1_channels = 8;
  cfg.stage2_channels = 8;
  models::TinyR2Plus1d model(cfg, rng);
  auto buffers = model.Buffers();
  ASSERT_FALSE(buffers.empty());
  // Perturb every buffer so the defaults cannot mask a failed load.
  for (auto& buf : buffers) {
    for (int64_t i = 0; i < buf.tensor->numel(); ++i) {
      (*buf.tensor)[i] = 0.25f + 0.5f * static_cast<float>(i % 3);
    }
  }

  const std::string path = TempPath("ckpt_buffers.bin");
  ASSERT_TRUE(nn::SaveCheckpoint(path, model).ok());

  Rng rng2(13);
  models::TinyR2Plus1d loaded(cfg, rng2);
  ASSERT_TRUE(nn::LoadCheckpoint(path, loaded).ok());
  auto loaded_buffers = loaded.Buffers();
  ASSERT_EQ(buffers.size(), loaded_buffers.size());
  for (size_t i = 0; i < buffers.size(); ++i) {
    EXPECT_EQ(buffers[i].name, loaded_buffers[i].name);
    EXPECT_TRUE(AllClose(*buffers[i].tensor, *loaded_buffers[i].tensor,
                         0.0f, 0.0f))
        << buffers[i].name;
  }
}

TEST(CheckpointTest, RejectsStructureMismatch) {
  Rng rng(3);
  nn::Sequential model;
  model.Emplace<nn::Linear>(4, 8, rng, "fc1");
  const std::string path = TempPath("ckpt_mismatch.bin");
  ASSERT_TRUE(nn::SaveCheckpoint(path, model).ok());

  nn::Sequential bigger;
  bigger.Emplace<nn::Linear>(4, 8, rng, "fc1");
  bigger.Emplace<nn::Linear>(8, 2, rng, "fc2");
  Status s = nn::LoadCheckpoint(path, bigger);  // param count
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("params"), std::string::npos) << s.ToString();

  nn::Sequential renamed;
  renamed.Emplace<nn::Linear>(4, 8, rng, "other_name");
  s = nn::LoadCheckpoint(path, renamed);  // name mismatch
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);

  nn::Sequential reshaped;
  reshaped.Emplace<nn::Linear>(8, 4, rng, "fc1");
  s = nn::LoadCheckpoint(path, reshaped);  // shape
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointTest, RejectsGarbageFile) {
  const std::string path = TempPath("ckpt_garbage.bin");
  {
    std::ofstream os(path, std::ios::binary);
    os << "this is not a checkpoint";
  }
  Rng rng(4);
  nn::Sequential model;
  model.Emplace<nn::Linear>(2, 2, rng, "fc");
  EXPECT_EQ(nn::LoadCheckpoint(path, model).code(), StatusCode::kDataLoss);
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  Rng rng(5);
  nn::Sequential model;
  model.Emplace<nn::Linear>(2, 2, rng, "fc");
  const Status s = nn::LoadCheckpoint("/no/such/file.bin", model);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.message().find("/no/such/file.bin"), std::string::npos);
}

TEST(CheckpointTest, SaveToUnwritablePathFails) {
  Rng rng(8);
  nn::Sequential model;
  model.Emplace<nn::Linear>(2, 2, rng, "fc");
  EXPECT_FALSE(nn::SaveCheckpoint("/no/such/dir/ckpt.bin", model).ok());
}

TEST(CheckpointTest, InjectedIoFaultsSurfaceAsUnavailable) {
  // The ckpt.save / ckpt.load fault points fail checkpoint I/O before
  // touching the filesystem, with a retryable status — callers can
  // exercise their recovery paths deterministically.
  Rng rng(9);
  nn::Sequential model;
  model.Emplace<nn::Linear>(2, 2, rng, "fc");
  const std::string path = TempPath("ckpt_fault.bin");

  FaultInjector::Get().Reset();
  FaultInjector::Get().Arm("ckpt.save", 1);
  Status s = nn::SaveCheckpoint(path, model);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("injected"), std::string::npos);
  // The fault fired once; the retry goes through and writes the file.
  ASSERT_TRUE(nn::SaveCheckpoint(path, model).ok());

  FaultInjector::Get().Arm("ckpt.load", 1);
  s = nn::LoadCheckpoint(path, model);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(nn::LoadCheckpoint(path, model).ok());
  FaultInjector::Get().Reset();
}

}  // namespace
}  // namespace hwp3d
