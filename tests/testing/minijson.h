// Minimal strict JSON parser for test-side validation of the trace and
// metrics exporters (the repo has no external JSON dependency). Parses
// into a tiny DOM; returns nullopt on any syntax error, trailing
// garbage, or bad escape — good enough to assert "this is valid JSON"
// and to walk the parsed structure.
#pragma once

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hwp3d::testing {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool bool_value = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;                            // Array
  std::vector<std::pair<std::string, JsonValue>> members;  // Object

  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace minijson_detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    if (!ParseValue(v)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool ParseValue(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': out.kind = JsonValue::Kind::String;
                return ParseString(out.str);
      case 't': out.kind = JsonValue::Kind::Bool;
                out.bool_value = true;
                return EatLiteral("true");
      case 'f': out.kind = JsonValue::Kind::Bool;
                out.bool_value = false;
                return EatLiteral("false");
      case 'n': out.kind = JsonValue::Kind::Null;
                return EatLiteral("null");
      default: return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue& out) {
    out.kind = JsonValue::Kind::Object;
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(key)) return false;
      SkipWs();
      if (!Eat(':')) return false;
      SkipWs();
      JsonValue v;
      if (!ParseValue(v)) return false;
      out.members.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool ParseArray(JsonValue& out) {
    out.kind = JsonValue::Kind::Array;
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      JsonValue v;
      if (!ParseValue(v)) return false;
      out.items.push_back(std::move(v));
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool ParseString(std::string& out) {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw ctrl
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Tests only emit ASCII escapes; reject the rest for strictness.
          if (code > 0x7f) return false;
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue& out) {
    out.kind = JsonValue::Kind::Number;
    const size_t start = pos_;
    if (Eat('-')) {}
    if (!std::isdigit(static_cast<unsigned char>(
            pos_ < text_.size() ? text_[pos_] : '\0'))) {
      return false;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace minijson_detail

inline std::optional<JsonValue> ParseJson(std::string_view text) {
  return minijson_detail::Parser(text).Parse();
}

}  // namespace hwp3d::testing
