// Numerical gradient checking for nn::Module layers.
//
// Compares analytic gradients (Backward) against central finite
// differences of a scalar loss L = sum(y * seed) where `seed` is a fixed
// random tensor, for both inputs and parameters.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hwp3d::testing {

struct GradCheckOptions {
  float epsilon = 1e-2f;   // finite-difference step
  float rtol = 5e-2f;      // relative tolerance
  float atol = 5e-3f;      // absolute tolerance
  int max_checks = 64;     // elements probed per tensor (strided)
};

// Scalar loss: L(y) = sum_i seed_i * y_i.
inline float SeededLoss(const TensorF& y, const TensorF& seed) {
  return Dot(y, seed);
}

// Checks dL/dx for the module input.
inline void CheckInputGradient(nn::Module& module, TensorF x,
                               uint64_t seed_val = 7,
                               GradCheckOptions opt = {}) {
  Rng rng(seed_val);
  TensorF y = module.Forward(x, /*train=*/true);
  TensorF seed(y.shape());
  FillUniform(seed, rng, -1.0f, 1.0f);
  module.ZeroGrad();
  const TensorF dx = module.Backward(seed);
  ASSERT_EQ(dx.shape().ToString(), x.shape().ToString());

  const int64_t n = x.numel();
  const int64_t stride = std::max<int64_t>(1, n / opt.max_checks);
  for (int64_t i = 0; i < n; i += stride) {
    const float orig = x[i];
    x[i] = orig + opt.epsilon;
    const float lp = SeededLoss(module.Forward(x, true), seed);
    x[i] = orig - opt.epsilon;
    const float lm = SeededLoss(module.Forward(x, true), seed);
    x[i] = orig;
    const float l0 = SeededLoss(module.Forward(x, true), seed);
    const float numeric = (lp - lm) / (2.0f * opt.epsilon);
    // Kink detector: near a ReLU boundary the one-sided derivatives
    // disagree and the central difference is meaningless — skip.
    const float fwd = (lp - l0) / opt.epsilon;
    const float bwd = (l0 - lm) / opt.epsilon;
    if (std::fabs(fwd - bwd) >
        0.1f * (std::fabs(fwd) + std::fabs(bwd)) + opt.atol) {
      continue;
    }
    const float analytic = dx[i];
    const float tol = opt.atol + opt.rtol * std::fabs(numeric);
    EXPECT_NEAR(analytic, numeric, tol)
        << "input grad mismatch at flat index " << i;
  }
  // Restore caches for any subsequent use.
  module.Forward(x, true);
  module.ZeroGrad();
  module.Backward(seed);
}

// Checks dL/dw for every parameter of the module.
inline void CheckParamGradients(nn::Module& module, const TensorF& x,
                                uint64_t seed_val = 7,
                                GradCheckOptions opt = {}) {
  Rng rng(seed_val);
  TensorF y = module.Forward(x, /*train=*/true);
  TensorF seed(y.shape());
  FillUniform(seed, rng, -1.0f, 1.0f);
  module.ZeroGrad();
  module.Backward(seed);

  for (nn::Param* p : module.Params()) {
    const int64_t n = p->value.numel();
    const int64_t stride = std::max<int64_t>(1, n / opt.max_checks);
    for (int64_t i = 0; i < n; i += stride) {
      const float analytic = p->grad[i];
      const float orig = p->value[i];
      p->value[i] = orig + opt.epsilon;
      const float lp = SeededLoss(module.Forward(x, true), seed);
      p->value[i] = orig - opt.epsilon;
      const float lm = SeededLoss(module.Forward(x, true), seed);
      p->value[i] = orig;
      const float l0 = SeededLoss(module.Forward(x, true), seed);
      const float numeric = (lp - lm) / (2.0f * opt.epsilon);
      const float fwd = (lp - l0) / opt.epsilon;
      const float bwd = (l0 - lm) / opt.epsilon;
      if (std::fabs(fwd - bwd) >
          0.1f * (std::fabs(fwd) + std::fabs(bwd)) + opt.atol) {
        continue;  // non-differentiable point (ReLU kink)
      }
      const float tol = opt.atol + opt.rtol * std::fabs(numeric);
      EXPECT_NEAR(analytic, numeric, tol)
          << "param " << p->name << " grad mismatch at flat index " << i;
    }
  }
}

}  // namespace hwp3d::testing
