#include <gtest/gtest.h>

#include <memory>

#include "core/pipeline.h"
#include "common/logging.h"
#include "common/rng.h"
#include "data/synthetic_video.h"
#include "nn/activations.h"
#include "nn/conv3d.h"
#include "nn/linear.h"
#include "nn/pool3d.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

// Minimal video classifier whose single prunable conv makes pipeline
// behaviour easy to verify quickly.
class MicroNet : public nn::Module {
 public:
  MicroNet(int classes, Rng& rng) {
    nn::Conv3dConfig c1;
    c1.in_channels = 1;
    c1.out_channels = 8;
    c1.kernel = {3, 3, 3};
    c1.padding = {1, 1, 1};
    c1.bias = false;
    conv1_ = std::make_unique<nn::Conv3d>(c1, rng, "conv1");
    relu1_ = std::make_unique<nn::ReLU>();
    nn::Conv3dConfig c2;
    c2.in_channels = 8;
    c2.out_channels = 8;
    c2.kernel = {3, 3, 3};
    c2.padding = {1, 1, 1};
    c2.bias = false;
    conv2_ = std::make_unique<nn::Conv3d>(c2, rng, "conv2");
    relu2_ = std::make_unique<nn::ReLU>();
    gap_ = std::make_unique<nn::GlobalAvgPool3d>();
    fc_ = std::make_unique<nn::Linear>(8, classes, rng);
  }

  TensorF Forward(const TensorF& x, bool train) override {
    TensorF h = relu1_->Forward(conv1_->Forward(x, train), train);
    h = relu2_->Forward(conv2_->Forward(h, train), train);
    return fc_->Forward(gap_->Forward(h, train), train);
  }
  TensorF Backward(const TensorF& dy) override {
    TensorF g = gap_->Backward(fc_->Backward(dy));
    g = conv2_->Backward(relu2_->Backward(g));
    return conv1_->Backward(relu1_->Backward(g));
  }
  void CollectParams(std::vector<nn::Param*>& out) override {
    conv1_->CollectParams(out);
    conv2_->CollectParams(out);
    fc_->CollectParams(out);
  }
  std::string name() const override { return "micronet"; }

  nn::Conv3d& conv2() { return *conv2_; }

 private:
  std::unique_ptr<nn::Conv3d> conv1_, conv2_;
  std::unique_ptr<nn::ReLU> relu1_, relu2_;
  std::unique_ptr<nn::GlobalAvgPool3d> gap_;
  std::unique_ptr<nn::Linear> fc_;
};

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLogLevel(LogLevel::Warning); }
  void TearDown() override { SetLogLevel(LogLevel::Info); }
};

TEST_F(PipelineTest, EndToEndAdmmPruneRetrain) {
  Rng rng(11);
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(48, 8, rng);
  const auto test = dataset.MakeBatches(24, 8, rng);

  MicroNet model(4, rng);

  // Pretrain briefly so pruning has something to preserve.
  nn::Sgd pre(model.Params(), {.lr = 0.05f, .momentum = 0.9f,
                               .weight_decay = 0.0f});
  for (int e = 0; e < 4; ++e) nn::TrainEpoch(model, pre, train, {});

  core::AdmmConfig admm_cfg;
  admm_cfg.rho_schedule = {0.01, 0.1};
  core::AdmmPruner pruner(
      {{&model.conv2().weight(), {4, 4}, 0.5, "conv2"}}, admm_cfg);

  core::PipelineConfig cfg;
  cfg.admm = admm_cfg;
  cfg.epochs_per_round = 2;
  cfg.retrain_epochs = 4;
  cfg.admm_lr = 0.02f;
  cfg.retrain_lr = 0.02f;
  int epochs_seen = 0;
  cfg.on_epoch = [&](int, const char*, const nn::EpochStats&) {
    ++epochs_seen;
  };

  const core::PipelineResult result =
      core::RunAdmmPipeline(model, pruner, train, test, cfg);

  // Structure: ADMM epochs (2 rounds x 2) + retrain epochs (4).
  EXPECT_EQ(epochs_seen, 8);
  // Sparsity achieved and held after retraining.
  EXPECT_NEAR(Sparsity(model.conv2().weight().value), 0.5, 0.01);
  ASSERT_EQ(result.layer_stats.size(), 1u);
  EXPECT_EQ(result.layer_stats[0].kept_blocks, 2);
  EXPECT_FALSE(result.residual_history.empty());
  // Retraining should not be (much) worse than the raw hard prune.
  EXPECT_GE(result.retrained_test_acc, result.hard_prune_test_acc - 0.15);
}

TEST_F(PipelineTest, MasksHoldThroughRetraining) {
  Rng rng(13);
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 2;
  dcfg.frames = 4;
  dcfg.height = 8;
  dcfg.width = 8;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(16, 8, rng);

  MicroNet model(2, rng);
  core::AdmmConfig admm_cfg;
  admm_cfg.rho_schedule = {0.1};
  core::AdmmPruner pruner(
      {{&model.conv2().weight(), {2, 2}, 0.75, "conv2"}}, admm_cfg);

  core::PipelineConfig cfg;
  cfg.admm = admm_cfg;
  cfg.epochs_per_round = 1;
  cfg.retrain_epochs = 2;

  core::RunAdmmPipeline(model, pruner, train, train, cfg);
  // Pruned blocks stayed zero through momentum updates.
  EXPECT_NEAR(Sparsity(model.conv2().weight().value), 0.75, 0.01);
}

}  // namespace
}  // namespace hwp3d
