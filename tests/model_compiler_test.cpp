#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/admm.h"
#include "data/synthetic_video.h"
#include "fpga/model_compiler.h"
#include "models/tiny_r2plus1d.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "tensor/init.h"

namespace hwp3d {
namespace {

class ModelCompilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::Warning);
    models::TinyR2Plus1dConfig mcfg;
    mcfg.num_classes = 4;
    mcfg.stem_channels = 4;
    mcfg.stage1_channels = 8;
    mcfg.stage2_channels = 8;
    model_ = std::make_unique<models::TinyR2Plus1d>(mcfg, rng_);
    // Adopt sane BN statistics by running a couple of training batches.
    data::SyntheticVideoConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.frames = 6;
    dcfg.height = 10;
    dcfg.width = 10;
    dataset_ = std::make_unique<data::SyntheticVideoDataset>(dcfg);
    auto batches = dataset_->MakeBatches(16, 8, rng_);
    nn::Sgd opt(model_->Params(),
                {.lr = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f});
    nn::TrainEpoch(*model_, opt, batches, {});
  }
  void TearDown() override { SetLogLevel(LogLevel::Info); }

  TensorF MakeClip() {
    Rng rng(3);
    return dataset_->MakeSample(1, rng).clip;
  }

  Rng rng_{11};
  std::unique_ptr<models::TinyR2Plus1d> model_;
  std::unique_ptr<data::SyntheticVideoDataset> dataset_;
};

TEST_F(ModelCompilerTest, DenseCompilationTracksFloatModel) {
  fpga::CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  fpga::CompiledTinyR2Plus1d compiled(*model_, opts);

  const TensorF clip = MakeClip();
  const TensorF accel_logits = compiled.Infer(clip);

  TensorF batch(Shape{1, clip.dim(0), clip.dim(1), clip.dim(2), clip.dim(3)});
  for (int64_t i = 0; i < clip.numel(); ++i) batch[i] = clip[i];
  const TensorF float_logits = model_->Forward(batch, false);

  ASSERT_EQ(accel_logits.numel(), float_logits.numel());
  for (int64_t k = 0; k < accel_logits.numel(); ++k) {
    EXPECT_NEAR(accel_logits[k], float_logits[k], 0.15f) << "logit " << k;
  }
}

TEST_F(ModelCompilerTest, StatsAccumulateAcrossLayers) {
  fpga::CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  fpga::CompiledTinyR2Plus1d compiled(*model_, opts);
  fpga::CompiledRunStats stats;
  compiled.Infer(MakeClip(), &stats);
  EXPECT_GT(stats.modeled_cycles, 0);
  EXPECT_GT(stats.blocks_loaded, 0);
  EXPECT_EQ(stats.blocks_skipped, 0);  // dense compilation
  EXPECT_GT(stats.macs_executed, 0);
}

TEST_F(ModelCompilerTest, MasksSkipBlocksAndMatchMaskedFloatModel) {
  // Hard-prune with the real pruner, then compile with its masks.
  std::vector<core::PruneLayerSpec> specs;
  for (nn::Conv3d* c : model_->PrunableConvs()) {
    specs.push_back({&c->weight(), {4, 4}, 0.5, c->name()});
  }
  core::AdmmPruner pruner(specs, core::AdmmConfig{});
  pruner.StartRound(0);
  pruner.HardPrune();

  fpga::CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  opts.masks = pruner.masks();
  fpga::CompiledTinyR2Plus1d compiled(*model_, opts);

  const TensorF clip = MakeClip();
  fpga::CompiledRunStats stats;
  const TensorF accel_logits = compiled.Infer(clip, &stats);
  EXPECT_GT(stats.blocks_skipped, 0);

  // Since the weights are already hard-pruned, the float model with the
  // same weights is the reference.
  TensorF batch(Shape{1, clip.dim(0), clip.dim(1), clip.dim(2), clip.dim(3)});
  for (int64_t i = 0; i < clip.numel(); ++i) batch[i] = clip[i];
  const TensorF float_logits = model_->Forward(batch, false);
  for (int64_t k = 0; k < accel_logits.numel(); ++k) {
    EXPECT_NEAR(accel_logits[k], float_logits[k], 0.15f) << "logit " << k;
  }
}

TEST_F(ModelCompilerTest, ClassifyReturnsArgmax) {
  fpga::CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  fpga::CompiledTinyR2Plus1d compiled(*model_, opts);
  const TensorF clip = MakeClip();
  const TensorF logits = compiled.Infer(clip);
  int expect = 0;
  for (int64_t k = 1; k < logits.numel(); ++k) {
    if (logits[k] > logits[expect]) expect = static_cast<int>(k);
  }
  EXPECT_EQ(compiled.Classify(clip), expect);
}

TEST_F(ModelCompilerTest, RejectsMismatchedMasks) {
  fpga::CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  opts.masks.resize(3);  // wrong count (8 prunable convs)
  EXPECT_THROW(fpga::CompiledTinyR2Plus1d(*model_, opts), Error);
}

TEST_F(ModelCompilerTest, CompileReturnsStatusInsteadOfThrowing) {
  fpga::CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  opts.masks.resize(3);  // wrong count (8 prunable convs)
  auto bad = fpga::CompiledTinyR2Plus1d::Compile(*model_, opts);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  opts.masks.clear();
  auto good = fpga::CompiledTinyR2Plus1d::Compile(*model_, opts);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  // The Status path compiles the same artifact as the throwing ctor.
  fpga::CompiledTinyR2Plus1d direct(*model_, opts);
  const TensorF clip = MakeClip();
  const TensorF a = good->Infer(clip);
  const TensorF b = direct.Infer(clip);
  for (int64_t k = 0; k < a.numel(); ++k) EXPECT_EQ(a[k], b[k]);
}

TEST_F(ModelCompilerTest, CompileRejectsMismatchedMaskGrid) {
  // Masks built for an 8x8 block grid can't feed a (4, 4) tiling.
  std::vector<core::PruneLayerSpec> specs;
  for (nn::Conv3d* c : model_->PrunableConvs()) {
    specs.push_back({&c->weight(), {8, 8}, 0.5, c->name()});
  }
  core::AdmmPruner pruner(specs, core::AdmmConfig{});
  pruner.StartRound(0);
  pruner.HardPrune();

  fpga::CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  opts.masks = pruner.masks();
  auto bad = fpga::CompiledTinyR2Plus1d::Compile(*model_, opts);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // The message should steer the user back to re-pruning at (Tm, Tn).
  EXPECT_NE(bad.status().message().find("block"), std::string::npos)
      << bad.status().ToString();
}

TEST_F(ModelCompilerTest, RejectsBadClipRank) {
  fpga::CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  fpga::CompiledTinyR2Plus1d compiled(*model_, opts);
  EXPECT_THROW(compiled.Infer(TensorF(Shape{1, 6, 10})), ShapeError);
}

}  // namespace
}  // namespace hwp3d
