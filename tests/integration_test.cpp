// End-to-end integration: train the tiny R(2+1)D on synthetic video,
// blockwise-prune it with ADMM, and execute a pruned layer on the FPGA
// tile simulator — the full co-design loop of the paper in miniature.
#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "data/synthetic_video.h"
#include "fpga/tiled_conv_sim.h"
#include "models/tiny_r2plus1d.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { SetLogLevel(LogLevel::Warning); }
  void TearDown() override { SetLogLevel(LogLevel::Info); }
};

TEST_F(IntegrationTest, TinyR2Plus1dLearnsMotion) {
  Rng rng(21);
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(48, 8, rng);
  const auto test = dataset.MakeBatches(24, 8, rng);

  models::TinyR2Plus1dConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.stem_channels = 4;
  mcfg.stage1_channels = 8;
  mcfg.stage2_channels = 8;
  models::TinyR2Plus1d model(mcfg, rng);

  nn::Sgd opt(model.Params(),
              {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 0.0f});
  double first_acc = 0.0, last_acc = 0.0;
  for (int e = 0; e < 6; ++e) {
    const nn::EpochStats s = nn::TrainEpoch(model, opt, train, {});
    if (e == 0) first_acc = s.accuracy;
    last_acc = s.accuracy;
  }
  // Learning happened (motion classes are not guessable from one frame).
  EXPECT_GT(last_acc, first_acc);
  EXPECT_GT(last_acc, 0.5);
  const nn::EpochStats eval = nn::Evaluate(model, test);
  EXPECT_GT(eval.accuracy, 0.33);  // well above 25% chance
}

TEST_F(IntegrationTest, PrunedConvRunsOnAcceleratorBitExactly) {
  // Take a (2+1)D conv from the tiny model, hard-prune it blockwise,
  // then verify the tile simulator with block-enable reproduces the
  // pruned float conv (through quantization) while skipping blocks.
  Rng rng(22);
  models::TinyR2Plus1dConfig mcfg;
  mcfg.stem_channels = 4;
  mcfg.stage1_channels = 8;
  mcfg.stage2_channels = 8;
  models::TinyR2Plus1d model(mcfg, rng);

  nn::Conv3d* conv = model.PrunableConvs()[2];  // stage1 conv2 spatial
  core::BlockConfig block{4, 4};
  core::BlockPartition part(conv->weight().value.shape(), block);
  const core::ProjectionResult proj =
      core::ProjectToBlockSparse(conv->weight().value, part, 0.5);
  ASSERT_GT(proj.pruned_blocks, 0);

  // Run the pruned conv on the accelerator.
  const auto& cfg = conv->config();
  TensorF x(Shape{cfg.in_channels, 4, 6, 6});
  FillUniform(x, rng, -1.0f, 1.0f);
  const TensorQ xq = fpga::PadInput(
      Quantize(x), {cfg.padding[0], cfg.padding[1], cfg.padding[2]});
  fpga::TiledConvSim sim(fpga::Tiling{4, 4, 2, 3, 3}, {});
  const fpga::TiledConvResult run = sim.Run(
      Quantize(conv->weight().value), xq,
      {cfg.stride[0], cfg.stride[1], cfg.stride[2]}, &proj.mask, {});
  EXPECT_GT(run.stats.blocks_skipped, 0);

  // Compare with the float layer (batch form), elementwise.
  TensorF xb(Shape{1, cfg.in_channels, 4, 6, 6});
  for (int64_t i = 0; i < x.numel(); ++i) xb[i] = x[i];
  const TensorF y_float = conv->Forward(xb, false);
  ASSERT_EQ(y_float.numel(), run.output.numel());
  for (int64_t i = 0; i < y_float.numel(); ++i) {
    EXPECT_NEAR(run.output[i].ToFloat(), y_float[i], 0.08f) << "at " << i;
  }
}

TEST_F(IntegrationTest, AdmmPreservesAccuracyBetterThanHardPrune) {
  // The paper's headline algorithmic claim in miniature: ADMM + masked
  // retraining recovers (nearly all) accuracy at high block sparsity,
  // while one-shot hard pruning of the same trained model degrades it.
  Rng rng(23);
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(48, 8, rng);
  const auto test = dataset.MakeBatches(32, 8, rng);

  models::TinyR2Plus1dConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.stem_channels = 4;
  mcfg.stage1_channels = 8;
  mcfg.stage2_channels = 8;
  models::TinyR2Plus1d model(mcfg, rng);

  nn::Sgd opt(model.Params(),
              {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 0.0f});
  for (int e = 0; e < 6; ++e) nn::TrainEpoch(model, opt, train, {});
  const double base_acc = nn::Evaluate(model, test).accuracy;

  std::vector<core::PruneLayerSpec> specs;
  for (nn::Conv3d* c : model.PrunableConvs()) {
    specs.push_back({&c->weight(), {4, 4}, 0.5, c->name()});
  }
  core::AdmmConfig admm_cfg;
  admm_cfg.rho_schedule = {0.005, 0.05};
  core::AdmmPruner pruner(specs, admm_cfg);

  core::PipelineConfig cfg;
  cfg.admm = admm_cfg;
  cfg.epochs_per_round = 2;
  cfg.retrain_epochs = 4;
  cfg.admm_lr = 0.02f;
  cfg.retrain_lr = 0.02f;
  const core::PipelineResult result =
      core::RunAdmmPipeline(model, pruner, train, test, cfg);

  // Every prunable layer hit its block-sparsity target.
  for (const auto& s : result.layer_stats) {
    EXPECT_NEAR(
        static_cast<double>(s.kept_blocks) / s.total_blocks, 0.5,
        0.51 / static_cast<double>(s.total_blocks));
  }
  // Negligible-loss claim, tiny-scale version: retrained accuracy within
  // 15 points of the dense baseline (the paper: 89.0% -> 88.66%).
  EXPECT_GE(result.retrained_test_acc, base_acc - 0.15);
}

}  // namespace
}  // namespace hwp3d
