#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/baselines.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

using core::FilterPruner;
using core::MagnitudePruner;

nn::Param MakeWeight(const Shape& shape, uint64_t seed) {
  nn::Param p("w", shape);
  Rng rng(seed);
  FillNormal(p.value, rng, 0.0f, 1.0f);
  return p;
}

TEST(MagnitudePrunerTest, AchievesElementSparsity) {
  nn::Param w = MakeWeight(Shape{8, 8, 1, 3, 3}, 1);
  MagnitudePruner pruner({{&w, 0.9, "l"}});
  pruner.HardPrune();
  EXPECT_NEAR(Sparsity(w.value), 0.9, 1.0 / w.value.numel() + 1e-9);
}

TEST(MagnitudePrunerTest, KeepsLargestMagnitudes) {
  nn::Param w("w", Shape{1, 1, 1, 1, 8});
  for (int64_t i = 0; i < 8; ++i)
    w.value[i] = static_cast<float>(i + 1) * ((i % 2 == 0) ? -1.0f : 1.0f);
  MagnitudePruner pruner({{&w, 0.5, "l"}});
  pruner.HardPrune();
  // |1|..|4| pruned, |5|..|8| kept regardless of sign.
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(w.value[i], 0.0f);
  for (int64_t i = 4; i < 8; ++i) EXPECT_NE(w.value[i], 0.0f);
}

TEST(MagnitudePrunerTest, StatsReportKeptCounts) {
  nn::Param w = MakeWeight(Shape{4, 4, 1, 1, 1}, 2);
  MagnitudePruner pruner({{&w, 0.75, "layer"}});
  pruner.HardPrune();
  const auto stats = pruner.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].total_params, 16);
  EXPECT_EQ(stats[0].kept_params, 4);
  EXPECT_NEAR(stats[0].prune_rate(), 4.0, 1e-9);
}

TEST(MagnitudePrunerTest, NonStructuredSparsityIsNotBlockSkippable) {
  // The paper's core motivation: at equal sparsity, element-wise pruning
  // leaves almost no fully-zero Tm x Tn blocks for the FPGA to skip.
  nn::Param w = MakeWeight(Shape{64, 64, 1, 3, 3}, 3);
  MagnitudePruner pruner({{&w, 0.9, "l"}});
  pruner.HardPrune();
  const double skippable = pruner.SkippableBlockFraction(0, {8, 8});
  EXPECT_LT(skippable, 0.05);  // ~0 blocks skippable despite 90% sparsity
}

TEST(MagnitudePrunerTest, MaskedRetrainingSupport) {
  nn::Param w = MakeWeight(Shape{4, 4, 1, 1, 1}, 4);
  MagnitudePruner pruner({{&w, 0.5, "l"}});
  pruner.HardPrune();
  w.grad.Fill(1.0f);
  pruner.MaskGradients();
  int64_t zeroed = 0;
  for (int64_t i = 0; i < w.grad.numel(); ++i)
    if (w.grad[i] == 0.0f) ++zeroed;
  EXPECT_EQ(zeroed, 8);

  for (int64_t i = 0; i < w.value.numel(); ++i) w.value[i] += 1.0f;
  pruner.ReapplyMasks();
  EXPECT_NEAR(Sparsity(w.value), 0.5, 1e-9);
}

TEST(FilterPrunerTest, PrunesWholeFilters) {
  nn::Param w = MakeWeight(Shape{8, 4, 1, 3, 3}, 5);
  FilterPruner pruner({{&w, 0.5, "l"}});
  pruner.HardPrune();
  int64_t zero_filters = 0;
  const int64_t per_filter = 4 * 9;
  for (int64_t m = 0; m < 8; ++m) {
    bool all_zero = true;
    for (int64_t k = 0; k < per_filter; ++k) {
      if (w.value[m * per_filter + k] != 0.0f) all_zero = false;
    }
    if (all_zero) ++zero_filters;
  }
  EXPECT_EQ(zero_filters, 4);
}

TEST(FilterPrunerTest, KeepsLargestNormFilters) {
  nn::Param w("w", Shape{4, 1, 1, 1, 2});
  // Filter m has norm proportional to m+1.
  for (int64_t m = 0; m < 4; ++m) {
    w.value(m, 0, 0, 0, 0) = static_cast<float>(m + 1);
    w.value(m, 0, 0, 0, 1) = 0.0f;
  }
  FilterPruner pruner({{&w, 0.5, "l"}});
  pruner.HardPrune();
  EXPECT_FLOAT_EQ(w.value(0, 0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(w.value(1, 0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(w.value(2, 0, 0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(w.value(3, 0, 0, 0, 0), 4.0f);
}

TEST(FilterPrunerTest, FilterSparsityIsBlockSkippableAlongM) {
  // Structured filter pruning zeroes whole rows of the block grid when
  // the pruned filters align with Tm groups — the best case for the
  // block-enable mechanism, but the paper shows it costs more accuracy.
  nn::Param w = MakeWeight(Shape{64, 64, 1, 1, 1}, 6);
  FilterPruner pruner({{&w, 0.75, "l"}});
  pruner.HardPrune();
  // With Tm = 1 every pruned filter is a skippable block row.
  const double skippable = pruner.SkippableBlockFraction(0, {1, 64});
  EXPECT_NEAR(skippable, 0.75, 0.02);
}

TEST(FilterPrunerTest, RejectsNonConvWeights) {
  nn::Param w("w", Shape{4, 4});
  EXPECT_THROW(FilterPruner({{&w, 0.5, "l"}}), Error);
}

TEST(MaskedPrunerTest, UseBeforeHardPruneThrows) {
  nn::Param w = MakeWeight(Shape{4, 4, 1, 1, 1}, 7);
  MagnitudePruner pruner({{&w, 0.5, "l"}});
  EXPECT_THROW(pruner.MaskGradients(), Error);
  EXPECT_THROW(pruner.Stats(), Error);
  EXPECT_THROW(pruner.SkippableBlockFraction(0, {2, 2}), Error);
}

// Property comparison: at the same sparsity, blockwise pruning yields
// full block skipping, magnitude pruning nearly none — quantifying the
// "hardware-aware" claim.
TEST(BaselineComparisonTest, BlockwiseBeatsNonStructuredOnSkippability) {
  nn::Param w_mag = MakeWeight(Shape{64, 32, 1, 3, 3}, 8);
  MagnitudePruner mag({{&w_mag, 0.875, "mag"}});
  mag.HardPrune();

  nn::Param w_blk = MakeWeight(Shape{64, 32, 1, 3, 3}, 8);
  core::BlockPartition part(w_blk.value.shape(), {8, 8});
  core::ProjectToBlockSparse(w_blk.value, part, 0.875);

  const double mag_skippable = mag.SkippableBlockFraction(0, {8, 8});
  // Blockwise: count fully-zero blocks directly.
  const auto norms = part.BlockSqNorms(w_blk.value);
  int64_t zero_blocks = 0;
  for (double n : norms)
    if (n == 0.0) ++zero_blocks;
  const double blk_skippable =
      static_cast<double>(zero_blocks) / part.num_blocks();

  EXPECT_NEAR(blk_skippable, 0.875, 1e-9);
  EXPECT_LT(mag_skippable, 0.1);
}

}  // namespace
}  // namespace hwp3d
