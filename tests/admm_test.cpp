#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/admm.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

using core::AdmmConfig;
using core::AdmmPruner;
using core::AdmmResiduals;
using core::PruneLayerSpec;

nn::Param MakeWeight(const Shape& shape, uint64_t seed) {
  nn::Param p("w", shape);
  Rng rng(seed);
  FillNormal(p.value, rng, 0.0f, 1.0f);
  return p;
}

TEST(AdmmPrunerTest, ProximalGradientMatchesFormula) {
  nn::Param w = MakeWeight(Shape{4, 4, 1, 1, 1}, 1);
  AdmmConfig cfg;
  cfg.rho_schedule = {0.5};
  AdmmPruner pruner({{&w, {2, 2}, 0.5, "l0"}}, cfg);
  pruner.StartRound(0);
  // After init: Z = Proj(W), V = 0, so grad += rho * (W - Z).
  w.grad.Fill(0.0f);
  pruner.AddProximalGradients();
  // Elements of surviving blocks have W == Z -> zero gradient; pruned
  // blocks get rho * W.
  int64_t zero_grads = 0, prop_grads = 0;
  for (int64_t i = 0; i < w.value.numel(); ++i) {
    if (std::fabs(w.grad[i]) < 1e-12f) {
      ++zero_grads;
    } else {
      EXPECT_NEAR(w.grad[i], 0.5f * w.value[i], 1e-6f);
      ++prop_grads;
    }
  }
  EXPECT_EQ(zero_grads, 8);  // 2 surviving blocks x 4 elements
  EXPECT_EQ(prop_grads, 8);
}

TEST(AdmmPrunerTest, RequiresStartRoundFirst) {
  nn::Param w = MakeWeight(Shape{4, 4, 1, 1, 1}, 2);
  AdmmPruner pruner({{&w, {2, 2}, 0.5, "l0"}}, AdmmConfig{});
  EXPECT_THROW(pruner.AddProximalGradients(), Error);
  EXPECT_THROW(pruner.UpdateAuxiliaries(), Error);
}

TEST(AdmmPrunerTest, ConvergesOnQuadraticToyProblem) {
  // f(W) = 0.5 ||W - W*||^2 with a dense W*. The ADMM iterates must
  // drive W toward a block-sparse tensor close to Proj(W*), with the
  // primal residual ||W - Z|| -> 0.
  const Shape shape{8, 8, 1, 1, 1};
  nn::Param w = MakeWeight(shape, 3);
  const TensorF target = w.value;  // start at the unconstrained optimum

  AdmmConfig cfg;
  cfg.rho_schedule = {0.1, 1.0, 10.0};
  cfg.epsilon = 1e-3;
  AdmmPruner pruner({{&w, {4, 4}, 0.75, "toy"}}, cfg);

  AdmmResiduals last;
  for (int round = 0; round < pruner.num_rounds(); ++round) {
    pruner.StartRound(round);
    for (int it = 0; it < 60; ++it) {
      // Exact gradient descent on f + proximal term.
      w.grad.Fill(0.0f);
      for (int64_t i = 0; i < w.value.numel(); ++i) {
        w.grad[i] = w.value[i] - target[i];
      }
      pruner.AddProximalGradients();
      for (int64_t i = 0; i < w.value.numel(); ++i) {
        w.value[i] -= 0.1f * w.grad[i];
      }
      last = pruner.UpdateAuxiliaries();
    }
  }
  EXPECT_LT(last.primal, 0.05);
  // Hard prune should now barely move W.
  const TensorF before = w.value;
  pruner.HardPrune();
  const float delta = FrobeniusNorm(Sub(before, w.value));
  const float scale = FrobeniusNorm(before);
  EXPECT_LT(delta / scale, 0.1f);
  // And the result satisfies the sparsity constraint.
  EXPECT_NEAR(Sparsity(w.value), 0.75, 1e-9);
}

TEST(AdmmPrunerTest, ResidualsShrinkWithStrongPenalty) {
  // With rho dominating the data term, the W-step tracks Z and the
  // primal residual must contract.
  const Shape shape{8, 8, 1, 1, 1};
  nn::Param w = MakeWeight(shape, 4);
  const TensorF target = w.value;
  AdmmConfig cfg;
  cfg.rho_schedule = {5.0};
  AdmmPruner pruner({{&w, {4, 4}, 0.5, "toy"}}, cfg);
  pruner.StartRound(0);

  double first_primal = -1.0, last_primal = -1.0;
  for (int it = 0; it < 80; ++it) {
    w.grad.Fill(0.0f);
    for (int64_t i = 0; i < w.value.numel(); ++i)
      w.grad[i] = w.value[i] - target[i];
    pruner.AddProximalGradients();
    for (int64_t i = 0; i < w.value.numel(); ++i)
      w.value[i] -= 0.05f * w.grad[i];
    const AdmmResiduals r = pruner.UpdateAuxiliaries();
    if (it == 0) first_primal = r.primal;
    last_primal = r.primal;
  }
  EXPECT_LT(last_primal, first_primal);
  EXPECT_LT(last_primal, 0.1);
}

TEST(AdmmPrunerTest, HardPruneProducesStatsAndMasks) {
  nn::Param w = MakeWeight(Shape{16, 8, 1, 3, 3}, 5);
  AdmmConfig cfg;
  AdmmPruner pruner({{&w, {4, 4}, 0.75, "layer"}}, cfg);
  pruner.StartRound(0);
  pruner.HardPrune();
  const auto stats = pruner.Stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].total_blocks, 8);
  EXPECT_EQ(stats[0].kept_blocks, 2);
  EXPECT_EQ(stats[0].total_params, 16 * 8 * 9);
  EXPECT_EQ(stats[0].kept_params, 2 * 4 * 4 * 9);
  EXPECT_NEAR(stats[0].achieved_sparsity(), 0.75, 1e-9);
  EXPECT_NEAR(stats[0].prune_rate(), 4.0, 1e-9);
}

TEST(AdmmPrunerTest, MaskGradientsZeroesPrunedBlocks) {
  nn::Param w = MakeWeight(Shape{8, 8, 1, 1, 1}, 6);
  AdmmPruner pruner({{&w, {4, 4}, 0.5, "layer"}}, AdmmConfig{});
  pruner.StartRound(0);
  pruner.HardPrune();
  w.grad.Fill(1.0f);
  pruner.MaskGradients();
  // Gradient zeroed exactly where the value was pruned.
  for (int64_t i = 0; i < w.value.numel(); ++i) {
    if (w.value[i] == 0.0f) {
      EXPECT_FLOAT_EQ(w.grad[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(w.grad[i], 1.0f);
    }
  }
}

TEST(AdmmPrunerTest, ReapplyMasksUndoesDrift) {
  nn::Param w = MakeWeight(Shape{8, 8, 1, 1, 1}, 7);
  AdmmPruner pruner({{&w, {4, 4}, 0.5, "layer"}}, AdmmConfig{});
  pruner.StartRound(0);
  pruner.HardPrune();
  const double s0 = Sparsity(w.value);
  // Simulate momentum drift: perturb everything.
  for (int64_t i = 0; i < w.value.numel(); ++i) w.value[i] += 0.01f;
  EXPECT_LT(Sparsity(w.value), s0);
  pruner.ReapplyMasks();
  EXPECT_NEAR(Sparsity(w.value), s0, 1e-12);
}

TEST(AdmmPrunerTest, MultiLayerIndependentEtas) {
  nn::Param w1 = MakeWeight(Shape{8, 8, 1, 1, 1}, 8);
  nn::Param w2 = MakeWeight(Shape{8, 8, 1, 1, 1}, 9);
  AdmmPruner pruner({{&w1, {4, 4}, 0.75, "a"}, {&w2, {4, 4}, 0.5, "b"}},
                    AdmmConfig{});
  pruner.StartRound(0);
  pruner.HardPrune();
  const auto stats = pruner.Stats();
  EXPECT_EQ(stats[0].kept_blocks, 1);
  EXPECT_EQ(stats[1].kept_blocks, 2);
}

TEST(AdmmPrunerTest, ProximalPenaltyMatchesDefinition) {
  // ProximalPenalty must equal sum_i rho/2 ||W_i - Z_i + V_i||_F^2,
  // computable by hand right after initialization (V = 0, Z = Proj(W)):
  // the penalty is then rho/2 times the squared norm of the pruned part.
  nn::Param w = MakeWeight(Shape{8, 8, 1, 1, 1}, 10);
  AdmmConfig cfg;
  cfg.rho_schedule = {2.0};
  AdmmPruner pruner({{&w, {4, 4}, 0.5, "l"}}, cfg);
  pruner.StartRound(0);

  TensorF z = w.value;
  core::BlockPartition part(w.value.shape(), {4, 4});
  core::ProjectToBlockSparse(z, part, 0.5);
  double expect = 0.0;
  for (int64_t i = 0; i < w.value.numel(); ++i) {
    const double d = static_cast<double>(w.value[i]) - z[i];
    expect += d * d;
  }
  expect *= 0.5 * 2.0;
  EXPECT_NEAR(pruner.ProximalPenalty(), expect, 1e-6 * (1.0 + expect));
}

TEST(AdmmPrunerTest, RejectsInvalidSetup) {
  EXPECT_THROW(AdmmPruner({}, AdmmConfig{}), Error);
  nn::Param w = MakeWeight(Shape{4, 4, 1, 1, 1}, 11);
  EXPECT_THROW(AdmmPruner({{&w, {2, 2}, 1.5, "bad"}}, AdmmConfig{}), Error);
  EXPECT_THROW(AdmmPruner({{nullptr, {2, 2}, 0.5, "null"}}, AdmmConfig{}),
               Error);
  AdmmConfig empty;
  empty.rho_schedule.clear();
  EXPECT_THROW(AdmmPruner({{&w, {2, 2}, 0.5, "l"}}, empty), Error);
}

TEST(AdmmPrunerTest, StatsBeforeHardPruneThrows) {
  nn::Param w = MakeWeight(Shape{4, 4, 1, 1, 1}, 12);
  AdmmPruner pruner({{&w, {2, 2}, 0.5, "l"}}, AdmmConfig{});
  pruner.StartRound(0);
  EXPECT_THROW(pruner.Stats(), Error);
  EXPECT_THROW(pruner.MaskGradients(), Error);
}

}  // namespace
}  // namespace hwp3d
