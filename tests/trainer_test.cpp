#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/trainer.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

// A linearly-separable 2-class toy problem on 2-D points.
std::vector<nn::Batch> ToyBatches(int batches, int bsz, Rng& rng) {
  std::vector<nn::Batch> out;
  for (int b = 0; b < batches; ++b) {
    nn::Batch batch;
    batch.clips = TensorF(Shape{bsz, 2});
    batch.labels.resize(static_cast<size_t>(bsz));
    for (int i = 0; i < bsz; ++i) {
      const int label = rng.Flip() ? 1 : 0;
      const float center = label == 0 ? -1.0f : 1.0f;
      batch.clips(i, 0) = center + static_cast<float>(rng.Normal(0, 0.3));
      batch.clips(i, 1) = -center + static_cast<float>(rng.Normal(0, 0.3));
      batch.labels[static_cast<size_t>(i)] = label;
    }
    out.push_back(std::move(batch));
  }
  return out;
}

TEST(TrainerTest, LearnsSeparableProblem) {
  Rng rng(1);
  const auto train = ToyBatches(8, 16, rng);
  nn::Sequential model;
  model.Emplace<nn::Linear>(2, 2, rng, "fc");
  nn::Sgd opt(model.Params(), {.lr = 0.2f, .momentum = 0.9f,
                               .weight_decay = 0.0f});
  nn::EpochStats last;
  for (int e = 0; e < 10; ++e) last = nn::TrainEpoch(model, opt, train, {});
  EXPECT_GT(last.accuracy, 0.95);
  EXPECT_LT(last.mean_loss, 0.3f);
  EXPECT_EQ(last.samples, 8 * 16);
}

TEST(TrainerTest, HooksFirePerBatch) {
  Rng rng(2);
  const auto train = ToyBatches(5, 4, rng);
  nn::Sequential model;
  model.Emplace<nn::Linear>(2, 2, rng, "fc");
  nn::Sgd opt(model.Params(), {.lr = 0.1f, .momentum = 0.0f,
                               .weight_decay = 0.0f});
  int backward_hooks = 0, step_hooks = 0;
  nn::TrainOptions opts;
  opts.post_backward = [&]() { ++backward_hooks; };
  opts.post_step = [&]() { ++step_hooks; };
  nn::TrainEpoch(model, opt, train, opts);
  EXPECT_EQ(backward_hooks, 5);
  EXPECT_EQ(step_hooks, 5);
}

TEST(TrainerTest, PostBackwardSeesGradsBeforeStep) {
  Rng rng(3);
  const auto train = ToyBatches(1, 8, rng);
  nn::Sequential model;
  nn::Linear* fc = model.Emplace<nn::Linear>(2, 2, rng, "fc");
  nn::Sgd opt(model.Params(), {.lr = 0.1f, .momentum = 0.0f,
                               .weight_decay = 0.0f});
  float grad_norm_at_hook = -1.0f;
  nn::TrainOptions opts;
  opts.post_backward = [&]() {
    grad_norm_at_hook = MaxAbs(fc->weight().grad);
  };
  nn::TrainEpoch(model, opt, train, opts);
  EXPECT_GT(grad_norm_at_hook, 0.0f);
}

TEST(TrainerTest, EvaluateDoesNotTrain) {
  Rng rng(4);
  const auto data = ToyBatches(3, 8, rng);
  nn::Sequential model;
  nn::Linear* fc = model.Emplace<nn::Linear>(2, 2, rng, "fc");
  const TensorF before = fc->weight().value;
  const nn::EpochStats stats = nn::Evaluate(model, data);
  EXPECT_TRUE(AllClose(fc->weight().value, before, 0.0f, 0.0f));
  EXPECT_EQ(stats.samples, 24);
}

TEST(TrainerTest, EmptyBatchesGiveZeroStats) {
  Rng rng(5);
  nn::Sequential model;
  model.Emplace<nn::Linear>(2, 2, rng, "fc");
  nn::Sgd opt(model.Params(), {.lr = 0.1f, .momentum = 0.0f,
                               .weight_decay = 0.0f});
  const nn::EpochStats stats = nn::TrainEpoch(model, opt, {}, {});
  EXPECT_EQ(stats.samples, 0);
  EXPECT_DOUBLE_EQ(stats.accuracy, 0.0);
}

}  // namespace
}  // namespace hwp3d
