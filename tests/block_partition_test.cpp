#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/block_partition.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

using core::BlockConfig;
using core::BlockMask;
using core::BlockPartition;

TEST(BlockPartitionTest, GridCounts) {
  BlockPartition p(Shape{64, 32, 3, 3, 3}, {16, 8});
  EXPECT_EQ(p.blocks_m(), 4);
  EXPECT_EQ(p.blocks_n(), 4);
  EXPECT_EQ(p.num_blocks(), 16);
}

TEST(BlockPartitionTest, EdgeBlocksWithNonDividingTiles) {
  // The paper's conv2_x spatial layer: M=144 with Tm=64 -> 3 row groups
  // of 64, 64, 16 channels.
  BlockPartition p(Shape{144, 64, 1, 3, 3}, {64, 8});
  EXPECT_EQ(p.blocks_m(), 3);
  EXPECT_EQ(p.blocks_n(), 8);
  EXPECT_EQ(p.m_end(0) - p.m_begin(0), 64);
  EXPECT_EQ(p.m_end(2) - p.m_begin(2), 16);  // partial edge block
  EXPECT_EQ(p.BlockParams(0, 0), 64 * 8 * 9);
  EXPECT_EQ(p.BlockParams(2, 0), 16 * 8 * 9);
}

TEST(BlockPartitionTest, BlockParamsSumToTensor) {
  BlockPartition p(Shape{30, 17, 2, 3, 3}, {8, 4});
  int64_t total = 0;
  for (int64_t bm = 0; bm < p.blocks_m(); ++bm)
    for (int64_t bn = 0; bn < p.blocks_n(); ++bn)
      total += p.BlockParams(bm, bn);
  EXPECT_EQ(total, 30 * 17 * 2 * 3 * 3);
}

TEST(BlockPartitionTest, SqNormsMatchManualSum) {
  Rng rng(1);
  TensorF w(Shape{4, 4, 1, 2, 2});
  FillUniform(w, rng, -1.0f, 1.0f);
  BlockPartition p(w.shape(), {2, 2});
  const auto norms = p.BlockSqNorms(w);
  ASSERT_EQ(norms.size(), 4u);
  // Manual: block (0,0) covers m in {0,1}, n in {0,1}.
  double expect = 0.0;
  for (int64_t m = 0; m < 2; ++m)
    for (int64_t n = 0; n < 2; ++n)
      for (int64_t kr = 0; kr < 2; ++kr)
        for (int64_t kc = 0; kc < 2; ++kc) {
          const double v = w(m, n, 0, kr, kc);
          expect += v * v;
        }
  EXPECT_NEAR(norms[0], expect, 1e-6);
}

TEST(BlockPartitionTest, SqNormsTotalEqualsFrobenius) {
  Rng rng(2);
  TensorF w(Shape{10, 7, 2, 2, 2});
  FillNormal(w, rng, 0.0f, 1.0f);
  BlockPartition p(w.shape(), {4, 3});
  const auto norms = p.BlockSqNorms(w);
  double total = 0.0;
  for (double n : norms) total += n;
  const double fro = FrobeniusNorm(w);
  EXPECT_NEAR(total, fro * fro, 1e-3);
}

TEST(BlockPartitionTest, ApplyMaskZeroesOnlyDisabled) {
  TensorF w(Shape{4, 4, 1, 1, 1}, 1.0f);
  BlockPartition p(w.shape(), {2, 2});
  BlockMask mask = p.FullMask();
  mask.set(0, 1, false);  // m in {0,1}, n in {2,3}
  p.ApplyMask(w, mask);
  EXPECT_FLOAT_EQ(w(0, 2, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(w(1, 3, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(w(0, 0, 0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(w(2, 2, 0, 0, 0), 1.0f);
  EXPECT_EQ(CountZeros(w), 4);
}

TEST(BlockPartitionTest, EnabledParamsAccountsForEdgeBlocks) {
  BlockPartition p(Shape{10, 6, 1, 1, 1}, {4, 4});
  BlockMask mask = p.FullMask();
  EXPECT_EQ(p.EnabledParams(mask), 60);
  mask.set(2, 1, false);  // edge block: 2 rows x 2 cols
  EXPECT_EQ(p.EnabledParams(mask), 60 - 4);
  mask.set(0, 0, false);  // full block: 4x4
  EXPECT_EQ(p.EnabledParams(mask), 60 - 4 - 16);
}

TEST(BlockMaskTest, RowCounting) {
  BlockPartition p(Shape{8, 8, 1, 1, 1}, {4, 2});
  BlockMask mask = p.FullMask();
  EXPECT_EQ(mask.CountEnabledInRow(0), 4);
  mask.set(0, 1, false);
  mask.set(0, 3, false);
  EXPECT_EQ(mask.CountEnabledInRow(0), 2);
  EXPECT_EQ(mask.CountEnabledInRow(1), 4);
  EXPECT_EQ(mask.CountEnabled(), 6);
}

TEST(BlockPartitionTest, RejectsWrongRank) {
  EXPECT_THROW(BlockPartition(Shape{4, 4}, {2, 2}), ShapeError);
}

TEST(BlockPartitionTest, RejectsShapeMismatchOnUse) {
  BlockPartition p(Shape{4, 4, 1, 1, 1}, {2, 2});
  TensorF wrong(Shape{4, 4, 1, 1, 2});
  EXPECT_THROW(p.BlockSqNorms(wrong), ShapeError);
}

TEST(BlockPartitionTest, RejectsBadTiles) {
  EXPECT_THROW(BlockPartition(Shape{4, 4, 1, 1, 1}, {0, 2}), Error);
}

// Property sweep: for arbitrary (M, N, Tm, Tn), block geometry is
// consistent — grids cover the tensor exactly, no overlap, no gap.
struct GridCase {
  int64_t M, N, Tm, Tn;
};
class GridSweep : public ::testing::TestWithParam<GridCase> {};

TEST_P(GridSweep, CoversExactly) {
  const GridCase g = GetParam();
  BlockPartition p(Shape{g.M, g.N, 1, 1, 1}, {g.Tm, g.Tn});
  EXPECT_EQ(p.blocks_m(), (g.M + g.Tm - 1) / g.Tm);
  EXPECT_EQ(p.blocks_n(), (g.N + g.Tn - 1) / g.Tn);
  int64_t covered = 0;
  for (int64_t bm = 0; bm < p.blocks_m(); ++bm) {
    EXPECT_LE(p.m_end(bm), g.M);
    EXPECT_LT(p.m_begin(bm), p.m_end(bm));
    for (int64_t bn = 0; bn < p.blocks_n(); ++bn)
      covered += p.BlockParams(bm, bn);
  }
  EXPECT_EQ(covered, g.M * g.N);
}

INSTANTIATE_TEST_SUITE_P(
    Grids, GridSweep,
    ::testing::Values(GridCase{64, 64, 64, 8}, GridCase{144, 64, 64, 8},
                      GridCase{45, 3, 64, 8}, GridCase{230, 64, 64, 16},
                      GridCase{1152, 512, 64, 16}, GridCase{1, 1, 64, 8},
                      GridCase{65, 9, 64, 8}, GridCase{128, 128, 32, 32}));

}  // namespace
}  // namespace hwp3d
