#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/r2plus1d_block.h"
#include "tensor/init.h"
#include "testing/gradcheck.h"

namespace hwp3d {
namespace {

// The parameter-matching mid-channel formula must reproduce every value
// printed in Table I of the paper.
TEST(MidChannelsTest, MatchesTableI) {
  // conv2_x: 64 -> 64 gives 144.
  EXPECT_EQ(nn::R2Plus1dMidChannels(64, 64, 3, 3), 144);
  // conv3_x: 64 -> 128 gives 230; 128 -> 128 gives 288.
  EXPECT_EQ(nn::R2Plus1dMidChannels(64, 128, 3, 3), 230);
  EXPECT_EQ(nn::R2Plus1dMidChannels(128, 128, 3, 3), 288);
  // conv4_x: 128 -> 256 gives 460; 256 -> 256 gives 576.
  EXPECT_EQ(nn::R2Plus1dMidChannels(128, 256, 3, 3), 460);
  EXPECT_EQ(nn::R2Plus1dMidChannels(256, 256, 3, 3), 576);
  // conv5_x: 256 -> 512 gives 921; 512 -> 512 gives 1152.
  EXPECT_EQ(nn::R2Plus1dMidChannels(256, 512, 3, 3), 921);
  EXPECT_EQ(nn::R2Plus1dMidChannels(512, 512, 3, 3), 1152);
}

TEST(MidChannelsTest, NeverZero) {
  EXPECT_GE(nn::R2Plus1dMidChannels(1, 1, 3, 3), 1);
}

TEST(Conv2Plus1dTest, OutputShapePreservesDims) {
  Rng rng(1);
  nn::Conv2Plus1dConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 6;
  nn::Conv2Plus1d conv(cfg, rng);
  TensorF x(Shape{2, 4, 4, 8, 8});
  const TensorF y = conv.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 6, 4, 8, 8}));
}

TEST(Conv2Plus1dTest, StridesDecimate) {
  Rng rng(1);
  nn::Conv2Plus1dConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 4;
  cfg.spatial_stride = 2;
  cfg.temporal_stride = 2;
  nn::Conv2Plus1d conv(cfg, rng);
  TensorF x(Shape{1, 2, 4, 8, 8});
  const TensorF y = conv.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 2, 4, 4}));
}

TEST(Conv2Plus1dTest, ExplicitMidChannels) {
  Rng rng(1);
  nn::Conv2Plus1dConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.mid_channels = 7;
  nn::Conv2Plus1d conv(cfg, rng);
  EXPECT_EQ(conv.mid_channels(), 7);
  EXPECT_EQ(conv.spatial().config().out_channels, 7);
  EXPECT_EQ(conv.temporal().config().in_channels, 7);
}

TEST(Conv2Plus1dTest, FactorizedKernelShapes) {
  Rng rng(1);
  nn::Conv2Plus1dConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 5;
  nn::Conv2Plus1d conv(cfg, rng);
  // Spatial conv: 1 x d x d; temporal conv: t x 1 x 1.
  EXPECT_EQ(conv.spatial().weight().value.dim(2), 1);
  EXPECT_EQ(conv.spatial().weight().value.dim(3), 3);
  EXPECT_EQ(conv.temporal().weight().value.dim(2), 3);
  EXPECT_EQ(conv.temporal().weight().value.dim(3), 1);
}

TEST(Conv2Plus1dTest, GradCheck) {
  Rng rng(2);
  nn::Conv2Plus1dConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  cfg.mid_channels = 3;
  nn::Conv2Plus1d conv(cfg, rng);
  TensorF x(Shape{2, 2, 3, 4, 4});
  FillUniform(x, rng, -1.0f, 1.0f);
  testing::CheckInputGradient(conv, x);
}

TEST(ResidualBlockTest, IdentityShortcutWhenShapesMatch) {
  Rng rng(3);
  nn::ResidualBlockConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 4;
  nn::ResidualBlock block(cfg, rng);
  EXPECT_FALSE(block.has_projection());
  TensorF x(Shape{1, 4, 4, 6, 6});
  const TensorF y = block.Forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(ResidualBlockTest, ProjectionOnChannelChange) {
  Rng rng(3);
  nn::ResidualBlockConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 8;
  nn::ResidualBlock block(cfg, rng);
  EXPECT_TRUE(block.has_projection());
  TensorF x(Shape{1, 4, 4, 6, 6});
  const TensorF y = block.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 8, 4, 6, 6}));
}

TEST(ResidualBlockTest, ProjectionOnStride) {
  Rng rng(3);
  nn::ResidualBlockConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 4;
  cfg.spatial_stride = 2;
  cfg.temporal_stride = 2;
  nn::ResidualBlock block(cfg, rng);
  EXPECT_TRUE(block.has_projection());
  TensorF x(Shape{1, 4, 4, 8, 8});
  const TensorF y = block.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 4, 2, 4, 4}));
}

TEST(ResidualBlockTest, OutputNonNegativeAfterFinalReLU) {
  Rng rng(4);
  nn::ResidualBlockConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 3;
  nn::ResidualBlock block(cfg, rng);
  TensorF x(Shape{2, 3, 3, 5, 5});
  FillUniform(x, rng, -2.0f, 2.0f);
  const TensorF y = block.Forward(x, false);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_GE(y[i], 0.0f);
}

TEST(ResidualBlockTest, ResidualActuallyAdds) {
  // Zero the main path's last BN gamma => output = ReLU(shortcut). With
  // identity shortcut the block must then reproduce ReLU(x).
  Rng rng(5);
  nn::ResidualBlockConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  nn::ResidualBlock block(cfg, rng);
  // Find bn2's gamma via Params (named ".bn2.gamma").
  for (nn::Param* p : block.Params()) {
    if (p->name.find("bn2.gamma") != std::string::npos) p->value.Fill(0.0f);
  }
  TensorF x(Shape{1, 2, 3, 4, 4});
  FillUniform(x, rng, -1.0f, 1.0f);
  const TensorF y = block.Forward(x, false);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(y[i], std::max(0.0f, x[i]), 1e-5f);
  }
}

TEST(ResidualBlockTest, GradCheckIdentity) {
  Rng rng(6);
  nn::ResidualBlockConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 2;
  nn::ResidualBlock block(cfg, rng);
  TensorF x(Shape{2, 2, 3, 4, 4});
  FillUniform(x, rng, -1.0f, 1.0f);
  testing::GradCheckOptions opt;
  opt.rtol = 8e-2f;
  opt.atol = 8e-3f;
  testing::CheckInputGradient(block, x, 7, opt);
}

TEST(ResidualBlockTest, GradCheckProjection) {
  Rng rng(7);
  nn::ResidualBlockConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 4;
  cfg.spatial_stride = 2;
  cfg.temporal_stride = 1;
  nn::ResidualBlock block(cfg, rng);
  TensorF x(Shape{2, 2, 3, 6, 6});
  FillUniform(x, rng, -1.0f, 1.0f);
  testing::GradCheckOptions opt;
  opt.rtol = 8e-2f;
  opt.atol = 8e-3f;
  testing::CheckInputGradient(block, x, 7, opt);
}

}  // namespace
}  // namespace hwp3d
