#include <gtest/gtest.h>

#include "tensor/shape.h"

namespace hwp3d {
namespace {

TEST(ShapeTest, RankAndDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s[2], 4);
}

TEST(ShapeTest, Numel) {
  EXPECT_EQ((Shape{2, 3, 4}).numel(), 24);
  EXPECT_EQ((Shape{5}).numel(), 5);
  EXPECT_EQ(Shape{}.numel(), 1);  // rank-0 scalar
  EXPECT_EQ((Shape{3, 0, 4}).numel(), 0);
}

TEST(ShapeTest, RowMajorStrides) {
  Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(ShapeTest, LinearIndex) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.LinearIndex({0, 0, 0}), 0);
  EXPECT_EQ(s.LinearIndex({0, 0, 3}), 3);
  EXPECT_EQ(s.LinearIndex({0, 1, 0}), 4);
  EXPECT_EQ(s.LinearIndex({1, 2, 3}), 23);
}

TEST(ShapeTest, LinearIndexBoundsChecked) {
  Shape s{2, 3};
  EXPECT_THROW(s.LinearIndex({2, 0}), ShapeError);
  EXPECT_THROW(s.LinearIndex({0, 3}), ShapeError);
  EXPECT_THROW(s.LinearIndex({0}), ShapeError);     // wrong rank
  EXPECT_THROW(s.LinearIndex({-1, 0}), ShapeError);
}

TEST(ShapeTest, Equality) {
  EXPECT_EQ((Shape{1, 2}), (Shape{1, 2}));
  EXPECT_NE((Shape{1, 2}), (Shape{2, 1}));
  EXPECT_NE((Shape{1, 2}), (Shape{1, 2, 1}));
}

TEST(ShapeTest, ToString) {
  EXPECT_EQ((Shape{2, 3}).ToString(), "[2, 3]");
  EXPECT_EQ(Shape{}.ToString(), "[]");
}

TEST(ShapeTest, NegativeDimRejected) {
  EXPECT_THROW(Shape({-1, 2}), Error);
}

TEST(CeilDivTest, Basics) {
  EXPECT_EQ(CeilDiv(7, 2), 4);
  EXPECT_EQ(CeilDiv(8, 2), 4);
  EXPECT_EQ(CeilDiv(1, 64), 1);
  EXPECT_EQ(CeilDiv(0, 5), 0);
  EXPECT_EQ(CeilDiv(144, 64), 3);  // the conv2_x edge-block case
}

}  // namespace
}  // namespace hwp3d
