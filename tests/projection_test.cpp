#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/projection.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

using core::BlockPartition;
using core::PlanBlockSparse;
using core::ProjectionResult;
using core::ProjectToBlockSparse;

TEST(ProjectionTest, EtaZeroIsNoop) {
  Rng rng(1);
  TensorF w(Shape{8, 8, 1, 3, 3});
  FillNormal(w, rng, 0.0f, 1.0f);
  const TensorF before = w;
  BlockPartition p(w.shape(), {4, 4});
  const ProjectionResult r = ProjectToBlockSparse(w, p, 0.0);
  EXPECT_TRUE(AllClose(w, before, 0.0f, 0.0f));
  EXPECT_EQ(r.pruned_blocks, 0);
  EXPECT_EQ(r.kept_blocks, 4);
}

TEST(ProjectionTest, KeepsFloorOneMinusEtaBBlocks) {
  Rng rng(2);
  TensorF w(Shape{16, 16, 1, 1, 1});
  FillNormal(w, rng, 0.0f, 1.0f);
  BlockPartition p(w.shape(), {4, 4});  // 16 blocks
  const ProjectionResult r = ProjectToBlockSparse(w, p, 0.9);
  // Eq. 1: E <= (1-0.9)*16 = 1.6, so exactly 1 block survives.
  EXPECT_EQ(r.kept_blocks, 1);
  EXPECT_EQ(r.pruned_blocks, 15);
  EXPECT_EQ(r.mask.CountEnabled(), 1);
}

TEST(ProjectionTest, NeverPrunesEveryBlock) {
  Rng rng(2);
  TensorF w(Shape{4, 4, 1, 1, 1});
  FillNormal(w, rng, 0.0f, 1.0f);
  BlockPartition p(w.shape(), {4, 4});  // a single block
  const ProjectionResult r = ProjectToBlockSparse(w, p, 0.99);
  EXPECT_EQ(r.kept_blocks, 1);
}

TEST(ProjectionTest, SatisfiesSparsityConstraintEq1) {
  // Eq. 1: surviving blocks <= (1 - eta) * B.
  Rng rng(3);
  for (double eta : {0.5, 0.8, 0.9, 0.95}) {
    TensorF w(Shape{30, 20, 2, 3, 3});
    FillNormal(w, rng, 0.0f, 1.0f);
    BlockPartition p(w.shape(), {8, 4});
    const ProjectionResult r = ProjectToBlockSparse(w, p, eta);
    // Exact Eq. 1 membership (the >= 1 clamp never binds here).
    EXPECT_LE(static_cast<double>(r.kept_blocks),
              (1.0 - eta) * static_cast<double>(p.num_blocks()) + 1e-9);
    EXPECT_GE(r.kept_blocks, 1);
  }
}

TEST(ProjectionTest, KeepsLargestNormBlocks) {
  // Construct a tensor where block magnitudes are strictly ordered, then
  // verify exactly the top blocks survive.
  TensorF w(Shape{4, 4, 1, 1, 1});
  BlockPartition p(w.shape(), {2, 2});  // 4 blocks of 4 elements
  // Block (bm, bn) filled with value bm*2 + bn + 1.
  for (int64_t m = 0; m < 4; ++m)
    for (int64_t n = 0; n < 4; ++n)
      w(m, n, 0, 0, 0) = static_cast<float>((m / 2) * 2 + (n / 2) + 1);
  const ProjectionResult r = ProjectToBlockSparse(w, p, 0.5);
  // Blocks with fill 1 and 2 pruned; fills 3 and 4 survive.
  EXPECT_FALSE(r.mask.at(0, 0));
  EXPECT_FALSE(r.mask.at(0, 1));
  EXPECT_TRUE(r.mask.at(1, 0));
  EXPECT_TRUE(r.mask.at(1, 1));
  EXPECT_FLOAT_EQ(w(0, 0, 0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(w(3, 3, 0, 0, 0), 4.0f);
}

TEST(ProjectionTest, ThresholdSeparatesKeptFromPruned) {
  Rng rng(4);
  TensorF w(Shape{12, 12, 1, 1, 1});
  FillNormal(w, rng, 0.0f, 1.0f);
  BlockPartition p(w.shape(), {4, 4});
  const ProjectionResult r = PlanBlockSparse(w, p, 0.5);
  const auto norms = p.BlockSqNorms(w);
  for (int64_t bm = 0; bm < p.blocks_m(); ++bm)
    for (int64_t bn = 0; bn < p.blocks_n(); ++bn) {
      const double norm =
          std::sqrt(norms[static_cast<size_t>(bm * p.blocks_n() + bn)]);
      if (r.mask.at(bm, bn)) {
        EXPECT_GE(norm, r.threshold - 1e-9);
      } else {
        EXPECT_LE(norm, r.threshold + 1e-9);
      }
    }
}

TEST(ProjectionTest, IdempotentOnProjectedTensor) {
  Rng rng(5);
  TensorF w(Shape{16, 8, 1, 3, 3});
  FillNormal(w, rng, 0.0f, 1.0f);
  BlockPartition p(w.shape(), {4, 4});
  ProjectToBlockSparse(w, p, 0.75);
  const TensorF once = w;
  // Projecting again with the same eta must keep the same blocks (zero
  // blocks have the smallest norms).
  ProjectToBlockSparse(w, p, 0.75);
  EXPECT_TRUE(AllClose(w, once, 0.0f, 0.0f));
}

TEST(ProjectionTest, PlanDoesNotMutate) {
  Rng rng(6);
  TensorF w(Shape{8, 8, 1, 1, 1});
  FillNormal(w, rng, 0.0f, 1.0f);
  const TensorF before = w;
  BlockPartition p(w.shape(), {4, 4});
  PlanBlockSparse(w, p, 0.5);
  EXPECT_TRUE(AllClose(w, before, 0.0f, 0.0f));
}

TEST(ProjectionTest, ElementSparsityMatchesBlockSparsity) {
  // With uniform block sizes, element sparsity equals block sparsity.
  Rng rng(7);
  TensorF w(Shape{16, 16, 1, 3, 3});
  FillNormal(w, rng, 0.0f, 1.0f);
  BlockPartition p(w.shape(), {4, 4});  // 16 uniform blocks
  ProjectToBlockSparse(w, p, 0.75);     // prune 12 of 16
  EXPECT_NEAR(Sparsity(w), 12.0 / 16.0, 1e-9);
}

TEST(ProjectionTest, RejectsBadEta) {
  TensorF w(Shape{4, 4, 1, 1, 1});
  BlockPartition p(w.shape(), {2, 2});
  EXPECT_THROW(ProjectToBlockSparse(w, p, 1.0), Error);
  EXPECT_THROW(ProjectToBlockSparse(w, p, -0.1), Error);
}

// Property sweep over eta: kept fraction is always ceil-consistent and
// the projection distance is minimal (no kept block has smaller norm
// than any pruned block).
class EtaSweep : public ::testing::TestWithParam<double> {};

TEST_P(EtaSweep, EuclideanOptimality) {
  const double eta = GetParam();
  Rng rng(static_cast<uint64_t>(eta * 1000));
  TensorF w(Shape{24, 12, 1, 3, 3});
  FillNormal(w, rng, 0.0f, 1.0f);
  BlockPartition p(w.shape(), {8, 4});
  const auto norms = p.BlockSqNorms(w);
  const ProjectionResult r = PlanBlockSparse(w, p, eta);
  const int64_t expected_kept = std::max<int64_t>(
      1, static_cast<int64_t>(std::floor((1.0 - eta) * p.num_blocks())));
  EXPECT_EQ(r.kept_blocks, expected_kept);
  double min_kept = 1e30, max_pruned = -1.0;
  for (int64_t i = 0; i < p.num_blocks(); ++i) {
    if (r.mask.enabled[static_cast<size_t>(i)]) {
      min_kept = std::min(min_kept, norms[static_cast<size_t>(i)]);
    } else {
      max_pruned = std::max(max_pruned, norms[static_cast<size_t>(i)]);
    }
  }
  if (r.pruned_blocks > 0 && r.kept_blocks > 0) {
    EXPECT_GE(min_kept, max_pruned - 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Etas, EtaSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.8, 0.9, 0.99));

}  // namespace
}  // namespace hwp3d
