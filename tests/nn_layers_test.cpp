#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/batchnorm3d.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/pool3d.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"
#include "testing/gradcheck.h"

namespace hwp3d {
namespace {

TEST(ReLUTest, ForwardClampsNegatives) {
  nn::ReLU relu;
  TensorF x(Shape{4}, std::vector<float>{-1.0f, 0.0f, 2.0f, -0.5f});
  const TensorF y = relu.Forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  EXPECT_FLOAT_EQ(y[3], 0.0f);
}

TEST(ReLUTest, BackwardGatesGradient) {
  nn::ReLU relu;
  TensorF x(Shape{3}, std::vector<float>{-1.0f, 1.0f, 3.0f});
  relu.Forward(x, true);
  TensorF dy(Shape{3}, std::vector<float>{5.0f, 5.0f, 5.0f});
  const TensorF dx = relu.Backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 5.0f);
  EXPECT_FLOAT_EQ(dx[2], 5.0f);
}

TEST(BatchNormTest, NormalizesTrainBatch) {
  Rng rng(1);
  nn::BatchNorm3d bn(2);
  TensorF x(Shape{4, 2, 2, 3, 3});
  FillNormal(x, rng, 5.0f, 2.0f);
  const TensorF y = bn.Forward(x, true);
  // Per-channel mean ~0, var ~1 after normalization (gamma=1, beta=0).
  for (int64_t c = 0; c < 2; ++c) {
    double sum = 0.0, sq = 0.0;
    int64_t count = 0;
    for (int64_t b = 0; b < 4; ++b)
      for (int64_t d = 0; d < 2; ++d)
        for (int64_t h = 0; h < 3; ++h)
          for (int64_t w = 0; w < 3; ++w) {
            const double v = y(b, c, d, h, w);
            sum += v;
            sq += v * v;
            ++count;
          }
    const double mean = sum / count;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / count - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNormTest, RunningStatsConvergeToDataStats) {
  Rng rng(2);
  nn::BatchNorm3d bn(1, "bn", 1e-5f, 0.5f);
  for (int step = 0; step < 30; ++step) {
    TensorF x(Shape{8, 1, 2, 4, 4});
    FillNormal(x, rng, 3.0f, 1.5f);
    bn.Forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.0f, 0.3f);
  EXPECT_NEAR(bn.running_var()[0], 2.25f, 0.5f);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  Rng rng(3);
  nn::BatchNorm3d bn(1, "bn", 1e-5f, 1.0f);  // momentum 1: adopt batch stats
  TensorF x(Shape{8, 1, 2, 4, 4});
  FillNormal(x, rng, -2.0f, 1.0f);
  bn.Forward(x, true);
  // Eval on the same data should now produce ~standardized output.
  const TensorF y = bn.Forward(x, false);
  EXPECT_NEAR(Mean(y), 0.0f, 0.05f);
}

TEST(BatchNormTest, GradCheck) {
  Rng rng(4);
  nn::BatchNorm3d bn(3);
  TensorF x(Shape{3, 3, 2, 3, 3});
  FillUniform(x, rng, -2.0f, 2.0f);
  testing::CheckInputGradient(bn, x);
  testing::CheckParamGradients(bn, x);
}

TEST(BatchNormTest, FoldedAffineMatchesEval) {
  Rng rng(5);
  nn::BatchNorm3d bn(2, "bn", 1e-5f, 1.0f);
  TensorF x(Shape{4, 2, 2, 3, 3});
  FillNormal(x, rng, 1.0f, 2.0f);
  bn.Forward(x, true);  // adopt stats
  bn.gamma().value[0] = 1.5f;
  bn.beta().value[1] = -0.5f;

  TensorF scale, shift;
  bn.FoldedAffine(scale, shift);
  const TensorF y = bn.Forward(x, false);
  for (int64_t b = 0; b < 4; ++b)
    for (int64_t c = 0; c < 2; ++c)
      for (int64_t d = 0; d < 2; ++d)
        EXPECT_NEAR(y(b, c, d, 0, 0),
                    scale[c] * x(b, c, d, 0, 0) + shift[c], 1e-4f);
}

TEST(MaxPoolTest, SelectsWindowMax) {
  nn::MaxPool3d pool(nn::Pool3dConfig{{1, 2, 2}, {1, 2, 2}});
  TensorF x(Shape{1, 1, 1, 2, 2});
  x(0, 0, 0, 0, 0) = 1.0f;
  x(0, 0, 0, 0, 1) = 4.0f;
  x(0, 0, 0, 1, 0) = -2.0f;
  x(0, 0, 0, 1, 1) = 0.5f;
  const TensorF y = pool.Forward(x, false);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
}

TEST(MaxPoolTest, BackwardRoutesToArgmax) {
  nn::MaxPool3d pool(nn::Pool3dConfig{{1, 2, 2}, {1, 2, 2}});
  TensorF x(Shape{1, 1, 1, 2, 2});
  x(0, 0, 0, 0, 1) = 9.0f;
  pool.Forward(x, true);
  TensorF dy(Shape{1, 1, 1, 1, 1}, 3.0f);
  const TensorF dx = pool.Backward(dy);
  EXPECT_FLOAT_EQ(dx(0, 0, 0, 0, 1), 3.0f);
  EXPECT_FLOAT_EQ(dx(0, 0, 0, 0, 0), 0.0f);
}

TEST(AvgPoolTest, AveragesWindow) {
  nn::AvgPool3d pool(nn::Pool3dConfig{{2, 2, 2}, {2, 2, 2}});
  TensorF x(Shape{1, 1, 2, 2, 2}, 1.0f);
  x(0, 0, 0, 0, 0) = 9.0f;
  const TensorF y = pool.Forward(x, false);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], (9.0f + 7.0f) / 8.0f);
}

TEST(AvgPoolTest, GradCheck) {
  Rng rng(6);
  nn::AvgPool3d pool(nn::Pool3dConfig{{2, 2, 2}, {2, 2, 2}});
  TensorF x(Shape{2, 2, 4, 4, 4});
  FillUniform(x, rng, -1.0f, 1.0f);
  testing::CheckInputGradient(pool, x);
}

TEST(GlobalAvgPoolTest, ReducesToChannels) {
  nn::GlobalAvgPool3d gap;
  TensorF x(Shape{2, 3, 2, 2, 2}, 2.0f);
  const TensorF y = gap.Forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
  EXPECT_FLOAT_EQ(y(1, 2), 2.0f);
}

TEST(GlobalAvgPoolTest, GradCheck) {
  Rng rng(7);
  nn::GlobalAvgPool3d gap;
  TensorF x(Shape{2, 3, 2, 3, 3});
  FillUniform(x, rng, -1.0f, 1.0f);
  testing::CheckInputGradient(gap, x);
}

TEST(LinearTest, ComputesAffine) {
  Rng rng(8);
  nn::Linear fc(2, 2, rng);
  fc.weight().value(0, 0) = 1.0f;
  fc.weight().value(0, 1) = 2.0f;
  fc.weight().value(1, 0) = -1.0f;
  fc.weight().value(1, 1) = 0.0f;
  fc.bias().value[0] = 0.5f;
  fc.bias().value[1] = 0.0f;
  TensorF x(Shape{1, 2}, std::vector<float>{3.0f, 4.0f});
  const TensorF y = fc.Forward(x, false);
  EXPECT_FLOAT_EQ(y(0, 0), 3.0f + 8.0f + 0.5f);
  EXPECT_FLOAT_EQ(y(0, 1), -3.0f);
}

TEST(LinearTest, GradCheck) {
  Rng rng(9);
  nn::Linear fc(5, 3, rng);
  TensorF x(Shape{4, 5});
  FillUniform(x, rng, -1.0f, 1.0f);
  testing::CheckInputGradient(fc, x);
  testing::CheckParamGradients(fc, x);
}

TEST(SequentialTest, ChainsForwardAndBackward) {
  Rng rng(10);
  nn::Sequential seq;
  seq.Emplace<nn::Linear>(4, 8, rng, "fc1");
  seq.Emplace<nn::ReLU>();
  seq.Emplace<nn::Linear>(8, 2, rng, "fc2");
  TensorF x(Shape{3, 4});
  FillUniform(x, rng, -1.0f, 1.0f);
  const TensorF y = seq.Forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{3, 2}));
  const TensorF dx = seq.Backward(TensorF(y.shape(), 1.0f));
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_EQ(seq.Params().size(), 4u);  // 2 weights + 2 biases
}

TEST(SequentialTest, ZeroGradClearsAll) {
  Rng rng(11);
  nn::Sequential seq;
  seq.Emplace<nn::Linear>(2, 2, rng);
  TensorF x(Shape{1, 2}, 1.0f);
  seq.Forward(x, true);
  seq.Backward(TensorF(Shape{1, 2}, 1.0f));
  seq.ZeroGrad();
  for (nn::Param* p : seq.Params()) {
    EXPECT_FLOAT_EQ(MaxAbs(p->grad), 0.0f);
  }
}

}  // namespace
}  // namespace hwp3d
