#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "tensor/init.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

TEST(TensorTest, ConstructAndFill) {
  TensorF t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(t[i], 1.5f);
  t.Fill(0.0f);
  EXPECT_FLOAT_EQ(t[5], 0.0f);
}

TEST(TensorTest, VariadicIndexing) {
  TensorF t(Shape{2, 3, 4});
  t(1, 2, 3) = 42.0f;
  EXPECT_FLOAT_EQ(t[23], 42.0f);
  t(0, 0, 0) = -1.0f;
  EXPECT_FLOAT_EQ(t[0], -1.0f);
}

TEST(TensorTest, AtWithVector) {
  TensorF t(Shape{2, 2});
  t.at({1, 0}) = 9.0f;
  EXPECT_FLOAT_EQ(t(1, 0), 9.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  TensorF t(Shape{2, 6});
  for (int64_t i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  const TensorF r = t.Reshaped(Shape{3, 4});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r(2, 3), 11.0f);
  EXPECT_THROW(t.Reshaped(Shape{5, 5}), ShapeError);
}

TEST(TensorTest, DataFromVector) {
  TensorF t(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_FLOAT_EQ(t(1, 1), 4.0f);
  EXPECT_THROW(TensorF(Shape{2, 2}, std::vector<float>{1, 2}), ShapeError);
}

TEST(TensorOpsTest, Axpy) {
  TensorF x(Shape{3}, std::vector<float>{1, 2, 3});
  TensorF y(Shape{3}, std::vector<float>{10, 20, 30});
  Axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[2], 36.0f);
  TensorF bad(Shape{2});
  EXPECT_THROW(Axpy(1.0f, bad, y), ShapeError);
}

TEST(TensorOpsTest, AddSubMul) {
  TensorF a(Shape{2}, std::vector<float>{3, 4});
  TensorF b(Shape{2}, std::vector<float>{1, 2});
  EXPECT_FLOAT_EQ(Add(a, b)[1], 6.0f);
  EXPECT_FLOAT_EQ(Sub(a, b)[0], 2.0f);
  EXPECT_FLOAT_EQ(Mul(a, b)[1], 8.0f);
}

TEST(TensorOpsTest, Reductions) {
  TensorF t(Shape{4}, std::vector<float>{1, -2, 3, -4});
  EXPECT_FLOAT_EQ(Sum(t), -2.0f);
  EXPECT_FLOAT_EQ(Mean(t), -0.5f);
  EXPECT_FLOAT_EQ(MaxAbs(t), 4.0f);
  EXPECT_FLOAT_EQ(FrobeniusNorm(t), std::sqrt(30.0f));
  EXPECT_EQ(Argmax(t), 2);
  EXPECT_FLOAT_EQ(Dot(t, t), 30.0f);
}

TEST(TensorOpsTest, Variance) {
  TensorF t(Shape{4}, std::vector<float>{1, 1, 3, 3});
  EXPECT_FLOAT_EQ(Mean(t), 2.0f);
  EXPECT_FLOAT_EQ(Variance(t), 1.0f);
}

TEST(TensorOpsTest, SparsityAndZeros) {
  TensorF t(Shape{4}, std::vector<float>{0, 1, 0, 2});
  EXPECT_EQ(CountZeros(t), 2);
  EXPECT_DOUBLE_EQ(Sparsity(t), 0.5);
}

TEST(TensorOpsTest, AllClose) {
  TensorF a(Shape{2}, std::vector<float>{1.0f, 2.0f});
  TensorF b(Shape{2}, std::vector<float>{1.0f + 1e-7f, 2.0f});
  EXPECT_TRUE(AllClose(a, b));
  TensorF c(Shape{2}, std::vector<float>{1.1f, 2.0f});
  EXPECT_FALSE(AllClose(a, c));
  TensorF d(Shape{3});
  EXPECT_FALSE(AllClose(a, d));
}

TEST(TensorOpsTest, ScaleAndAddScalar) {
  TensorF t(Shape{2}, std::vector<float>{2, 4});
  Scale(t, 0.5f);
  EXPECT_FLOAT_EQ(t[1], 2.0f);
  AddScalar(t, 1.0f);
  EXPECT_FLOAT_EQ(t[0], 2.0f);
}

TEST(InitTest, KaimingStddev) {
  Rng rng(3);
  TensorF t(Shape{64, 64, 3, 3, 3});
  FillKaiming(t, rng, 64 * 27);
  const float expected_std = std::sqrt(2.0f / (64 * 27));
  EXPECT_NEAR(Mean(t), 0.0f, expected_std * 0.1f);
  EXPECT_NEAR(std::sqrt(Variance(t)), expected_std, expected_std * 0.05f);
}

TEST(InitTest, XavierBounds) {
  Rng rng(3);
  TensorF t(Shape{100, 100});
  FillXavier(t, rng, 100, 100);
  const float bound = std::sqrt(6.0f / 200.0f);
  EXPECT_LE(MaxAbs(t), bound);
  EXPECT_GT(MaxAbs(t), bound * 0.8f);  // actually uses the range
}

TEST(SerializeTest, RoundTripStream) {
  Rng rng(5);
  TensorF t(Shape{3, 4, 5});
  FillNormal(t, rng, 0.0f, 1.0f);
  std::stringstream ss;
  WriteTensor(ss, t);
  const TensorF u = ReadTensor(ss);
  EXPECT_EQ(u.shape(), t.shape());
  EXPECT_TRUE(AllClose(u, t, 0.0f, 0.0f));
}

TEST(SerializeTest, RoundTripFile) {
  TensorF t(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  const std::string path = ::testing::TempDir() + "/hwp_tensor_test.bin";
  SaveTensor(path, t);
  const TensorF u = LoadTensor(path);
  EXPECT_TRUE(AllClose(u, t, 0.0f, 0.0f));
}

TEST(SerializeTest, RejectsGarbage) {
  std::stringstream ss;
  ss << "not a tensor";
  EXPECT_THROW(ReadTensor(ss), Error);
}

TEST(SerializeTest, RejectsTruncated) {
  TensorF t(Shape{10, 10});
  std::stringstream ss;
  WriteTensor(ss, t);
  std::string data = ss.str();
  data.resize(data.size() / 2);
  std::stringstream truncated(data);
  EXPECT_THROW(ReadTensor(truncated), Error);
}

}  // namespace
}  // namespace hwp3d
