// Parity of the gemm conv/linear engine against the naive reference.
//
// For a grid of kernel/stride/padding/bias configurations (including
// the asymmetric R(2+1)D 1×3×3 and 3×1×1 shapes and cases that cross
// the sgemm KC/NC cache-block boundaries), Forward outputs and every
// Backward gradient (dx, dW, db) produced by HWP_CONV_ENGINE=gemm must
// match the naive double-accumulation loops within 1e-4.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "kernels/engine.h"
#include "nn/conv3d.h"
#include "nn/linear.h"
#include "nn/r2plus1d_block.h"
#include "tensor/init.h"

namespace hwp3d {
namespace {

using nn::Conv3d;
using nn::Conv3dConfig;

// Restores the previously selected engine on scope exit.
class EngineOverride {
 public:
  explicit EngineOverride(kernels::Engine e) : prev_(kernels::CurrentEngine()) {
    kernels::SetEngine(e);
  }
  ~EngineOverride() { kernels::SetEngine(prev_); }

 private:
  kernels::Engine prev_;
};

void ExpectClose(const TensorF& ref, const TensorF& got,
                 const std::string& what) {
  ASSERT_EQ(ref.shape(), got.shape()) << what;
  for (int64_t i = 0; i < ref.numel(); ++i) {
    const float tol = 1e-4f + 1e-4f * std::fabs(ref[i]);
    ASSERT_NEAR(ref[i], got[i], tol) << what << " at flat index " << i;
  }
}

struct EngineRun {
  TensorF y, dx, dw, db;
};

// One Forward(train)+Backward pass of `module` under `engine`; gradients
// are zeroed first so runs are comparable.
template <typename M>
EngineRun RunOnce(M& module, const TensorF& x, const TensorF& seed,
                  kernels::Engine engine) {
  EngineOverride eo(engine);
  module.ZeroGrad();
  EngineRun r;
  r.y = module.Forward(x, /*train=*/true);
  r.dx = module.Backward(seed);
  return r;
}

void CheckConvParity(const Conv3dConfig& cfg, const Shape& in_shape,
                     const std::string& what) {
  Rng rng(99);
  Conv3d conv(cfg, rng, "parity");
  TensorF x(in_shape);
  FillUniform(x, rng, -1.0f, 1.0f);
  const TensorF y_probe = conv.Forward(x, false);
  TensorF seed(y_probe.shape());
  FillUniform(seed, rng, -1.0f, 1.0f);

  EngineRun naive = RunOnce(conv, x, seed, kernels::Engine::kNaive);
  naive.dw = conv.weight().grad;
  if (conv.bias() != nullptr) naive.db = conv.bias()->grad;

  EngineRun gemm = RunOnce(conv, x, seed, kernels::Engine::kGemm);
  gemm.dw = conv.weight().grad;
  if (conv.bias() != nullptr) gemm.db = conv.bias()->grad;

  ExpectClose(naive.y, gemm.y, what + " y");
  ExpectClose(naive.dx, gemm.dx, what + " dx");
  ExpectClose(naive.dw, gemm.dw, what + " dW");
  if (conv.bias() != nullptr) ExpectClose(naive.db, gemm.db, what + " db");
}

TEST(ConvEngineParityTest, KernelStridePaddingBiasGrid) {
  const std::array<std::array<int64_t, 3>, 5> kernels_ = {{
      {1, 1, 1}, {3, 3, 3}, {1, 3, 3}, {3, 1, 1}, {2, 3, 2}}};
  const std::array<std::array<int64_t, 3>, 3> strides = {{
      {1, 1, 1}, {1, 2, 2}, {2, 1, 2}}};
  const std::array<std::array<int64_t, 3>, 3> paddings = {{
      {0, 0, 0}, {1, 1, 1}, {0, 1, 1}}};
  const Shape in_shape{2, 3, 5, 6, 7};
  for (const auto& k : kernels_) {
    for (const auto& s : strides) {
      for (const auto& p : paddings) {
        for (bool bias : {false, true}) {
          Conv3dConfig cfg;
          cfg.in_channels = 3;
          cfg.out_channels = 7;  // not a multiple of the micro-tile MR
          cfg.kernel = k;
          cfg.stride = s;
          cfg.padding = p;
          cfg.bias = bias;
          bool valid = true;
          const std::array<int64_t, 3> in = {5, 6, 7};
          for (size_t a = 0; a < 3; ++a) {
            if (Conv3d::OutExtent(in[a], k[a], s[a], p[a]) <= 0) valid = false;
          }
          if (!valid) continue;
          const std::string what =
              "k=" + std::to_string(k[0]) + std::to_string(k[1]) +
              std::to_string(k[2]) + " s=" + std::to_string(s[0]) +
              std::to_string(s[1]) + std::to_string(s[2]) +
              " p=" + std::to_string(p[0]) + std::to_string(p[1]) +
              std::to_string(p[2]) + (bias ? " bias" : " nobias");
          CheckConvParity(cfg, in_shape, what);
        }
      }
    }
  }
}

TEST(ConvEngineParityTest, CrossesKcBlockBoundary) {
  // K = 40·3·3·3 = 1080 > KC=256: the pc loop must accumulate across
  // multiple cache blocks.
  Conv3dConfig cfg;
  cfg.in_channels = 40;
  cfg.out_channels = 8;
  cfg.kernel = {3, 3, 3};
  cfg.padding = {1, 1, 1};
  CheckConvParity(cfg, Shape{1, 40, 3, 6, 6}, "KC-crossing");
}

TEST(ConvEngineParityTest, CrossesNcBlockBoundary) {
  // P = 8·20·20 = 3200 > NC=1024: the jc loop must tile the columns.
  Conv3dConfig cfg;
  cfg.in_channels = 2;
  cfg.out_channels = 3;
  cfg.kernel = {1, 1, 1};
  CheckConvParity(cfg, Shape{1, 2, 8, 20, 20}, "NC-crossing");
}

TEST(ConvEngineParityTest, ManyOutputChannels) {
  // M = 19 exercises both full and partial MR row-panels.
  Conv3dConfig cfg;
  cfg.in_channels = 5;
  cfg.out_channels = 19;
  cfg.kernel = {3, 3, 3};
  cfg.stride = {1, 2, 2};
  cfg.padding = {1, 1, 1};
  CheckConvParity(cfg, Shape{2, 5, 4, 9, 9}, "M=19");
}

TEST(LinearEngineParityTest, ForwardBackwardMatch) {
  Rng rng(7);
  nn::Linear fc(37, 23, rng);
  TensorF x(Shape{5, 37});
  FillUniform(x, rng, -1.0f, 1.0f);
  TensorF seed(Shape{5, 23});
  FillUniform(seed, rng, -1.0f, 1.0f);

  EngineRun naive = RunOnce(fc, x, seed, kernels::Engine::kNaive);
  naive.dw = fc.weight().grad;
  naive.db = fc.bias().grad;
  EngineRun gemm = RunOnce(fc, x, seed, kernels::Engine::kGemm);
  gemm.dw = fc.weight().grad;
  gemm.db = fc.bias().grad;

  ExpectClose(naive.y, gemm.y, "linear y");
  ExpectClose(naive.dx, gemm.dx, "linear dx");
  ExpectClose(naive.dw, gemm.dw, "linear dW");
  ExpectClose(naive.db, gemm.db, "linear db");
}

TEST(LinearEngineParityTest, WideLayerCrossesKcBlock) {
  Rng rng(8);
  nn::Linear fc(700, 11, rng);  // in=700 > KC=256
  TensorF x(Shape{3, 700});
  FillUniform(x, rng, -0.5f, 0.5f);
  TensorF seed(Shape{3, 11});
  FillUniform(seed, rng, -1.0f, 1.0f);
  EngineRun naive = RunOnce(fc, x, seed, kernels::Engine::kNaive);
  naive.dw = fc.weight().grad;
  EngineRun gemm = RunOnce(fc, x, seed, kernels::Engine::kGemm);
  gemm.dw = fc.weight().grad;
  ExpectClose(naive.y, gemm.y, "wide linear y");
  ExpectClose(naive.dx, gemm.dx, "wide linear dx");
  ExpectClose(naive.dw, gemm.dw, "wide linear dW");
}

TEST(R2Plus1dEngineParityTest, FactorizedBlockMatches) {
  // The factorized pair runs the asymmetric 1×3×3 and 3×1×1 kernels
  // back to back — exactly the shapes the paper's R(2+1)D uses.
  Rng rng(5);
  nn::Conv2Plus1dConfig cfg;
  cfg.in_channels = 4;
  cfg.out_channels = 6;
  cfg.spatial_kernel = 3;
  cfg.temporal_kernel = 3;
  nn::Conv2Plus1d block(cfg, rng, "parity_2p1d");
  TensorF x(Shape{2, 4, 4, 8, 8});
  FillUniform(x, rng, -1.0f, 1.0f);
  const TensorF y_probe = block.Forward(x, false);
  TensorF seed(y_probe.shape());
  FillUniform(seed, rng, -1.0f, 1.0f);

  EngineRun naive = RunOnce(block, x, seed, kernels::Engine::kNaive);
  std::vector<TensorF> naive_grads;
  for (nn::Param* p : block.Params()) naive_grads.push_back(p->grad);

  EngineRun gemm = RunOnce(block, x, seed, kernels::Engine::kGemm);
  std::vector<nn::Param*> params = block.Params();

  ExpectClose(naive.y, gemm.y, "2p1d y");
  ExpectClose(naive.dx, gemm.dx, "2p1d dx");
  ASSERT_EQ(naive_grads.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    ExpectClose(naive_grads[i], params[i]->grad, "2p1d grad " + params[i]->name);
  }
}

}  // namespace
}  // namespace hwp3d
