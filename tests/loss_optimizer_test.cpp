#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "tensor/init.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

TEST(SoftmaxTest, RowsSumToOne) {
  Rng rng(1);
  TensorF logits(Shape{4, 7});
  FillUniform(logits, rng, -5.0f, 5.0f);
  const TensorF p = nn::Softmax(logits);
  for (int64_t b = 0; b < 4; ++b) {
    double s = 0.0;
    for (int64_t k = 0; k < 7; ++k) {
      EXPECT_GT(p(b, k), 0.0f);
      s += p(b, k);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(SoftmaxTest, StableForLargeLogits) {
  TensorF logits(Shape{1, 2}, std::vector<float>{1000.0f, 1000.0f});
  const TensorF p = nn::Softmax(logits);
  EXPECT_NEAR(p(0, 0), 0.5f, 1e-5f);
}

TEST(CrossEntropyTest, UniformLogitsGiveLogK) {
  TensorF logits(Shape{2, 4}, 0.0f);
  const nn::LossResult r = nn::SoftmaxCrossEntropy(logits, {0, 3}, 0.0f);
  EXPECT_NEAR(r.loss, std::log(4.0f), 1e-5f);
}

TEST(CrossEntropyTest, PerfectPredictionLowLoss) {
  TensorF logits(Shape{1, 3}, std::vector<float>{20.0f, 0.0f, 0.0f});
  const nn::LossResult r = nn::SoftmaxCrossEntropy(logits, {0}, 0.0f);
  EXPECT_LT(r.loss, 1e-3f);
  EXPECT_EQ(r.correct, 1);
}

TEST(CrossEntropyTest, GradientSumsToZeroPerRow) {
  // d/dlogits of CE sums to zero row-wise (softmax minus target).
  Rng rng(2);
  TensorF logits(Shape{3, 5});
  FillUniform(logits, rng, -2.0f, 2.0f);
  const nn::LossResult r = nn::SoftmaxCrossEntropy(logits, {1, 4, 0}, 0.0f);
  for (int64_t b = 0; b < 3; ++b) {
    double s = 0.0;
    for (int64_t k = 0; k < 5; ++k) s += r.grad(b, k);
    EXPECT_NEAR(s, 0.0, 1e-6);
  }
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifference) {
  Rng rng(3);
  TensorF logits(Shape{2, 4});
  FillUniform(logits, rng, -1.0f, 1.0f);
  const std::vector<int> labels = {2, 0};
  const float smoothing = 0.1f;
  const nn::LossResult r = nn::SoftmaxCrossEntropy(logits, labels, smoothing);
  const float eps = 1e-3f;
  for (int64_t i = 0; i < logits.numel(); ++i) {
    TensorF lp = logits, lm = logits;
    lp[i] += eps;
    lm[i] -= eps;
    const float fp = nn::SoftmaxCrossEntropy(lp, labels, smoothing).loss;
    const float fm = nn::SoftmaxCrossEntropy(lm, labels, smoothing).loss;
    EXPECT_NEAR(r.grad[i], (fp - fm) / (2 * eps), 2e-3f) << "index " << i;
  }
}

TEST(CrossEntropyTest, SmoothingRaisesPerfectLoss) {
  TensorF logits(Shape{1, 4}, std::vector<float>{30.0f, 0.0f, 0.0f, 0.0f});
  const float plain = nn::SoftmaxCrossEntropy(logits, {0}, 0.0f).loss;
  const float smooth = nn::SoftmaxCrossEntropy(logits, {0}, 0.2f).loss;
  EXPECT_GT(smooth, plain);
}

TEST(CrossEntropyTest, RejectsBadInputs) {
  TensorF logits(Shape{2, 3});
  EXPECT_THROW(nn::SoftmaxCrossEntropy(logits, {0}, 0.0f), Error);
  EXPECT_THROW(nn::SoftmaxCrossEntropy(logits, {0, 5}, 0.0f), Error);
  EXPECT_THROW(nn::SoftmaxCrossEntropy(logits, {0, 1}, 1.5f), Error);
}

TEST(SgdTest, PlainStepDescends) {
  nn::Param p("w", Shape{2});
  p.value[0] = 1.0f;
  p.value[1] = -2.0f;
  p.grad[0] = 0.5f;
  p.grad[1] = -0.5f;
  nn::Sgd opt({&p}, {.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.0f});
  opt.Step();
  EXPECT_FLOAT_EQ(p.value[0], 0.95f);
  EXPECT_FLOAT_EQ(p.value[1], -1.95f);
}

TEST(SgdTest, MomentumAccumulates) {
  nn::Param p("w", Shape{1});
  p.value[0] = 0.0f;
  nn::Sgd opt({&p}, {.lr = 1.0f, .momentum = 0.5f, .weight_decay = 0.0f});
  p.grad[0] = 1.0f;
  opt.Step();  // v=1, w=-1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  p.grad[0] = 1.0f;
  opt.Step();  // v=1.5, w=-2.5
  EXPECT_FLOAT_EQ(p.value[0], -2.5f);
}

TEST(SgdTest, WeightDecayShrinks) {
  nn::Param p("w", Shape{1});
  p.value[0] = 10.0f;
  p.grad[0] = 0.0f;
  nn::Sgd opt({&p}, {.lr = 0.1f, .momentum = 0.0f, .weight_decay = 0.1f});
  opt.Step();
  EXPECT_NEAR(p.value[0], 10.0f - 0.1f * (0.1f * 10.0f), 1e-6f);
}

TEST(SgdTest, MinimizesQuadratic) {
  // f(w) = (w - 3)^2; grad = 2(w-3). Should converge to 3.
  nn::Param p("w", Shape{1});
  p.value[0] = -5.0f;
  nn::Sgd opt({&p}, {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f});
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    opt.Step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-3f);
}

TEST(ScheduleTest, ConstantLr) {
  nn::ConstantLr s(0.01f);
  EXPECT_FLOAT_EQ(s.LrAt(0), 0.01f);
  EXPECT_FLOAT_EQ(s.LrAt(100), 0.01f);
}

TEST(ScheduleTest, StepLrDecays) {
  nn::StepLr s(1.0f, 10, 0.1f);
  EXPECT_FLOAT_EQ(s.LrAt(0), 1.0f);
  EXPECT_FLOAT_EQ(s.LrAt(9), 1.0f);
  EXPECT_FLOAT_EQ(s.LrAt(10), 0.1f);
  EXPECT_NEAR(s.LrAt(25), 0.01f, 1e-6f);
}

TEST(ScheduleTest, WarmupCosineShape) {
  nn::WarmupCosineLr s(1.0f, 5, 50);
  // Warmup ramps linearly.
  EXPECT_NEAR(s.LrAt(0), 0.2f, 1e-5f);
  EXPECT_NEAR(s.LrAt(4), 1.0f, 1e-5f);
  // Peak right after warmup, decaying to ~0 at the end.
  EXPECT_NEAR(s.LrAt(5), 1.0f, 1e-5f);
  EXPECT_GT(s.LrAt(20), s.LrAt(40));
  EXPECT_NEAR(s.LrAt(50), 0.0f, 1e-4f);
}

TEST(ScheduleTest, WarmupCosineRespectsMinLr) {
  nn::WarmupCosineLr s(1.0f, 0, 10, 0.1f);
  EXPECT_NEAR(s.LrAt(10), 0.1f, 1e-5f);
  EXPECT_GE(s.LrAt(9), 0.1f);
}

}  // namespace
}  // namespace hwp3d
