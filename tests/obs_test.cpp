// Observability subsystem tests: span nesting and timing containment,
// zero-allocation guarantee for disabled tracing, counter / gauge /
// histogram aggregation and label identity, Chrome-trace and JSONL
// round-trips through a strict JSON parser, and the logging upgrades
// (pluggable sink, ISO-8601 line format, HWP_LOG_LEVEL parsing).
#include <atomic>
#include <cstdlib>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/logging.h"
#include "obs/cli.h"
#include "obs/json_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "testing/minijson.h"

// Global allocation counter so the disabled-tracing test can assert the
// hot path performs no heap allocation. Counting is always on; it is a
// single relaxed atomic increment, negligible for the rest of the suite.
static std::atomic<long long> g_alloc_count{0};

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hwp3d {
namespace {

using testing::JsonValue;
using testing::ParseJson;

// Each test owns the global tracer/registry for its duration.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Tracer::Get().SetEnabled(false);
    obs::Tracer::Get().Clear();
    obs::MetricsRegistry::Get().Reset();
  }
  void TearDown() override {
    obs::Tracer::Get().SetEnabled(false);
    obs::Tracer::Get().Clear();
    obs::MetricsRegistry::Get().Reset();
  }
};

TEST_F(ObsTest, SpanNestingRecordsContainedIntervals) {
  obs::Tracer::Get().SetEnabled(true);
  {
    HWP_TRACE_SCOPE("outer");
    {
      HWP_TRACE_SCOPE("inner");
    }
  }
  const std::vector<obs::TraceEvent> events = obs::Tracer::Get().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Spans are recorded at scope exit, so the inner one lands first.
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.phase, 'X');
  EXPECT_EQ(outer.phase, 'X');
  EXPECT_EQ(inner.tid, outer.tid);
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
}

TEST_F(ObsTest, ScopeRenameAndArgsSurviveToSnapshot) {
  obs::Tracer::Get().SetEnabled(true);
  {
    obs::TraceScope span("generic");
    ASSERT_TRUE(span.active());
    span.SetName("sim/conv2a");
    span.AddArg("layer", "conv2a");
    span.AddArg("macs", static_cast<int64_t>(1234));
    span.AddArg("ratio", 0.5);
  }
  const auto events = obs::Tracer::Get().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "sim/conv2a");
  ASSERT_EQ(events[0].args.size(), 3u);
  EXPECT_EQ(events[0].args[0].key, "layer");
  EXPECT_FALSE(events[0].args[0].is_number);
  EXPECT_TRUE(events[0].args[1].is_number);
}

TEST_F(ObsTest, DisabledScopeAllocatesNothingAndRecordsNothing) {
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.SetEnabled(false);
  const long long before = g_alloc_count.load();
  for (int i = 0; i < 1000; ++i) {
    HWP_TRACE_SCOPE("hot/loop");
  }
  {
    obs::TraceScope span("hot/args");
    EXPECT_FALSE(span.active());
    span.AddArg("k", static_cast<int64_t>(1));
    span.AddArg("v", 2.0);
  }
  const long long after = g_alloc_count.load();
  EXPECT_EQ(after - before, 0) << "disabled TraceScope must not allocate";
  EXPECT_EQ(tracer.event_count(), 0u);
}

TEST_F(ObsTest, CounterAggregatesAndLabelsAreDistinct) {
  auto& reg = obs::MetricsRegistry::Get();
  obs::Counter& plain = reg.GetCounter("sim.blocks_skipped");
  plain.Add(3);
  plain.Add(4);
  EXPECT_EQ(plain.value(), 7);

  obs::Counter& a = reg.GetCounter("sim.blocks_skipped", {{"layer", "a"}});
  obs::Counter& b = reg.GetCounter("sim.blocks_skipped", {{"layer", "b"}});
  EXPECT_NE(&a, &b);
  a.Add(10);
  b.Add(20);
  // Label order must not matter for identity.
  obs::Counter& a2 = reg.GetCounter(
      "sim.blocks_skipped", {{"zz", "1"}, {"layer", "a"}});
  obs::Counter& a3 = reg.GetCounter(
      "sim.blocks_skipped", {{"layer", "a"}, {"zz", "1"}});
  EXPECT_EQ(&a2, &a3);
  a2.Add(5);

  EXPECT_EQ(reg.CounterTotal("sim.blocks_skipped"), 7 + 10 + 20 + 5);
  EXPECT_EQ(reg.CounterTotal("no.such.counter"), 0);
}

TEST_F(ObsTest, GaugeHoldsLastValue) {
  auto& reg = obs::MetricsRegistry::Get();
  obs::Gauge& g = reg.GetGauge("train.loss", {{"epoch", "0"}});
  g.Set(1.5);
  g.Set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);
}

TEST_F(ObsTest, HistogramStatsAndBuckets) {
  auto& reg = obs::MetricsRegistry::Get();
  obs::Histogram& h = reg.GetHistogram("dse.candidate_cycles");
  h.Observe(1.0);
  h.Observe(2.0);
  h.Observe(9.0);
  const obs::Histogram::Stats s = h.stats();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.sum, 12.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
}

TEST_F(ObsTest, MetricKindMismatchThrows) {
  auto& reg = obs::MetricsRegistry::Get();
  reg.GetCounter("metric.x");
  EXPECT_THROW(reg.GetGauge("metric.x"), Error);
  EXPECT_THROW(reg.GetHistogram("metric.x"), Error);
  // Same name with different labels is a different entry, same kind rule.
  reg.GetCounter("metric.x", {{"l", "1"}});
  EXPECT_THROW(reg.GetHistogram("metric.x", {{"l", "1"}}), Error);
}

TEST_F(ObsTest, ChromeTraceJsonRoundTrip) {
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.SetEnabled(true);
  {
    obs::TraceScope span("sim/conv\"quoted\"");
    span.AddArg("path", "a\\b\nc");
    span.AddArg("macs", static_cast<int64_t>(42));
  }
  tracer.Counter("train.loss", 0.125);
  tracer.Instant("checkpoint");

  const std::string json = tracer.ToChromeJson();
  const auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.has_value()) << json;
  const JsonValue* events = parsed->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::Array);
  ASSERT_EQ(events->items.size(), 3u);

  const JsonValue& span = events->items[0];
  ASSERT_NE(span.Find("name"), nullptr);
  EXPECT_EQ(span.Find("name")->str, "sim/conv\"quoted\"");
  EXPECT_EQ(span.Find("ph")->str, "X");
  ASSERT_NE(span.Find("dur"), nullptr);
  EXPECT_GE(span.Find("dur")->number, 0.0);
  const JsonValue* args = span.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->Find("path")->str, "a\\b\nc");
  EXPECT_DOUBLE_EQ(args->Find("macs")->number, 42.0);

  const JsonValue& counter = events->items[1];
  EXPECT_EQ(counter.Find("ph")->str, "C");
  EXPECT_DOUBLE_EQ(counter.Find("args")->Find("value")->number, 0.125);
  EXPECT_EQ(events->items[2].Find("ph")->str, "i");
}

TEST_F(ObsTest, MetricsJsonlRoundTrip) {
  auto& reg = obs::MetricsRegistry::Get();
  reg.GetCounter("sim.blocks_skipped", {{"layer", "conv2a"}}).Add(17);
  reg.GetGauge("train.accuracy").Set(0.75);
  reg.GetHistogram("admm.primal_residual").Observe(3.0);

  const std::string jsonl = reg.ToJsonl();
  std::istringstream lines(jsonl);
  std::string line;
  int n = 0;
  bool saw_counter = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++n;
    const auto v = ParseJson(line);
    ASSERT_TRUE(v.has_value()) << line;
    ASSERT_NE(v->Find("type"), nullptr);
    ASSERT_NE(v->Find("name"), nullptr);
    if (v->Find("name")->str == "sim.blocks_skipped") {
      saw_counter = true;
      EXPECT_EQ(v->Find("type")->str, "counter");
      EXPECT_DOUBLE_EQ(v->Find("value")->number, 17.0);
      const JsonValue* labels = v->Find("labels");
      ASSERT_NE(labels, nullptr);
      EXPECT_EQ(labels->Find("layer")->str, "conv2a");
    }
  }
  EXPECT_EQ(n, 3);
  EXPECT_TRUE(saw_counter);
}

TEST_F(ObsTest, SummaryTableListsEveryMetric) {
  auto& reg = obs::MetricsRegistry::Get();
  reg.GetCounter("sim.runs").Add(2);
  reg.GetGauge("train.loss").Set(0.5);
  const std::string rendered = reg.SummaryTable().Render();
  EXPECT_NE(rendered.find("sim.runs"), std::string::npos);
  EXPECT_NE(rendered.find("train.loss"), std::string::npos);
}

TEST_F(ObsTest, CliFlagsAreExtractedAndArgvCompacted) {
  std::string a0 = "prog", a1 = "--trace-out", a2 = "t.json";
  std::string a3 = "--metrics-out=m.jsonl", a4 = "zcu102";
  char* argv[] = {a0.data(), a1.data(), a2.data(), a3.data(), a4.data(),
                  nullptr};
  int argc = 5;
  const obs::CliOptions opts = obs::InitFromArgs(argc, argv);
  EXPECT_EQ(opts.trace_out, "t.json");
  EXPECT_EQ(opts.metrics_out, "m.jsonl");
  ASSERT_EQ(argc, 2);
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "zcu102");
  EXPECT_TRUE(obs::Tracer::Get().enabled());  // --trace-out enables tracing
}

TEST_F(ObsTest, JsonEscapeHandlesControlAndSpecialChars) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonEscape("nl\ntab\t"), "nl\\ntab\\t");
  EXPECT_EQ(obs::JsonEscape(std::string("\x01", 1)), "\\u0001");
}

// --- logging satellites ---------------------------------------------------

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndNumbers) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::Debug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::Info);
  EXPECT_EQ(ParseLogLevel("Warn"), LogLevel::Warning);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::Warning);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::Error);
  EXPECT_EQ(ParseLogLevel("off"), LogLevel::Off);
  EXPECT_EQ(ParseLogLevel("2"), LogLevel::Warning);
  EXPECT_EQ(ParseLogLevel("bogus"), std::nullopt);
}

TEST(LoggingTest, SinkCapturesFormattedLine) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&captured](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::Info);
  HWP_LOG(Warning) << "hello sink " << 42;
  SetLogLevel(prev);
  ResetLogSink();

  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::Warning);
  const std::string& line = captured[0].second;
  EXPECT_NE(line.find("hello sink 42"), std::string::npos);
  EXPECT_NE(line.find("WARN"), std::string::npos);
  EXPECT_NE(line.find("obs_test.cpp:"), std::string::npos);
  // ISO-8601 UTC timestamp: "[YYYY-MM-DDTHH:MM:SS.mmmZ ..."
  ASSERT_GE(line.size(), 25u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[11], 'T');
  EXPECT_EQ(line[24], 'Z');
  // Thread id token " t<N> ".
  EXPECT_NE(line.find(" t"), std::string::npos);
}

TEST(LoggingTest, SuppressedLevelsNeverReachSink) {
  int calls = 0;
  SetLogSink([&calls](LogLevel, const std::string&) { ++calls; });
  const LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::Error);
  HWP_LOG(Info) << "should not appear";
  HWP_LOG(Warning) << "nor this";
  HWP_LOG(Error) << "this one does";
  SetLogLevel(prev);
  ResetLogSink();
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace hwp3d
