// Parity suite for the fast-path compiled executor: PackedConvLayer /
// ExecMode::kFast must be bitwise identical to the TiledConvSim oracle
// — logits, every output element, and every CompiledRunStats field —
// across dense, 50%- and 90%-pruned masks, non-divisible channel and
// tiling grids, and any thread count.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/logging.h"
#include "common/rng.h"
#include "core/admm.h"
#include "data/synthetic_video.h"
#include "fpga/compiled_executor.h"
#include "fpga/model_compiler.h"
#include "kernels/scratch.h"
#include "kernels/thread_pool.h"
#include "models/tiny_r2plus1d.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"

namespace hwp3d {
namespace {

using fpga::CompiledModelOptions;
using fpga::CompiledRunStats;
using fpga::CompiledTinyR2Plus1d;
using fpga::ExecMode;
using fpga::PackedConvLayer;
using fpga::PostOps;
using fpga::TiledConvResult;
using fpga::TiledConvSim;

TensorQ RandomQ(const Shape& shape, Rng& rng, double lo = -2.0,
                double hi = 2.0) {
  TensorF f(shape);
  for (int64_t i = 0; i < f.numel(); ++i) {
    f[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return Quantize(f);
}

core::BlockMask RandomMask(int64_t blocks_m, int64_t blocks_n,
                           double keep_prob, Rng& rng) {
  core::BlockMask mask;
  mask.blocks_m = blocks_m;
  mask.blocks_n = blocks_n;
  mask.enabled.assign(static_cast<size_t>(blocks_m * blocks_n), 0);
  for (int64_t bm = 0; bm < blocks_m; ++bm)
    for (int64_t bn = 0; bn < blocks_n; ++bn)
      mask.set(bm, bn, rng.Flip(keep_prob));
  return mask;
}

void ExpectBitwiseEqual(const TensorQ& a, const TensorQ& b) {
  ASSERT_TRUE(a.SameShape(b));
  for (int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i].raw(), b[i].raw()) << "element " << i;
  }
}

void ExpectStatsEqual(const fpga::TiledConvStats& sim,
                      const fpga::TiledConvStats& fast) {
  EXPECT_EQ(sim.tile_iterations, fast.tile_iterations);
  EXPECT_EQ(sim.blocks_loaded, fast.blocks_loaded);
  EXPECT_EQ(sim.blocks_skipped, fast.blocks_skipped);
  EXPECT_EQ(sim.macs_executed, fast.macs_executed);
  EXPECT_EQ(sim.modeled_cycles, fast.modeled_cycles);
  EXPECT_EQ(sim.stall.wgt, fast.stall.wgt);
  EXPECT_EQ(sim.stall.in, fast.stall.in);
  EXPECT_EQ(sim.stall.comp, fast.stall.comp);
  EXPECT_EQ(sim.stall.out, fast.stall.out);
}

struct LayerCase {
  int64_t M, N, Di, Ri, Ci;
  int64_t Kd, Kr, Kc;
  std::array<int64_t, 3> stride;
  fpga::Tiling tiling;
  double keep_prob;  // < 0 = dense (no mask)
};

// Runs one layer on both engines with random weights/inputs/mask and
// full post-ops (affine + shortcut + relu), asserting bitwise parity.
void CheckLayerParity(const LayerCase& lc, uint64_t seed) {
  SCOPED_TRACE(::testing::Message()
               << "M=" << lc.M << " N=" << lc.N << " keep=" << lc.keep_prob
               << " tiling=" << lc.tiling.ToString());
  Rng rng(seed);
  const TensorQ weights =
      RandomQ(Shape{lc.M, lc.N, lc.Kd, lc.Kr, lc.Kc}, rng);
  const TensorQ input = RandomQ(Shape{lc.N, lc.Di, lc.Ri, lc.Ci}, rng);
  const int64_t D = (lc.Di - lc.Kd) / lc.stride[0] + 1;
  const int64_t R = (lc.Ri - lc.Kr) / lc.stride[1] + 1;
  const int64_t C = (lc.Ci - lc.Kc) / lc.stride[2] + 1;
  const TensorQ shortcut = RandomQ(Shape{lc.M, D, R, C}, rng, -1.0, 1.0);

  PostOps post;
  post.has_affine = true;
  post.scale = RandomQ(Shape{lc.M}, rng, 0.5, 1.5);
  post.shift = RandomQ(Shape{lc.M}, rng, -0.5, 0.5);
  post.shortcut = &shortcut;
  post.relu = true;

  const int64_t blocks_m = CeilDiv(lc.M, lc.tiling.Tm);
  const int64_t blocks_n = CeilDiv(lc.N, lc.tiling.Tn);
  core::BlockMask mask;
  const bool masked = lc.keep_prob >= 0.0;
  if (masked) mask = RandomMask(blocks_m, blocks_n, lc.keep_prob, rng);

  const fpga::Ports ports;
  const TiledConvSim sim(lc.tiling, ports);
  const TiledConvResult want =
      sim.Run(weights, input, lc.stride, masked ? &mask : nullptr, post);

  const PackedConvLayer packed(weights, lc.tiling, ports,
                               masked ? &mask : nullptr);
  const TiledConvResult got = packed.Run(input, lc.stride, post);

  ExpectBitwiseEqual(want.output, got.output);
  ExpectStatsEqual(want.stats, got.stats);
  if (masked) {
    EXPECT_EQ(packed.surviving_tiles(), mask.CountEnabled());
    EXPECT_EQ(packed.total_tiles(), mask.num_blocks());
  } else {
    EXPECT_EQ(packed.surviving_tiles(), blocks_m * blocks_n);
  }
}

TEST(PackedConvLayerTest, MatchesSimOnDenseDivisibleGrid) {
  CheckLayerParity({.M = 8, .N = 8, .Di = 6, .Ri = 8, .Ci = 8,
                    .Kd = 3, .Kr = 3, .Kc = 3, .stride = {1, 1, 1},
                    .tiling = {4, 4, 2, 3, 3}, .keep_prob = -1.0},
                   7);
}

TEST(PackedConvLayerTest, MatchesSimOnPrunedMasks) {
  for (double keep : {0.5, 0.1}) {
    CheckLayerParity({.M = 8, .N = 8, .Di = 6, .Ri = 8, .Ci = 8,
                      .Kd = 3, .Kr = 3, .Kc = 3, .stride = {1, 1, 1},
                      .tiling = {4, 4, 2, 3, 3}, .keep_prob = keep},
                     21);
  }
}

TEST(PackedConvLayerTest, MatchesSimOnNonDivisibleGridsAndStride) {
  // 10 channels on Tm=Tn=3 (partial edge blocks), 9x7x11 input on
  // 2x4x4 spatial tiles (partial tiles in every axis), stride 2 in
  // width, asymmetric (2+1)D-style kernels.
  CheckLayerParity({.M = 10, .N = 7, .Di = 9, .Ri = 7, .Ci = 11,
                    .Kd = 1, .Kr = 3, .Kc = 3, .stride = {1, 1, 2},
                    .tiling = {3, 3, 2, 4, 4}, .keep_prob = 0.6},
                   33);
  CheckLayerParity({.M = 5, .N = 10, .Di = 8, .Ri = 6, .Ci = 6,
                    .Kd = 3, .Kr = 1, .Kc = 1, .stride = {2, 1, 1},
                    .tiling = {4, 4, 3, 5, 5}, .keep_prob = 0.4},
                   47);
}

TEST(PackedConvLayerTest, MatchesSimWithFullyPrunedRows) {
  // Rows whose every block is pruned still emit the post-processed
  // (affine/shortcut) output tile on both engines.
  Rng rng(5);
  const fpga::Tiling tiling{4, 4, 2, 3, 3};
  const TensorQ weights = RandomQ(Shape{8, 8, 3, 3, 3}, rng);
  const TensorQ input = RandomQ(Shape{8, 6, 8, 8}, rng);
  core::BlockMask mask = RandomMask(2, 2, 1.0, rng);
  mask.set(0, 0, false);
  mask.set(0, 1, false);  // row 0 fully pruned
  PostOps post;
  post.has_affine = true;
  post.scale = RandomQ(Shape{8}, rng, 0.5, 1.5);
  post.shift = RandomQ(Shape{8}, rng, -0.5, 0.5);

  const fpga::Ports ports;
  const TiledConvSim sim(tiling, ports);
  const auto want = sim.Run(weights, input, {1, 1, 1}, &mask, post);
  const PackedConvLayer packed(weights, tiling, ports, &mask);
  const auto got = packed.Run(input, {1, 1, 1}, post);
  ExpectBitwiseEqual(want.output, got.output);
  ExpectStatsEqual(want.stats, got.stats);
}

TEST(PackedConvLayerTest, ThreadCountInvariance) {
  // HWP_THREADS=1..8 equivalents: standalone pools of every size must
  // produce bitwise-identical outputs (each slab task owns a disjoint
  // output region with a fixed inner accumulation order).
  Rng rng(13);
  const fpga::Tiling tiling{3, 3, 2, 4, 4};
  const fpga::Ports ports;
  const TensorQ weights = RandomQ(Shape{10, 7, 3, 3, 3}, rng);
  const TensorQ input = RandomQ(Shape{7, 8, 9, 9}, rng);
  const core::BlockMask mask = RandomMask(4, 3, 0.5, rng);
  PostOps post;
  post.relu = true;
  const PackedConvLayer packed(weights, tiling, ports, &mask);

  ThreadPool serial(1);
  const auto want = packed.Run(input, {1, 1, 1}, post, {}, &serial);
  for (int threads = 2; threads <= 8; ++threads) {
    ThreadPool pool(threads);
    const auto got = packed.Run(input, {1, 1, 1}, post, {}, &pool);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ExpectBitwiseEqual(want.output, got.output);
    ExpectStatsEqual(want.stats, got.stats);
  }
}

TEST(PackedConvLayerTest, FastRunUsesAccountedScratch) {
  Rng rng(3);
  const fpga::Tiling tiling{4, 4, 2, 3, 3};
  const TensorQ weights = RandomQ(Shape{8, 8, 3, 3, 3}, rng);
  const TensorQ input = RandomQ(Shape{8, 6, 8, 8}, rng);
  const PackedConvLayer packed(weights, tiling, fpga::Ports{}, nullptr);
  (void)packed.Run(input, {1, 1, 1}, PostOps{});
  EXPECT_GT(kernels::ScratchBytesInUse(), 0);
}

TEST(ExecModeTest, ParseAndResolve) {
  EXPECT_EQ(fpga::ParseExecMode("sim"), ExecMode::kSimulate);
  EXPECT_EQ(fpga::ParseExecMode("simulate"), ExecMode::kSimulate);
  EXPECT_EQ(fpga::ParseExecMode("fast"), ExecMode::kFast);
  EXPECT_EQ(fpga::ParseExecMode("warp"), std::nullopt);

  unsetenv("HWP_EXEC");
  EXPECT_EQ(fpga::ResolveExecMode(std::nullopt, ExecMode::kSimulate),
            ExecMode::kSimulate);
  EXPECT_EQ(fpga::ResolveExecMode(std::nullopt, ExecMode::kFast),
            ExecMode::kFast);
  setenv("HWP_EXEC", "fast", 1);
  EXPECT_EQ(fpga::ResolveExecMode(std::nullopt, ExecMode::kSimulate),
            ExecMode::kFast);
  // An explicit request beats the environment.
  EXPECT_EQ(fpga::ResolveExecMode(ExecMode::kSimulate, ExecMode::kFast),
            ExecMode::kSimulate);
  setenv("HWP_EXEC", "bogus", 1);
  EXPECT_EQ(fpga::ResolveExecMode(std::nullopt, ExecMode::kSimulate),
            ExecMode::kSimulate);
  unsetenv("HWP_EXEC");
}

// --- whole-model parity ------------------------------------------------

class CompiledExecutorModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::Warning);
    models::TinyR2Plus1dConfig mcfg;
    mcfg.num_classes = 4;
    mcfg.stem_channels = 4;
    mcfg.stage1_channels = 8;
    mcfg.stage2_channels = 8;
    model_ = std::make_unique<models::TinyR2Plus1d>(mcfg, rng_);
    data::SyntheticVideoConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.frames = 6;
    dcfg.height = 10;
    dcfg.width = 10;
    dataset_ = std::make_unique<data::SyntheticVideoDataset>(dcfg);
    auto batches = dataset_->MakeBatches(8, 8, rng_);
    nn::Sgd opt(model_->Params(),
                {.lr = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f});
    nn::TrainEpoch(*model_, opt, batches, {});
  }
  void TearDown() override { SetLogLevel(LogLevel::Info); }

  TensorF MakeClip(uint64_t seed) {
    Rng rng(seed);
    return dataset_->MakeSample(static_cast<int>(seed) % 4, rng).clip;
  }

  // Hard-prunes with the real pruner at `eta` block sparsity under
  // `block` and returns the masks.
  std::vector<core::BlockMask> PruneMasks(double eta,
                                          core::BlockConfig block) {
    std::vector<core::PruneLayerSpec> specs;
    for (nn::Conv3d* c : model_->PrunableConvs()) {
      specs.push_back({&c->weight(), block, eta, c->name()});
    }
    core::AdmmPruner pruner(specs, core::AdmmConfig{});
    pruner.StartRound(0);
    pruner.HardPrune();
    return pruner.masks();
  }

  void CheckModelParity(const CompiledModelOptions& base) {
    CompiledModelOptions sim_opts = base;
    sim_opts.executor = ExecMode::kSimulate;
    CompiledModelOptions fast_opts = base;
    fast_opts.executor = ExecMode::kFast;
    auto sim = CompiledTinyR2Plus1d::Compile(*model_, sim_opts);
    auto fast = CompiledTinyR2Plus1d::Compile(*model_, fast_opts);
    ASSERT_TRUE(sim.ok()) << sim.status().ToString();
    ASSERT_TRUE(fast.ok()) << fast.status().ToString();
    EXPECT_EQ(sim->executor(), ExecMode::kSimulate);
    EXPECT_EQ(fast->executor(), ExecMode::kFast);
    for (uint64_t s = 0; s < 3; ++s) {
      const TensorF clip = MakeClip(s);
      CompiledRunStats sim_stats, fast_stats;
      const TensorF sim_logits = sim->Infer(clip, &sim_stats);
      const TensorF fast_logits = fast->Infer(clip, &fast_stats);
      ASSERT_EQ(sim_logits.numel(), fast_logits.numel());
      for (int64_t k = 0; k < sim_logits.numel(); ++k) {
        // Bitwise: the accelerator outputs agree element-for-element,
        // and the host-side pooling/FC runs on identical inputs.
        EXPECT_EQ(sim_logits[k], fast_logits[k]) << "logit " << k;
      }
      EXPECT_EQ(sim_stats.modeled_cycles, fast_stats.modeled_cycles);
      EXPECT_EQ(sim_stats.blocks_loaded, fast_stats.blocks_loaded);
      EXPECT_EQ(sim_stats.blocks_skipped, fast_stats.blocks_skipped);
      EXPECT_EQ(sim_stats.macs_executed, fast_stats.macs_executed);
      EXPECT_EQ(sim->Classify(clip), fast->Classify(clip));
    }
  }

  Rng rng_{11};
  std::unique_ptr<models::TinyR2Plus1d> model_;
  std::unique_ptr<data::SyntheticVideoDataset> dataset_;
};

TEST_F(CompiledExecutorModelTest, DenseParity) {
  CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  CheckModelParity(opts);
}

TEST_F(CompiledExecutorModelTest, HalfPrunedParity) {
  CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  opts.masks = PruneMasks(0.5, {4, 4});
  CheckModelParity(opts);
}

TEST_F(CompiledExecutorModelTest, NinetyPercentPrunedParity) {
  CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  opts.masks = PruneMasks(0.9, {4, 4});
  CheckModelParity(opts);
}

TEST_F(CompiledExecutorModelTest, NonDivisibleTilingParity) {
  // Tm=Tn=3 does not divide the 4/8-channel convs; Td/Tr/Tc leave
  // partial spatial tiles on the 6x10x10 clips.
  CompiledModelOptions opts;
  opts.tiling = fpga::Tiling{3, 3, 2, 4, 4};
  opts.masks = PruneMasks(0.5, {3, 3});
  CheckModelParity(opts);
}

}  // namespace
}  // namespace hwp3d
