#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "core/sensitivity.h"
#include "data/synthetic_video.h"
#include "models/tiny_r2plus1d.h"
#include "nn/optimizer.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

class SensitivityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::Warning);
    models::TinyR2Plus1dConfig mcfg;
    mcfg.num_classes = 4;
    mcfg.stem_channels = 4;
    mcfg.stage1_channels = 8;
    mcfg.stage2_channels = 8;
    model_ = std::make_unique<models::TinyR2Plus1d>(mcfg, rng_);

    data::SyntheticVideoConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.frames = 6;
    dcfg.height = 10;
    dcfg.width = 10;
    data::SyntheticVideoDataset dataset(dcfg);
    auto train = dataset.MakeBatches(40, 8, rng_);
    probe_ = dataset.MakeBatches(24, 8, rng_);
    nn::Sgd opt(model_->Params(),
                {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 0.0f});
    for (int e = 0; e < 5; ++e) nn::TrainEpoch(*model_, opt, train, {});
  }
  void TearDown() override { SetLogLevel(LogLevel::Info); }

  std::vector<core::PruneLayerSpec> Specs() {
    std::vector<core::PruneLayerSpec> specs;
    for (nn::Conv3d* c : model_->PrunableConvs()) {
      specs.push_back({&c->weight(), {4, 4}, 0.0, c->name()});
    }
    return specs;
  }

  Rng rng_{31};
  std::unique_ptr<models::TinyR2Plus1d> model_;
  std::vector<nn::Batch> probe_;
};

TEST_F(SensitivityTest, ScanRestoresWeights) {
  const auto specs = Specs();
  std::vector<TensorF> before;
  for (const auto& s : specs) before.push_back(s.weight->value);

  core::SensitivityOptions opt;
  opt.etas = {0.5, 0.9};
  const auto result =
      core::ScanPruningSensitivity(*model_, specs, probe_, opt);
  ASSERT_EQ(result.size(), specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(AllClose(specs[i].weight->value, before[i], 0.0f, 0.0f))
        << specs[i].name;
  }
}

TEST_F(SensitivityTest, CurvesHaveRequestedEtas) {
  core::SensitivityOptions opt;
  opt.etas = {0.25, 0.5, 0.75};
  const auto result =
      core::ScanPruningSensitivity(*model_, Specs(), probe_, opt);
  for (const auto& layer : result) {
    ASSERT_EQ(layer.curve.size(), 3u) << layer.name;
    EXPECT_DOUBLE_EQ(layer.curve[0].eta, 0.25);
    EXPECT_DOUBLE_EQ(layer.curve[2].eta, 0.75);
    for (const auto& p : layer.curve) {
      EXPECT_GE(p.accuracy, 0.0);
      EXPECT_LE(p.accuracy, 1.0);
    }
  }
}

TEST_F(SensitivityTest, MaxEtaWithinSelectsTolerantPoint) {
  core::LayerSensitivity sens;
  sens.curve = {{0.25, 0.80}, {0.5, 0.75}, {0.75, 0.50}, {0.9, 0.20}};
  // Dense accuracy 0.82, tolerance 0.10 -> 0.5 is the last within.
  EXPECT_DOUBLE_EQ(sens.MaxEtaWithin(0.82, 0.10), 0.5);
  // Tight tolerance: only 0.25 qualifies.
  EXPECT_DOUBLE_EQ(sens.MaxEtaWithin(0.82, 0.03), 0.25);
  // Nothing qualifies.
  EXPECT_DOUBLE_EQ(sens.MaxEtaWithin(0.99, 0.01), 0.0);
}

TEST_F(SensitivityTest, RejectsEmptyInputs) {
  EXPECT_THROW(core::ScanPruningSensitivity(*model_, {}, probe_, {}), Error);
  EXPECT_THROW(core::ScanPruningSensitivity(*model_, Specs(), {}, {}),
               Error);
}

}  // namespace
}  // namespace hwp3d
