// Cross-model consistency: the functional tile simulator and the
// analytic performance model must agree on the structural quantities
// they both compute (tile iterations, blocks loaded/skipped, cycles)
// for the same layer, tiling and mask — parameterized across shapes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/projection.h"
#include "fpga/tiled_conv_sim.h"
#include "tensor/init.h"

namespace hwp3d {
namespace {

struct Case {
  int64_t M, N, K, in_d, in_hw;
  int64_t Tm, Tn, Td, Tr, Tc;
  double eta;
};

class ConsistencySweep : public ::testing::TestWithParam<Case> {};

TEST_P(ConsistencySweep, SimMatchesPerfModelCounters) {
  const Case c = GetParam();
  Rng rng(static_cast<uint64_t>(c.M * 131 + c.N));
  TensorF wf(Shape{c.M, c.N, 1, c.K, c.K});
  FillNormal(wf, rng, 0.0f, 1.0f);
  const fpga::Tiling tiling{c.Tm, c.Tn, c.Td, c.Tr, c.Tc};

  core::BlockPartition part(wf.shape(), tiling.block());
  core::ProjectionResult proj = core::PlanBlockSparse(wf, part, c.eta);
  const core::BlockMask* mask = c.eta > 0.0 ? &proj.mask : nullptr;

  TensorF xf(Shape{c.N, c.in_d, c.in_hw, c.in_hw});
  FillUniform(xf, rng, -1.0f, 1.0f);

  fpga::TiledConvSim sim(tiling, fpga::Ports{});
  const fpga::TiledConvResult run =
      sim.Run(Quantize(wf), Quantize(xf), {1, 1, 1}, mask, {});

  models::ConvLayerSpec spec;
  spec.M = c.M;
  spec.N = c.N;
  spec.Kd = 1;
  spec.Kr = spec.Kc = c.K;
  spec.Sd = spec.Sr = spec.Sc = 1;
  spec.D = c.in_d;  // Kd = 1, stride 1
  spec.R = spec.C = c.in_hw - c.K + 1;
  fpga::PerfModel pm(tiling, fpga::Ports{});
  const fpga::LayerLatency lat = pm.LayerCycles(spec, mask);

  EXPECT_EQ(run.stats.tile_iterations, lat.tile_iterations);
  EXPECT_EQ(run.stats.blocks_loaded, lat.blocks_loaded);
  EXPECT_EQ(run.stats.blocks_skipped, lat.blocks_skipped);
  EXPECT_EQ(run.stats.modeled_cycles, lat.cycles);
  // Stall attribution: both sides decompose the same cycle count into
  // the same weight/input/compute/output stall shares, and the shares
  // account for every cycle (Eqs. 19-25 leave no unattributed time).
  EXPECT_EQ(run.stats.stall.wgt, lat.stall.wgt);
  EXPECT_EQ(run.stats.stall.in, lat.stall.in);
  EXPECT_EQ(run.stats.stall.comp, lat.stall.comp);
  EXPECT_EQ(run.stats.stall.out, lat.stall.out);
  EXPECT_EQ(run.stats.stall.total(), lat.cycles);
  EXPECT_EQ(lat.stall.total(), lat.cycles);
  // Dense MAC count equals the workload; pruned strictly less.
  const int64_t dense_macs =
      c.M * c.N * c.K * c.K * spec.D * spec.R * spec.C;
  if (mask == nullptr) {
    EXPECT_EQ(run.stats.macs_executed, dense_macs);
  } else {
    EXPECT_LT(run.stats.macs_executed, dense_macs);
    EXPECT_GT(run.stats.macs_executed, 0);
  }
}

// The serialized (non-double-buffered) ablation must also keep the
// stall decomposition exact on both sides.
TEST(StallAttribution, NonDoubleBufferedSumsToCycles) {
  Rng rng(7);
  TensorF wf(Shape{10, 6, 1, 3, 3});
  FillNormal(wf, rng, 0.0f, 1.0f);
  const fpga::Tiling tiling{4, 4, 2, 3, 3};
  core::BlockPartition part(wf.shape(), tiling.block());
  core::ProjectionResult proj = core::PlanBlockSparse(wf, part, 0.5);
  TensorF xf(Shape{6, 5, 9, 9});
  FillUniform(xf, rng, -1.0f, 1.0f);

  fpga::Ports ports;
  ports.double_buffered = false;
  fpga::TiledConvSim sim(tiling, ports);
  const fpga::TiledConvResult run =
      sim.Run(Quantize(wf), Quantize(xf), {1, 1, 1}, &proj.mask, {});

  models::ConvLayerSpec spec;
  spec.M = 10;
  spec.N = 6;
  spec.Kd = 1;
  spec.Kr = spec.Kc = 3;
  spec.Sd = spec.Sr = spec.Sc = 1;
  spec.D = 5;
  spec.R = spec.C = 7;
  fpga::PerfModel pm(tiling, ports);
  const fpga::LayerLatency lat = pm.LayerCycles(spec, &proj.mask);

  EXPECT_EQ(run.stats.modeled_cycles, lat.cycles);
  EXPECT_EQ(run.stats.stall.wgt, lat.stall.wgt);
  EXPECT_EQ(run.stats.stall.in, lat.stall.in);
  EXPECT_EQ(run.stats.stall.comp, lat.stall.comp);
  EXPECT_EQ(run.stats.stall.out, lat.stall.out);
  EXPECT_EQ(run.stats.stall.total(), lat.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConsistencySweep,
    ::testing::Values(
        // Dense, tiling divides everything.
        Case{8, 8, 3, 4, 10, 4, 4, 2, 4, 4, 0.0},
        // Dense, partial tiles in every dimension.
        Case{10, 6, 3, 5, 9, 4, 4, 2, 3, 3, 0.0},
        // Pruned, even grid.
        Case{8, 8, 3, 4, 10, 4, 4, 2, 4, 4, 0.5},
        // Pruned, edge blocks.
        Case{10, 6, 3, 5, 9, 4, 4, 2, 3, 3, 0.5},
        // Heavily pruned, 1x1 kernel.
        Case{16, 16, 1, 4, 8, 4, 4, 2, 4, 4, 0.9},
        // Single-block layer.
        Case{4, 4, 3, 4, 8, 4, 4, 4, 8, 8, 0.0}));

}  // namespace
}  // namespace hwp3d
