#include <gtest/gtest.h>

#include "fpga/bandwidth_model.h"

namespace hwp3d {
namespace {

using fpga::BandwidthModel;
using fpga::LayerTraffic;
using fpga::NetworkTraffic;

models::ConvLayerSpec OneTileLayer() {
  // Exactly one spatial tile, one m-block, one n-block under tiling
  // (8, 8, 4, 14, 14).
  models::ConvLayerSpec l;
  l.name = "one";
  l.M = 8;
  l.N = 8;
  l.Kd = l.Kr = l.Kc = 3;
  l.Sd = l.Sr = l.Sc = 1;
  l.D = 4;
  l.R = l.C = 14;
  return l;
}

TEST(BandwidthModelTest, HandComputedSingleTile) {
  BandwidthModel bw(fpga::Tiling{8, 8, 4, 14, 14});
  const LayerTraffic t = bw.LayerBytes(OneTileLayer());
  // Weights: 8*8*27 elements * 2 bytes, fetched once.
  EXPECT_DOUBLE_EQ(t.weight_bytes, 2.0 * 8 * 8 * 27);
  // Input tile: 8 channels * 6*16*16 window * 2 bytes.
  EXPECT_DOUBLE_EQ(t.input_bytes, 2.0 * 8 * 6 * 16 * 16);
  // Output tile: 8 * 4*14*14 * 2 bytes.
  EXPECT_DOUBLE_EQ(t.output_bytes, 2.0 * 8 * 4 * 14 * 14);
}

TEST(BandwidthModelTest, WeightTrafficScalesWithSpatialTiles) {
  models::ConvLayerSpec l = OneTileLayer();
  l.D = 8;  // two temporal tiles
  BandwidthModel bw(fpga::Tiling{8, 8, 4, 14, 14});
  const LayerTraffic t1 = bw.LayerBytes(OneTileLayer());
  const LayerTraffic t2 = bw.LayerBytes(l);
  EXPECT_DOUBLE_EQ(t2.weight_bytes, 2.0 * t1.weight_bytes);
  EXPECT_DOUBLE_EQ(t2.output_bytes, 2.0 * t1.output_bytes);
}

TEST(BandwidthModelTest, MaskCutsWeightAndInputTraffic) {
  models::ConvLayerSpec l = OneTileLayer();
  l.N = 64;  // 8 n-blocks
  BandwidthModel bw(fpga::Tiling{8, 8, 4, 14, 14});
  core::BlockPartition part(Shape{l.M, l.N, l.Kd, l.Kr, l.Kc}, {8, 8});
  core::BlockMask mask = part.FullMask();
  for (int64_t bn = 0; bn < 6; ++bn) mask.set(0, bn, false);

  const LayerTraffic dense = bw.LayerBytes(l);
  const LayerTraffic pruned = bw.LayerBytes(l, &mask);
  EXPECT_DOUBLE_EQ(pruned.weight_bytes, dense.weight_bytes * 2.0 / 8.0);
  EXPECT_DOUBLE_EQ(pruned.input_bytes, dense.input_bytes * 2.0 / 8.0);
  // Output must still be written in full.
  EXPECT_DOUBLE_EQ(pruned.output_bytes, dense.output_bytes);
}

TEST(BandwidthModelTest, NetworkAggregates) {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  BandwidthModel bw(fpga::PaperTilingTn8());
  const NetworkTraffic t = bw.NetworkBytes(spec);
  EXPECT_EQ(t.per_layer.size(), spec.layers.size());
  double sum = 0.0;
  for (const auto& l : t.per_layer) sum += l.total();
  EXPECT_DOUBLE_EQ(sum, t.totals.total());
  EXPECT_GT(t.totals.total(), 0.0);
}

TEST(BandwidthModelTest, PruningReducesNetworkTraffic) {
  models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(spec);
  const fpga::SpecMasks masks = fpga::GenerateSpecMasks(spec, {64, 8});
  BandwidthModel bw(fpga::PaperTilingTn8());
  const NetworkTraffic dense = bw.NetworkBytes(spec);
  const NetworkTraffic pruned = bw.NetworkBytes(spec, &masks);
  EXPECT_LT(pruned.totals.weight_bytes, dense.totals.weight_bytes);
  EXPECT_LT(pruned.totals.input_bytes, dense.totals.input_bytes);
  EXPECT_DOUBLE_EQ(pruned.totals.output_bytes, dense.totals.output_bytes);
}

TEST(BandwidthModelTest, AvgBandwidthConversion) {
  NetworkTraffic t;
  t.totals.weight_bytes = 1e9;
  t.totals.input_bytes = 0.5e9;
  t.totals.output_bytes = 0.5e9;
  // 2 GB over 150M cycles at 150 MHz = 1 second -> 2 GB/s.
  EXPECT_NEAR(t.AvgBandwidthGBs(150000000, 150.0), 2.0, 1e-9);
}

TEST(BandwidthModelTest, DemandFitsDdrEnvelopeAtPaperDesignPoint) {
  // Sanity: the modeled average bandwidth at the paper's design point
  // must fit a single DDR4 channel (ZCU102 PS-DDR ~19 GB/s peak).
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  BandwidthModel bw(fpga::PaperTilingTn8());
  fpga::PerfModel pm(fpga::PaperTilingTn8(), fpga::Ports{});
  const NetworkTraffic t = bw.NetworkBytes(spec);
  const double gbs =
      t.AvgBandwidthGBs(pm.NetworkCycles(spec).cycles, 150.0);
  EXPECT_GT(gbs, 0.1);
  EXPECT_LT(gbs, 19.2);
}

}  // namespace
}  // namespace hwp3d
