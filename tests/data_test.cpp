#include <gtest/gtest.h>

#include "data/synthetic_video.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

using data::Motion;
using data::Sample;
using data::SyntheticVideoConfig;
using data::SyntheticVideoDataset;

SyntheticVideoConfig SmallCfg() {
  SyntheticVideoConfig cfg;
  cfg.num_classes = 10;
  cfg.frames = 8;
  cfg.height = 16;
  cfg.width = 16;
  cfg.noise_std = 0.0f;  // deterministic geometry for the motion tests
  return cfg;
}

// Horizontal centroid of the bright pixels in one frame.
double CentroidX(const TensorF& clip, int frame) {
  double sx = 0.0, mass = 0.0;
  const int64_t H = clip.dim(2), W = clip.dim(3);
  for (int64_t y = 0; y < H; ++y)
    for (int64_t x = 0; x < W; ++x) {
      const double v = clip(0, frame, y, x);
      if (v > 0.3) {
        sx += static_cast<double>(x) * v;
        mass += v;
      }
    }
  return mass > 0.0 ? sx / mass : -1.0;
}

double CentroidY(const TensorF& clip, int frame) {
  double sy = 0.0, mass = 0.0;
  const int64_t H = clip.dim(2), W = clip.dim(3);
  for (int64_t y = 0; y < H; ++y)
    for (int64_t x = 0; x < W; ++x) {
      const double v = clip(0, frame, y, x);
      if (v > 0.3) {
        sy += static_cast<double>(y) * v;
        mass += v;
      }
    }
  return mass > 0.0 ? sy / mass : -1.0;
}

double FrameMass(const TensorF& clip, int frame) {
  double mass = 0.0;
  const int64_t H = clip.dim(2), W = clip.dim(3);
  for (int64_t y = 0; y < H; ++y)
    for (int64_t x = 0; x < W; ++x) mass += clip(0, frame, y, x);
  return mass;
}

TEST(SyntheticVideoTest, ShapesAndLabels) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(1);
  const Sample s = ds.MakeSample(3, rng);
  EXPECT_EQ(s.label, 3);
  EXPECT_EQ(s.clip.shape(), (Shape{1, 8, 16, 16}));
}

TEST(SyntheticVideoTest, DeterministicGivenSeed) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng a(42), b(42);
  const Sample s1 = ds.MakeSample(0, a);
  const Sample s2 = ds.MakeSample(0, b);
  EXPECT_TRUE(AllClose(s1.clip, s2.clip, 0.0f, 0.0f));
}

TEST(SyntheticVideoTest, TranslateRightMovesCentroidRight) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(7);
  const Sample s =
      ds.MakeSample(static_cast<int>(Motion::kTranslateRight), rng);
  EXPECT_GT(CentroidX(s.clip, 7), CentroidX(s.clip, 0) + 1.0);
}

TEST(SyntheticVideoTest, TranslateLeftMovesCentroidLeft) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(7);
  const Sample s =
      ds.MakeSample(static_cast<int>(Motion::kTranslateLeft), rng);
  EXPECT_LT(CentroidX(s.clip, 7), CentroidX(s.clip, 0) - 1.0);
}

TEST(SyntheticVideoTest, TranslateDownMovesCentroidDown) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(8);
  const Sample s =
      ds.MakeSample(static_cast<int>(Motion::kTranslateDown), rng);
  EXPECT_GT(CentroidY(s.clip, 7), CentroidY(s.clip, 0) + 1.0);
}

TEST(SyntheticVideoTest, ExpandGrowsMass) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(9);
  const Sample s = ds.MakeSample(static_cast<int>(Motion::kExpand), rng);
  EXPECT_GT(FrameMass(s.clip, 7), FrameMass(s.clip, 0) * 1.5);
}

TEST(SyntheticVideoTest, ContractShrinksMass) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(9);
  const Sample s = ds.MakeSample(static_cast<int>(Motion::kContract), rng);
  EXPECT_LT(FrameMass(s.clip, 7), FrameMass(s.clip, 0) * 0.7);
}

TEST(SyntheticVideoTest, BlinkAlternatesVisibility) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(10);
  const Sample s = ds.MakeSample(static_cast<int>(Motion::kBlink), rng);
  EXPECT_GT(FrameMass(s.clip, 0), 1.0);
  EXPECT_NEAR(FrameMass(s.clip, 1), 0.0, 1e-6);
  EXPECT_GT(FrameMass(s.clip, 2), 1.0);
}

TEST(SyntheticVideoTest, StaticStaysPut) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(11);
  const Sample s = ds.MakeSample(static_cast<int>(Motion::kStatic), rng);
  EXPECT_NEAR(CentroidX(s.clip, 0), CentroidX(s.clip, 7), 0.25);
  EXPECT_NEAR(CentroidY(s.clip, 0), CentroidY(s.clip, 7), 0.25);
}

// The classifier-relevant property: motion classes cannot be told apart
// from any single frame (a right-mover's first frame is a square, just
// like a left-mover's), so the dataset forces temporal reasoning.
TEST(SyntheticVideoTest, FirstFramesAmbiguousAcrossTranslationClasses) {
  SyntheticVideoConfig cfg = SmallCfg();
  SyntheticVideoDataset ds(cfg);
  // Same rng state => same shape parameters; only the motion differs.
  Rng a(123), b(123);
  const Sample right =
      ds.MakeSample(static_cast<int>(Motion::kTranslateRight), a);
  const Sample left =
      ds.MakeSample(static_cast<int>(Motion::kTranslateLeft), b);
  // Frame 0 is identical; later frames diverge.
  double diff0 = 0.0, diff7 = 0.0;
  for (int64_t y = 0; y < cfg.height; ++y)
    for (int64_t x = 0; x < cfg.width; ++x) {
      diff0 += std::fabs(right.clip(0, 0, y, x) - left.clip(0, 0, y, x));
      diff7 += std::fabs(right.clip(0, 7, y, x) - left.clip(0, 7, y, x));
    }
  EXPECT_NEAR(diff0, 0.0, 1e-6);
  EXPECT_GT(diff7, 1.0);
}

TEST(SyntheticVideoTest, MakeSamplesBalancedLabels) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(5);
  const auto samples = ds.MakeSamples(100, rng);
  std::vector<int> counts(10, 0);
  for (const auto& s : samples) counts[static_cast<size_t>(s.label)]++;
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(SyntheticVideoTest, BatchesCoverAllSamples) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(6);
  const auto batches = ds.MakeBatches(25, 8, rng);
  ASSERT_EQ(batches.size(), 4u);  // 8+8+8+1
  EXPECT_EQ(batches[0].clips.dim(0), 8);
  EXPECT_EQ(batches[3].clips.dim(0), 1);
  EXPECT_EQ(batches[0].clips.rank(), 5);
  int64_t total = 0;
  for (const auto& b : batches) total += b.clips.dim(0);
  EXPECT_EQ(total, 25);
}

TEST(SyntheticVideoTest, NoiseChangesClip) {
  SyntheticVideoConfig cfg = SmallCfg();
  cfg.noise_std = 0.1f;
  SyntheticVideoDataset ds(cfg);
  Rng a(3), b(4);
  const Sample s1 = ds.MakeSample(0, a);
  const Sample s2 = ds.MakeSample(0, b);
  EXPECT_FALSE(AllClose(s1.clip, s2.clip, 0.0f, 1e-4f));
}

TEST(SyntheticVideoTest, RejectsBadConfig) {
  SyntheticVideoConfig cfg = SmallCfg();
  cfg.num_classes = 1;
  EXPECT_THROW(SyntheticVideoDataset{cfg}, Error);
  cfg = SmallCfg();
  cfg.frames = 1;
  EXPECT_THROW(SyntheticVideoDataset{cfg}, Error);
}

TEST(SyntheticVideoTest, RejectsBadLabel) {
  SyntheticVideoDataset ds(SmallCfg());
  Rng rng(1);
  EXPECT_THROW(ds.MakeSample(-1, rng), Error);
  EXPECT_THROW(ds.MakeSample(10, rng), Error);
}

TEST(MotionNameTest, AllNamed) {
  for (int m = 0; m < 10; ++m) {
    EXPECT_NE(data::MotionName(static_cast<Motion>(m)), "?");
  }
}

}  // namespace
}  // namespace hwp3d
