#include <gtest/gtest.h>

#include "report/table.h"

namespace hwp3d {
namespace {

using report::Table;

TEST(TableTest, RendersHeaderAndRows) {
  Table t("Demo");
  t.Header({"a", "bb"}).Row({"1", "2"}).Row({"333", "4"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("== Demo =="), std::string::npos);
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| 333 "), std::string::npos);
}

TEST(TableTest, ColumnsAlignToWidestCell) {
  Table t("W");
  t.Header({"x"}).Row({"wide-cell"});
  const std::string out = t.Render();
  // Header cell padded to the widest cell's width.
  EXPECT_NE(out.find("| x         |"), std::string::npos);
}

TEST(TableTest, RuleInsertsSeparator) {
  Table t("R");
  t.Header({"c"}).Row({"1"}).Rule().Row({"2"});
  const std::string out = t.Render();
  // 4 rules: top, under header, explicit, bottom.
  size_t count = 0;
  for (size_t pos = 0; (pos = out.find("+---", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 4u);
}

TEST(TableTest, ShortRowsPadded) {
  Table t("P");
  t.Header({"a", "b", "c"}).Row({"1"});
  EXPECT_NO_THROW(t.Render());
}

TEST(TableTest, CsvOutput) {
  Table t("C");
  t.Header({"x", "y"}).Row({"1", "2"}).Rule().Row({"3", "4,5"});
  const std::string csv = t.RenderCsv();
  EXPECT_EQ(csv, "x,y\n1,2\n3,\"4,5\"\n");  // rule omitted, comma quoted
}

TEST(TableTest, CsvEscapesQuotesAndNewlines) {
  Table t("E");
  t.Header({"plain", "quoted"})
      .Row({"say \"hi\"", "a,b"})
      .Row({"line1\nline2", "cr\rcell"});
  const std::string csv = t.RenderCsv();
  EXPECT_EQ(csv,
            "plain,quoted\n"
            "\"say \"\"hi\"\"\",\"a,b\"\n"
            "\"line1\nline2\",\"cr\rcell\"\n");
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(3.0, 0), "3");
  EXPECT_EQ(Table::Int(1234), "1234");
  EXPECT_EQ(Table::Pct(0.2785, 0), "28%");
  EXPECT_EQ(Table::Pct(0.5, 1), "50.0%");
  EXPECT_EQ(Table::Ratio(3.177, 2), "3.18x");
}

}  // namespace
}  // namespace hwp3d
