#include <gtest/gtest.h>

#include "fpga/power_model.h"
#include "fpga/resource_model.h"
#include "models/network_spec.h"

namespace hwp3d {
namespace {

using fpga::BufferSizes;
using fpga::ResourceModel;
using fpga::ResourceUsage;
using fpga::Tiling;

TEST(ResourceModelTest, BufferMaximaAcrossR2Plus1D) {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  ResourceModel model;
  const BufferSizes b =
      model.ComputeBuffers(fpga::PaperTilingTn8(), {&spec});
  // K_size: conv1's 1x7x7 = 49 is the largest kernel volume (Eq. 17).
  EXPECT_EQ(b.K_size, 49);
  // I_size: the stride-2 1x1x1 shortcut convs have the widest input
  // tile, 7 * 27 * 27 = 5103 (conv1 spatial is 4 * 33 * 33 = 4356).
  EXPECT_EQ(b.I_size, 5103);
  // Eqs. 14-16 with double buffering.
  EXPECT_EQ(b.B_out, 2 * 64 * 4 * 14 * 14);
  EXPECT_EQ(b.B_in, 2 * 8 * 5103);
  EXPECT_EQ(b.B_wgt, 2 * 64 * 8 * 49);
}

TEST(ResourceModelTest, C3DChangesInputMaxOnly) {
  const models::NetworkSpec c3d = models::MakeC3DSpec();
  ResourceModel model;
  const BufferSizes b = model.ComputeBuffers(fpga::PaperTilingTn8(), {&c3d});
  EXPECT_EQ(b.K_size, 27);          // 3x3x3
  EXPECT_EQ(b.I_size, 6 * 16 * 16); // stride-1 3x3x3 windows
}

TEST(ResourceModelTest, MultiNetworkTakesMaxima) {
  const models::NetworkSpec r2p1d = models::MakeR2Plus1DSpec();
  const models::NetworkSpec c3d = models::MakeC3DSpec();
  ResourceModel model;
  const BufferSizes both =
      model.ComputeBuffers(fpga::PaperTilingTn8(), {&r2p1d, &c3d});
  EXPECT_EQ(both.K_size, 49);   // R(2+1)D's 7x7 dominates
  EXPECT_EQ(both.I_size, 5103); // R(2+1)D's strided shortcut dominates
}

TEST(ResourceModelTest, DspMatchesTableIII) {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  ResourceModel model;
  const ResourceUsage u8 = model.Estimate(fpga::PaperTilingTn8(), {&spec});
  const ResourceUsage u16 = model.Estimate(fpga::PaperTilingTn16(), {&spec});
  // Table III: 695 DSPs for (64,8), 1215 for (64,16).
  EXPECT_EQ(u8.dsp, 695);
  EXPECT_EQ(u16.dsp, 1215);
}

TEST(ResourceModelTest, LutFfNearTableIII) {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  ResourceModel model;
  const ResourceUsage u8 = model.Estimate(fpga::PaperTilingTn8(), {&spec});
  const ResourceUsage u16 = model.Estimate(fpga::PaperTilingTn16(), {&spec});
  // Table III: 74K/148K LUT and 51K/76K FF.
  EXPECT_NEAR(static_cast<double>(u8.lut), 74000.0, 1500.0);
  EXPECT_NEAR(static_cast<double>(u16.lut), 148000.0, 1500.0);
  EXPECT_NEAR(static_cast<double>(u8.ff), 51000.0, 1500.0);
  EXPECT_NEAR(static_cast<double>(u16.ff), 76000.0, 1500.0);
}

TEST(ResourceModelTest, PartitionedBramNearTableIII) {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  ResourceModel model;
  const ResourceUsage u8 = model.Estimate(fpga::PaperTilingTn8(), {&spec});
  // Table III reports 710.5 BRAM36 for (64,8); our partitioned estimate
  // must land in the same regime (Vivado-level accuracy not expected).
  EXPECT_NEAR(u8.bram36_partitioned, 710.5, 75.0);
  // Eq. 18 aggregate bound is far smaller — the partitioning overhead is
  // the dominant effect the paper's Table III shows.
  EXPECT_LT(u8.bram36_eq18, 150);
  EXPECT_GT(u8.bram36_partitioned, u8.bram36_eq18);
}

TEST(ResourceModelTest, BiggerTilesUseMoreResources) {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  ResourceModel model;
  const ResourceUsage u8 = model.Estimate(fpga::PaperTilingTn8(), {&spec});
  const ResourceUsage u16 = model.Estimate(fpga::PaperTilingTn16(), {&spec});
  EXPECT_GT(u16.dsp, u8.dsp);
  EXPECT_GT(u16.bram36_partitioned, u8.bram36_partitioned);
  EXPECT_GT(u16.lut, u8.lut);
  EXPECT_GT(u16.bram36_eq18, u8.bram36_eq18);
}

TEST(ResourceModelTest, FeasibilityAgainstZcu102) {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  ResourceModel model;
  const fpga::FpgaDevice dev = fpga::Zcu102();
  EXPECT_TRUE(model.Feasible(
      model.Estimate(fpga::PaperTilingTn8(), {&spec}), dev));
  // A hugely oversized tile must violate the DSP bound.
  const Tiling huge{512, 32, 8, 28, 28};
  EXPECT_FALSE(model.Feasible(model.Estimate(huge, {&spec}), dev));
}

TEST(ResourceModelTest, RejectsEmptyNetworkList) {
  ResourceModel model;
  EXPECT_THROW(model.ComputeBuffers(fpga::PaperTilingTn8(), {}), Error);
}

TEST(PowerModelTest, ReproducesPaperDesignPoints) {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  ResourceModel model;
  fpga::PowerModel power;
  // Calibration targets: 5.4 W at (64,8), 6.7 W at (64,16). The (64,16)
  // point needs the physical-BRAM cap (Vivado reports 100% = 912).
  const fpga::FpgaDevice dev = fpga::Zcu102();
  const double p8 =
      power.Estimate(model.Estimate(fpga::PaperTilingTn8(), {&spec}, &dev));
  const double p16 =
      power.Estimate(model.Estimate(fpga::PaperTilingTn16(), {&spec}, &dev));
  EXPECT_NEAR(p8, 5.4, 0.25);
  EXPECT_NEAR(p16, 6.7, 0.25);
  EXPECT_GT(p16, p8);
}

TEST(DeviceCatalogTest, Zcu102Limits) {
  const fpga::FpgaDevice dev = fpga::Zcu102();
  EXPECT_EQ(dev.dsp, 2520);
  EXPECT_EQ(dev.bram36, 912);
  EXPECT_EQ(dev.technology_nm, 16);
}

TEST(DeviceCatalogTest, PublishedComparatorsComplete) {
  const auto rows = fpga::PublishedComparators();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].label, "F-C3D [13]");
  EXPECT_NEAR(rows[0].latency_ms, 542.5, 1e-9);
  EXPECT_NEAR(rows[3].throughput_gops, 3256.9, 1e-9);
}

}  // namespace
}  // namespace hwp3d
