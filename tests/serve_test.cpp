// Serve-layer behavior: queue batching (flush at max_batch and at
// max_delay), admission-control backpressure, deadline expiry, graceful
// drain, and the bitwise replica-count invariance the server promises.
// Tests assert counts/statuses, never timing upper bounds (CI hosts are
// slow and single-core).
#include <gtest/gtest.h>

#include <cstdio>
#include <future>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "data/synthetic_video.h"
#include "fpga/model_compiler.h"
#include "models/tiny_r2plus1d.h"
#include "nn/trainer.h"
#include "obs/trace.h"
#include "serve/inference_session.h"
#include "serve/request_queue.h"
#include "serve/server.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

using serve::InferenceResult;
using serve::Request;
using serve::RequestQueue;

Request MakeRequest() {
  Request req;
  req.clip = TensorF(Shape{1});
  req.enqueue_us = obs::NowUs();
  return req;
}

// --- RequestQueue -----------------------------------------------------

TEST(RequestQueueTest, FlushesImmediatelyAtMaxBatch) {
  RequestQueue q(16);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.Push(MakeRequest()).ok());
  // max_delay is far in the future; only the size trigger can flush.
  const auto batch = q.PopBatch(/*max_batch=*/4, /*max_delay_us=*/60'000'000);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(q.size(), 0u);
}

TEST(RequestQueueTest, FlushesPartialBatchAfterMaxDelay) {
  RequestQueue q(16);
  ASSERT_TRUE(q.Push(MakeRequest()).ok());
  const double start_us = obs::NowUs();
  const auto batch = q.PopBatch(/*max_batch=*/8, /*max_delay_us=*/5'000);
  EXPECT_EQ(batch.size(), 1u);
  // The flush timer is anchored to the enqueue time, so at least
  // max_delay_us must have passed since then (lower bound only).
  EXPECT_GE(obs::NowUs() - batch[0].enqueue_us, 5'000.0);
  (void)start_us;
}

TEST(RequestQueueTest, RejectsWhenFullAndAfterClose) {
  RequestQueue q(2);
  ASSERT_TRUE(q.Push(MakeRequest()).ok());
  ASSERT_TRUE(q.Push(MakeRequest()).ok());
  EXPECT_EQ(q.Push(MakeRequest()).code(), StatusCode::kResourceExhausted);

  q.Close();
  EXPECT_EQ(q.Push(MakeRequest()).code(), StatusCode::kUnavailable);

  // Closed but not drained: consumers still receive the backlog...
  EXPECT_EQ(q.PopBatch(8, 1'000'000).size(), 2u);
  // ...and then the empty shutdown signal.
  EXPECT_TRUE(q.PopBatch(8, 1'000'000).empty());
}

TEST(RequestQueueTest, NearFlushWaitDoesNotBusySpin) {
  // Regression: with sub-microsecond time left before the flush point,
  // the wait used to truncate to wait_for(0) and busy-spin the CPU
  // until the deadline passed. The wait must always ceil to >= 1 us, so
  // the pop needs only a handful of wakeups, not thousands.
  RequestQueue q(16);
  Request req = MakeRequest();
  req.enqueue_us = obs::NowUs() - 0.6;  // flush lands 0.4 us away at 1 us delay
  ASSERT_TRUE(q.Push(std::move(req)).ok());
  const auto batch = q.PopBatch(/*max_batch=*/8, /*max_delay_us=*/1);
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_LE(q.pop_wait_iterations(), 64);
}

// --- InferenceServer over a compiled model ----------------------------

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetLogLevel(LogLevel::Warning);
    models::TinyR2Plus1dConfig mcfg;
    mcfg.num_classes = 4;
    mcfg.stem_channels = 4;
    mcfg.stage1_channels = 8;
    mcfg.stage2_channels = 8;
    model_ = std::make_unique<models::TinyR2Plus1d>(mcfg, rng_);
    data::SyntheticVideoConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.frames = 6;
    dcfg.height = 10;
    dcfg.width = 10;
    dataset_ = std::make_unique<data::SyntheticVideoDataset>(dcfg);
    auto batches = dataset_->MakeBatches(8, 8, rng_);
    nn::Sgd opt(model_->Params(),
                {.lr = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f});
    nn::TrainEpoch(*model_, opt, batches, {});

    fpga::CompiledModelOptions copts;
    copts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
    auto compiled = fpga::CompiledTinyR2Plus1d::Compile(*model_, copts);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    compiled_ = std::make_unique<fpga::CompiledTinyR2Plus1d>(
        std::move(compiled).value());
  }
  void TearDown() override { SetLogLevel(LogLevel::Info); }

  TensorF MakeClip(int label, uint64_t seed) {
    Rng rng(seed);
    return dataset_->MakeSample(label, rng).clip;
  }

  Rng rng_{11};
  std::unique_ptr<models::TinyR2Plus1d> model_;
  std::unique_ptr<data::SyntheticVideoDataset> dataset_;
  std::unique_ptr<fpga::CompiledTinyR2Plus1d> compiled_;
};

TEST_F(ServeTest, FullBatchRunsAsOneDispatch) {
  serve::ServerConfig cfg;
  cfg.replicas = 2;
  cfg.max_batch = 4;
  cfg.max_delay_us = 60'000'000;  // only the size trigger can flush
  serve::InferenceServer server(*compiled_, cfg);
  std::vector<std::future<StatusOr<InferenceResult>>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(server.SubmitAsync(MakeClip(i % 4, 100 + i)));
  }
  for (auto& f : futures) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->batch_size, 4);
  }
  const auto stats = server.Stats();
  EXPECT_EQ(stats.completed, 4);
  EXPECT_EQ(stats.batches, 1);
}

TEST_F(ServeTest, LoneRequestFlushesAfterMaxDelay) {
  serve::ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 64;
  cfg.max_delay_us = 2'000;
  serve::InferenceServer server(*compiled_, cfg);
  auto r = server.Submit(MakeClip(0, 7));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->batch_size, 1);
  EXPECT_GE(r->queue_us, 2'000.0);  // sat out the full flush delay
}

TEST_F(ServeTest, BackpressureRejectsBeyondQueueCapacity) {
  serve::ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 64;           // the size trigger can't fire
  cfg.max_delay_us = 500'000;   // and the delay trigger not for 500 ms
  cfg.queue_capacity = 4;
  serve::InferenceServer server(*compiled_, cfg);
  std::vector<std::future<StatusOr<InferenceResult>>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(server.SubmitAsync(MakeClip(0, 10 + i)));
  }
  // The 5th submit found the queue at capacity: rejected immediately,
  // not blocked.
  auto rejected = futures[4].get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  server.Shutdown();  // drains the 4 accepted requests
  for (int i = 0; i < 4; ++i) {
    auto r = futures[i].get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
  const auto stats = server.Stats();
  EXPECT_EQ(stats.accepted, 4);
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.completed, 4);
}

TEST_F(ServeTest, ExpiredDeadlineSkipsInference) {
  serve::ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 8;
  cfg.max_delay_us = 50'000;  // the request waits 50 ms in the queue
  serve::InferenceServer server(*compiled_, cfg);
  auto r = server.Submit(MakeClip(1, 3), /*deadline_us=*/1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(server.Stats().deadline_exceeded, 1);
  EXPECT_EQ(server.Stats().completed, 0);
}

TEST_F(ServeTest, ShutdownDrainsAllAcceptedRequests) {
  serve::ServerConfig cfg;
  cfg.replicas = 2;
  cfg.max_batch = 4;
  cfg.max_delay_us = 60'000'000;
  cfg.queue_capacity = 16;
  serve::InferenceServer server(*compiled_, cfg);
  std::vector<std::future<StatusOr<InferenceResult>>> futures;
  for (int i = 0; i < 6; ++i) {  // 6 < max_batch*2: one partial batch
    futures.push_back(server.SubmitAsync(MakeClip(i % 4, 40 + i)));
  }
  server.Shutdown();  // must flush the backlog, not abandon it
  int ok = 0;
  for (auto& f : futures) ok += f.get().ok();
  EXPECT_EQ(ok, 6);
  EXPECT_EQ(server.Stats().completed, 6);

  // After shutdown the server refuses new work.
  auto late = server.Submit(MakeClip(0, 99));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
}

TEST_F(ServeTest, MalformedClipFailsOnlyThatRequest) {
  serve::ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 2;
  cfg.max_delay_us = 60'000'000;
  serve::InferenceServer server(*compiled_, cfg);
  auto bad = server.SubmitAsync(TensorF(Shape{1, 6, 10}));  // rank 3
  auto good = server.SubmitAsync(MakeClip(2, 5));
  auto bad_r = bad.get();
  ASSERT_FALSE(bad_r.ok());
  EXPECT_EQ(bad_r.status().code(), StatusCode::kInvalidArgument);
  auto good_r = good.get();
  EXPECT_TRUE(good_r.ok()) << good_r.status().ToString();
}

TEST_F(ServeTest, PredictionsInvariantAcrossReplicaCounts) {
  std::vector<TensorF> clips;
  for (int i = 0; i < 6; ++i) clips.push_back(MakeClip(i % 4, 60 + i));

  // Ground truth: the compiled model called directly.
  std::vector<TensorF> direct;
  for (const TensorF& clip : clips) direct.push_back(compiled_->Infer(clip));

  for (int replicas : {1, 4}) {
    serve::ServerConfig cfg;
    cfg.replicas = replicas;
    cfg.max_batch = 3;
    cfg.max_delay_us = 1'000;
    serve::InferenceServer server(*compiled_, cfg);
    std::vector<std::future<StatusOr<InferenceResult>>> futures;
    for (const TensorF& clip : clips) {
      futures.push_back(server.SubmitAsync(clip));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      auto r = futures[i].get();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      // Bitwise identical to the direct path, whatever the replica.
      EXPECT_TRUE(AllClose(r->logits, direct[i], 0.0f, 0.0f))
          << "replicas=" << replicas << " clip " << i;
    }
  }
}

// --- InferenceSession facade ------------------------------------------

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

data::SyntheticVideoConfig SmallDataConfig() {
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  return dcfg;
}

InferenceSession::Builder SmallSessionBuilder() {
  return InferenceSession::Builder()
      .DataConfig(SmallDataConfig())
      .Seed(5)
      .TrainEpochs(1)
      .TrainData(4, 4)
      .EvalData(2)
      .Tiling(fpga::Tiling{4, 4, 2, 5, 5})
      .MaxDelayUs(1'000);
}

TEST(InferenceSessionTest, BuilderRejectsBadConfigs) {
  auto no_weights = SmallSessionBuilder().TrainEpochs(0).Build();
  ASSERT_FALSE(no_weights.ok());
  EXPECT_EQ(no_weights.status().code(), StatusCode::kInvalidArgument);

  auto zero_replicas = SmallSessionBuilder().Replicas(0).Build();
  ASSERT_FALSE(zero_replicas.ok());
  EXPECT_EQ(zero_replicas.status().code(), StatusCode::kInvalidArgument);

  auto bad_sparsity = SmallSessionBuilder().PruneToSparsity(1.5).Build();
  ASSERT_FALSE(bad_sparsity.ok());
  EXPECT_EQ(bad_sparsity.status().code(), StatusCode::kInvalidArgument);
}

TEST(InferenceSessionTest, FromMissingCheckpointIsNotFound) {
  auto session =
      SmallSessionBuilder().FromCheckpoint("/no/such/ckpt.bin").Build();
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kNotFound);
}

TEST(InferenceSessionTest, CheckpointRoundTripServesIdenticalModel) {
  auto first = SmallSessionBuilder().Replicas(2).Build();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  InferenceSession& session = **first;
  ASSERT_FALSE(session.eval_batches().empty());

  // Slice one eval clip out of the first batch.
  const nn::Batch& batch = session.eval_batches()[0];
  const data::SyntheticVideoConfig dcfg = session.data_config();
  TensorF clip(Shape{dcfg.channels, dcfg.frames, dcfg.height, dcfg.width});
  for (int64_t i = 0; i < clip.numel(); ++i) clip[i] = batch.clips[i];

  auto direct = session.Submit(clip);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  const std::string path = TempPath("session_roundtrip.ckpt");
  ASSERT_TRUE(session.SaveCheckpoint(path).ok());
  // Reload via the checkpoint (no retraining) with zero-block mask
  // recovery: a dense model yields all-enabled masks, so the logits
  // must be bitwise identical to the first session's.
  auto second = SmallSessionBuilder()
                    .FromCheckpoint(path)
                    .UseZeroBlockMasks()
                    .EvalData(0)
                    .Build();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  auto reloaded = (*second)->Submit(clip);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_TRUE(AllClose(reloaded->logits, direct->logits, 0.0f, 0.0f));
  EXPECT_EQ(reloaded->label, direct->label);

  ASSERT_TRUE(session.Drain().ok());
  EXPECT_GE(session.Stats().completed, 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hwp3d
