// Fault-tolerance behavior of the serving layer under deterministic
// fault injection: transient replica failures retried to success,
// consecutive failures quarantining a replica with bitwise-identical
// degraded output, the watchdog killing a wedged batch, per-item
// deadline enforcement mid-batch, truthful injected admission
// failures, and queue churn against a concurrent shutdown. Also unit
// tests for FaultInjector and RetryPolicy themselves.
//
// Every test resets the process-global FaultInjector in SetUp/TearDown
// so fault points never leak across tests.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/rng.h"
#include "data/synthetic_video.h"
#include "fpga/model_compiler.h"
#include "models/tiny_r2plus1d.h"
#include "nn/trainer.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "tensor/tensor_ops.h"

namespace hwp3d {
namespace {

using serve::InferenceResult;

// --- FaultInjector ----------------------------------------------------

class FaultInjectorTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Get().Reset(); }
  void TearDown() override { FaultInjector::Get().Reset(); }
};

TEST_F(FaultInjectorTest, InactiveByDefault) {
  auto& inj = FaultInjector::Get();
  EXPECT_FALSE(inj.active());
  EXPECT_FALSE(inj.Trip("serve.replica_infer"));
  EXPECT_EQ(inj.total_injected(), 0);
}

TEST_F(FaultInjectorTest, ArmFiresExactlyCountTimes) {
  auto& inj = FaultInjector::Get();
  inj.Arm("x", 3);
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += inj.Trip("x");
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.injected("x"), 3);
  inj.Disable("x");
  EXPECT_FALSE(inj.Trip("x"));
}

TEST_F(FaultInjectorTest, ProbabilisticPatternIsDeterministic) {
  auto& inj = FaultInjector::Get();
  auto run = [&inj] {
    inj.Reset();
    inj.SetSeed(7);
    inj.Enable("p", {.probability = 0.5});
    std::vector<bool> pattern;
    for (int i = 0; i < 400; ++i) pattern.push_back(inj.Trip("p"));
    return pattern;
  };
  const std::vector<bool> first = run();
  const std::vector<bool> second = run();
  EXPECT_EQ(first, second);  // same seed -> same fire pattern
  const int64_t fired = inj.injected("p");
  EXPECT_GT(fired, 100);  // ~200 expected; wide deterministic bounds
  EXPECT_LT(fired, 300);

  // A different seed produces a different pattern.
  inj.Reset();
  inj.SetSeed(8);
  inj.Enable("p", {.probability = 0.5});
  std::vector<bool> other;
  for (int i = 0; i < 400; ++i) other.push_back(inj.Trip("p"));
  EXPECT_NE(first, other);
}

TEST_F(FaultInjectorTest, ConfigureParsesSpecGrammar) {
  auto& inj = FaultInjector::Get();
  ASSERT_TRUE(inj.Configure("a=0.25,b=1x2,c=1x1d5000").ok());
  EXPECT_TRUE(inj.active());
  EXPECT_EQ(inj.delay_us("c"), 5000);
  int b_fired = 0;
  for (int i = 0; i < 5; ++i) b_fired += inj.Trip("b");
  EXPECT_EQ(b_fired, 2);  // capped by x2
  EXPECT_TRUE(inj.Trip("c"));
  EXPECT_FALSE(inj.Trip("c"));  // capped by x1

  EXPECT_FALSE(inj.Configure("noequals").ok());
  EXPECT_FALSE(inj.Configure("p=1.5").ok());       // probability > 1
  EXPECT_FALSE(inj.Configure("p=0.5xy").ok());     // bad count suffix
  EXPECT_FALSE(inj.Configure("p=0.5d10z").ok());   // trailing garbage
}

// --- RetryPolicy ------------------------------------------------------

TEST(RetryPolicyTest, BackoffGrowsAndCapsWithoutJitter) {
  RetryPolicy retry({.max_attempts = 5,
                     .initial_backoff_us = 100,
                     .multiplier = 2.0,
                     .max_backoff_us = 400,
                     .jitter = 0.0});
  EXPECT_EQ(retry.NextBackoffUs(0, 0.0, 0.0).value(), 100);
  EXPECT_EQ(retry.NextBackoffUs(1, 0.0, 0.0).value(), 200);
  EXPECT_EQ(retry.NextBackoffUs(2, 0.0, 0.0).value(), 400);
  EXPECT_EQ(retry.NextBackoffUs(3, 0.0, 0.0).value(), 400);  // capped
  EXPECT_FALSE(retry.NextBackoffUs(4, 0.0, 0.0).has_value());  // exhausted
}

TEST(RetryPolicyTest, NeverSchedulesARetryPastTheDeadline) {
  RetryPolicy retry({.max_attempts = 10,
                     .initial_backoff_us = 1000,
                     .multiplier = 1.0,
                     .max_backoff_us = 1000,
                     .jitter = 0.0});
  // Plenty of headroom: retry engages.
  EXPECT_TRUE(retry.NextBackoffUs(0, 0.0, 10'000.0).has_value());
  // The 1000 us backoff would land at/after the deadline: no retry.
  EXPECT_FALSE(retry.NextBackoffUs(0, 9'500.0, 10'000.0).has_value());
  EXPECT_FALSE(retry.NextBackoffUs(0, 9'000.0, 10'000.0).has_value());
}

TEST(RetryPolicyTest, JitterIsDeterministicAndBounded) {
  const RetryConfig cfg{.max_attempts = 4,
                        .initial_backoff_us = 1000,
                        .multiplier = 1.0,
                        .max_backoff_us = 1000,
                        .jitter = 0.25};
  RetryPolicy a(cfg, /*seed=*/3), b(cfg, /*seed=*/3);
  for (int attempt = 0; attempt < 3; ++attempt) {
    const int64_t ba = a.NextBackoffUs(attempt, 0.0, 0.0).value();
    EXPECT_EQ(ba, b.NextBackoffUs(attempt, 0.0, 0.0).value());
    EXPECT_GE(ba, 750);   // 1000 * (1 - 0.25)
    EXPECT_LE(ba, 1250);  // 1000 * (1 + 0.25)
  }
}

// --- Server under injected faults -------------------------------------

class ServeFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Get().Reset();
    SetLogLevel(LogLevel::Error);
    models::TinyR2Plus1dConfig mcfg;
    mcfg.num_classes = 4;
    mcfg.stem_channels = 4;
    mcfg.stage1_channels = 8;
    mcfg.stage2_channels = 8;
    model_ = std::make_unique<models::TinyR2Plus1d>(mcfg, rng_);
    data::SyntheticVideoConfig dcfg;
    dcfg.num_classes = 4;
    dcfg.frames = 6;
    dcfg.height = 10;
    dcfg.width = 10;
    dataset_ = std::make_unique<data::SyntheticVideoDataset>(dcfg);
    auto batches = dataset_->MakeBatches(8, 8, rng_);
    nn::Sgd opt(model_->Params(),
                {.lr = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f});
    nn::TrainEpoch(*model_, opt, batches, {});

    fpga::CompiledModelOptions copts;
    copts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
    auto compiled = fpga::CompiledTinyR2Plus1d::Compile(*model_, copts);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    compiled_ = std::make_unique<fpga::CompiledTinyR2Plus1d>(
        std::move(compiled).value());
  }
  void TearDown() override {
    FaultInjector::Get().Reset();
    SetLogLevel(LogLevel::Info);
  }

  TensorF MakeClip(int label, uint64_t seed) {
    Rng rng(seed);
    return dataset_->MakeSample(label, rng).clip;
  }

  // Fast-retry config so fault tests never sleep for real backoffs.
  static RetryConfig FastRetry(int max_attempts) {
    return {.max_attempts = max_attempts,
            .initial_backoff_us = 50,
            .multiplier = 2.0,
            .max_backoff_us = 500,
            .jitter = 0.1};
  }

  Rng rng_{11};
  std::unique_ptr<models::TinyR2Plus1d> model_;
  std::unique_ptr<data::SyntheticVideoDataset> dataset_;
  std::unique_ptr<fpga::CompiledTinyR2Plus1d> compiled_;
};

TEST_F(ServeFaultTest, TransientFailureRetriesToSuccess) {
  FaultInjector::Get().Arm("serve.replica_infer", 2);  // fail twice, then heal
  serve::ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 1;
  cfg.max_delay_us = 1'000;
  cfg.retry = FastRetry(3);
  serve::InferenceServer server(*compiled_, cfg);

  const TensorF clip = MakeClip(1, 21);
  auto r = server.Submit(clip);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Retried output is the same bits a fault-free run produces.
  EXPECT_TRUE(AllClose(r->logits, compiled_->Infer(clip), 0.0f, 0.0f));

  const auto stats = server.Stats();
  EXPECT_EQ(stats.faults_injected, 2);
  EXPECT_EQ(stats.retries, 2);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.replicas_quarantined, 0);  // 2 < quarantine_after=3
}

TEST_F(ServeFaultTest, ExhaustedRetriesFailTruthfully) {
  // One replica that always fails: retries and the rescue pass both
  // exhaust, and the request must resolve with the transient status —
  // never hang, never pretend success.
  FaultInjector::Get().Arm("serve.replica_infer", 1'000'000);
  serve::ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 1;
  cfg.max_delay_us = 1'000;
  cfg.retry = FastRetry(2);
  serve::InferenceServer server(*compiled_, cfg);

  auto r = server.Submit(MakeClip(0, 33));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.Stats().completed, 0);
  // The last healthy replica is never quarantined, even though it
  // failed far more than quarantine_after times.
  EXPECT_EQ(server.Stats().replicas_quarantined, 0);
  EXPECT_EQ(server.Stats().healthy_replicas, 1);
}

TEST_F(ServeFaultTest, QuarantineDegradesWithBitwiseIdenticalOutput) {
  // Replica 1 always fails; replica 0 is healthy. After K = 2
  // consecutive failures r1 is quarantined and every request is still
  // answered — bitwise identical to the direct (healthy) path.
  FaultInjector::Get().Arm("serve.replica_infer.r1", 1'000'000);
  serve::ServerConfig cfg;
  cfg.replicas = 2;
  cfg.max_batch = 8;
  cfg.max_delay_us = 2'000;
  cfg.quarantine_after = 2;
  cfg.retry = FastRetry(3);
  serve::InferenceServer server(*compiled_, cfg);

  std::vector<TensorF> clips;
  for (int i = 0; i < 8; ++i) clips.push_back(MakeClip(i % 4, 50 + i));
  std::vector<std::future<StatusOr<InferenceResult>>> futures;
  for (const TensorF& clip : clips) {
    futures.push_back(server.SubmitAsync(clip));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    auto r = futures[i].get();
    ASSERT_TRUE(r.ok()) << "clip " << i << ": " << r.status().ToString();
    EXPECT_TRUE(AllClose(r->logits, compiled_->Infer(clips[i]), 0.0f, 0.0f))
        << "clip " << i;
  }
  const auto stats = server.Stats();
  EXPECT_EQ(stats.completed, 8);
  EXPECT_EQ(stats.replicas_quarantined, 1);
  EXPECT_EQ(stats.healthy_replicas, 1);
  EXPECT_GT(stats.faults_injected, 0);

  // Later batches re-stripe onto the healthy survivor only: no new
  // faults fire because the armed point targets the quarantined replica.
  const int64_t faults_before = stats.faults_injected;
  auto late = server.Submit(clips[0]);
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_EQ(late->replica, 0);
  EXPECT_EQ(server.Stats().faults_injected, faults_before);
}

TEST_F(ServeFaultTest, WatchdogFailsAStuckBatch) {
  // The first replica call wedges for 400 ms; the watchdog (50 ms) must
  // fail both batch requests with kDeadlineExceeded long before the
  // wedge clears, so waiters are not hostage to the stuck call.
  FaultInjector::Get().Arm("serve.replica_wedge", 1, /*delay_us=*/400'000);
  serve::ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 2;
  cfg.max_delay_us = 60'000'000;  // only the size trigger flushes
  cfg.watchdog_timeout_us = 50'000;
  serve::InferenceServer server(*compiled_, cfg);

  auto f0 = server.SubmitAsync(MakeClip(0, 70));
  auto f1 = server.SubmitAsync(MakeClip(1, 71));
  auto r0 = f0.get();
  auto r1 = f1.get();
  ASSERT_FALSE(r0.ok());
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r0.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r1.status().code(), StatusCode::kDeadlineExceeded);

  server.Shutdown();  // returns once the wedged call unwinds
  const auto stats = server.Stats();
  EXPECT_EQ(stats.watchdog_fired, 1);
  EXPECT_EQ(stats.deadline_exceeded, 2);
  EXPECT_EQ(stats.completed, 0);
}

TEST_F(ServeFaultTest, MidBatchDeadlineIsEnforcedPerItem) {
  // Item A wedges the lone replica for 200 ms; item B's 20 ms deadline
  // expires while A runs. The per-item check must fail B with
  // kDeadlineExceeded instead of running it and reporting a stale OK.
  FaultInjector::Get().Arm("serve.replica_wedge", 1, /*delay_us=*/200'000);
  serve::ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 2;
  cfg.max_delay_us = 60'000'000;
  serve::InferenceServer server(*compiled_, cfg);

  auto fa = server.SubmitAsync(MakeClip(0, 80));  // no deadline
  auto fb = server.SubmitAsync(MakeClip(1, 81), /*deadline_us=*/20'000);
  auto ra = fa.get();
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  auto rb = fb.get();
  ASSERT_FALSE(rb.ok());
  EXPECT_EQ(rb.status().code(), StatusCode::kDeadlineExceeded);
  const auto stats = server.Stats();
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.deadline_exceeded, 1);
}

TEST_F(ServeFaultTest, InjectedAdmissionFailureIsTruthful) {
  FaultInjector::Get().Arm("serve.queue_admit", 1);
  serve::ServerConfig cfg;
  cfg.replicas = 1;
  cfg.max_batch = 1;
  cfg.max_delay_us = 1'000;
  serve::InferenceServer server(*compiled_, cfg);

  auto rejected = server.Submit(MakeClip(0, 90));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rejected.status().message().find("injected"), std::string::npos);

  auto ok = server.Submit(MakeClip(0, 90));
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  const auto stats = server.Stats();
  EXPECT_EQ(stats.rejected, 1);
  EXPECT_EQ(stats.faults_injected, 1);
  EXPECT_EQ(stats.accepted, 1);
}

TEST_F(ServeFaultTest, ClosedQueueChurnResolvesEveryFuture) {
  // Producers race a concurrent Shutdown with a low fault rate on
  // admission: every submitted future must resolve — OK, or a truthful
  // kUnavailable / kResourceExhausted — and nothing may hang or crash.
  FaultInjector::Get().Enable("serve.queue_admit", {.probability = 0.2});
  serve::ServerConfig cfg;
  cfg.replicas = 2;
  cfg.max_batch = 4;
  cfg.max_delay_us = 500;
  cfg.queue_capacity = 8;
  cfg.retry = FastRetry(2);
  serve::InferenceServer server(*compiled_, cfg);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 12;
  std::vector<std::future<StatusOr<InferenceResult>>> futures(
      kProducers * kPerProducer);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        futures[static_cast<size_t>(p * kPerProducer + i)] =
            server.SubmitAsync(MakeClip(i % 4, 200 + p * 100 + i));
      }
    });
  }
  // Shut down while producers are mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.Shutdown();
  for (auto& t : producers) t.join();

  int ok = 0, unavailable = 0, exhausted = 0, other = 0;
  for (auto& f : futures) {
    ASSERT_TRUE(f.valid());
    auto r = f.get();  // must not hang
    if (r.ok()) {
      ++ok;
    } else if (r.status().code() == StatusCode::kUnavailable) {
      ++unavailable;
    } else if (r.status().code() == StatusCode::kResourceExhausted) {
      ++exhausted;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(ok + unavailable + exhausted, kProducers * kPerProducer);
  EXPECT_EQ(other, 0);
  // Accounting is airtight: accepted requests either completed or were
  // expired/rejected truthfully — none vanished.
  const auto stats = server.Stats();
  EXPECT_EQ(stats.completed + stats.deadline_exceeded, stats.accepted);
  EXPECT_EQ(stats.completed, ok);
}

}  // namespace
}  // namespace hwp3d
