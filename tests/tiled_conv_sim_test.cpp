#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/projection.h"
#include "fpga/tiled_conv_sim.h"
#include "nn/conv3d.h"
#include "tensor/init.h"

namespace hwp3d {
namespace {

using fpga::PostOps;
using fpga::ReferenceConv3dFixed;
using fpga::TiledConvResult;
using fpga::TiledConvSim;
using fpga::Tiling;

TensorQ RandomQ(const Shape& shape, uint64_t seed, float lo = -1.0f,
                float hi = 1.0f) {
  Rng rng(seed);
  TensorF f(shape);
  FillUniform(f, rng, lo, hi);
  return Quantize(f);
}

bool BitIdentical(const TensorQ& a, const TensorQ& b) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (a[i].raw() != b[i].raw()) return false;
  }
  return true;
}

TEST(TiledConvSimTest, MatchesDenseReferenceBitExactly) {
  const TensorQ w = RandomQ(Shape{6, 5, 2, 3, 3}, 1);
  const TensorQ x = RandomQ(Shape{5, 4, 8, 8}, 2);
  TiledConvSim sim(Tiling{4, 2, 2, 3, 3}, {});
  const TiledConvResult r = sim.Run(w, x, {1, 1, 1}, nullptr, {});
  const TensorQ ref = ReferenceConv3dFixed(w, x, {1, 1, 1});
  EXPECT_TRUE(BitIdentical(r.output, ref));
}

TEST(TiledConvSimTest, MatchesReferenceWithStride) {
  const TensorQ w = RandomQ(Shape{4, 3, 1, 3, 3}, 3);
  const TensorQ x = RandomQ(Shape{3, 4, 9, 9}, 4);
  TiledConvSim sim(Tiling{2, 2, 2, 2, 2}, {});
  const TiledConvResult r = sim.Run(w, x, {1, 2, 2}, nullptr, {});
  const TensorQ ref = ReferenceConv3dFixed(w, x, {1, 2, 2});
  EXPECT_TRUE(BitIdentical(r.output, ref));
}

TEST(TiledConvSimTest, MaskedRunEqualsReferenceOnMaskedWeights) {
  // Skipping a block must equal convolving with that block zeroed.
  TensorF wf(Shape{8, 8, 1, 3, 3});
  Rng rng(5);
  FillUniform(wf, rng, -1.0f, 1.0f);
  core::BlockPartition part(wf.shape(), {4, 4});
  TensorF wf_pruned = wf;
  const core::ProjectionResult proj =
      core::ProjectToBlockSparse(wf_pruned, part, 0.5);

  const TensorQ w_full = Quantize(wf);
  const TensorQ w_pruned = Quantize(wf_pruned);
  const TensorQ x = RandomQ(Shape{8, 3, 6, 6}, 6);

  TiledConvSim sim(Tiling{4, 4, 2, 2, 2}, {});
  // Simulator with block-enable on the FULL weights...
  const TiledConvResult masked = sim.Run(w_full, x, {1, 1, 1}, &proj.mask, {});
  // ...equals the dense reference on the pruned weights.
  const TensorQ ref = ReferenceConv3dFixed(w_pruned, x, {1, 1, 1});
  EXPECT_TRUE(BitIdentical(masked.output, ref));
  // Per spatial tile, every disabled block is skipped exactly once.
  const int64_t spatial_tiles =
      masked.stats.tile_iterations / part.blocks_m();
  EXPECT_EQ(masked.stats.blocks_skipped,
            spatial_tiles * (part.num_blocks() - proj.mask.CountEnabled()));
  EXPECT_EQ(masked.stats.blocks_loaded,
            spatial_tiles * proj.mask.CountEnabled());
  EXPECT_GT(masked.stats.blocks_skipped, 0);
}

TEST(TiledConvSimTest, MatchesFloatConvApproximately) {
  // Quantized accelerator output tracks the float nn::Conv3d within the
  // accumulated quantization error budget.
  Rng rng(7);
  nn::Conv3dConfig cfg;
  cfg.in_channels = 3;
  cfg.out_channels = 4;
  cfg.kernel = {2, 3, 3};
  cfg.bias = false;
  nn::Conv3d conv(cfg, rng);

  TensorF x(Shape{1, 3, 4, 7, 7});
  FillUniform(x, rng, -1.0f, 1.0f);
  const TensorF y_float = conv.Forward(x, false);

  // Drop the batch dim for the accelerator.
  TensorF x4(Shape{3, 4, 7, 7});
  for (int64_t i = 0; i < x4.numel(); ++i) x4[i] = x[i];
  TiledConvSim sim(Tiling{4, 2, 2, 3, 3}, {});
  const TiledConvResult r =
      sim.Run(Quantize(conv.weight().value), Quantize(x4), {1, 1, 1},
              nullptr, {});
  for (int64_t i = 0; i < y_float.numel(); ++i) {
    EXPECT_NEAR(r.output[i].ToFloat(), y_float[i], 0.1f) << "at " << i;
  }
}

TEST(TiledConvSimTest, AffinePostOpApplied) {
  const TensorQ w = RandomQ(Shape{2, 2, 1, 1, 1}, 8);
  const TensorQ x = RandomQ(Shape{2, 2, 3, 3}, 9);
  PostOps post;
  post.has_affine = true;
  TensorF scale(Shape{2}, std::vector<float>{2.0f, 0.5f});
  TensorF shift(Shape{2}, std::vector<float>{1.0f, -1.0f});
  post.scale = Quantize(scale);
  post.shift = Quantize(shift);

  TiledConvSim sim(Tiling{2, 2, 2, 2, 2}, {});
  const TiledConvResult r = sim.Run(w, x, {1, 1, 1}, nullptr, post);
  const TensorQ plain = ReferenceConv3dFixed(w, x, {1, 1, 1});
  for (int64_t m = 0; m < 2; ++m)
    for (int64_t i = 0; i < 2 * 3 * 3; ++i) {
      const Fixed16 expected =
          plain[m * 18 + i] * post.scale[m] + post.shift[m];
      EXPECT_EQ(r.output[m * 18 + i].raw(), expected.raw());
    }
}

TEST(TiledConvSimTest, ReluClampsNegatives) {
  const TensorQ w = RandomQ(Shape{2, 2, 1, 1, 1}, 10);
  const TensorQ x = RandomQ(Shape{2, 2, 3, 3}, 11);
  PostOps post;
  post.relu = true;
  TiledConvSim sim(Tiling{2, 2, 1, 2, 2}, {});
  const TiledConvResult r = sim.Run(w, x, {1, 1, 1}, nullptr, post);
  for (int64_t i = 0; i < r.output.numel(); ++i) {
    EXPECT_GE(r.output[i].ToFloat(), 0.0f);
  }
}

TEST(TiledConvSimTest, ShortcutAddApplied) {
  const TensorQ w = RandomQ(Shape{2, 2, 1, 1, 1}, 12);
  const TensorQ x = RandomQ(Shape{2, 2, 3, 3}, 13);
  const TensorQ sc = RandomQ(Shape{2, 2, 3, 3}, 14);
  PostOps post;
  post.shortcut = &sc;
  TiledConvSim sim(Tiling{2, 2, 2, 3, 3}, {});
  const TiledConvResult r = sim.Run(w, x, {1, 1, 1}, nullptr, post);
  const TensorQ plain = ReferenceConv3dFixed(w, x, {1, 1, 1});
  for (int64_t i = 0; i < plain.numel(); ++i) {
    EXPECT_EQ(r.output[i].raw(), (plain[i] + sc[i]).raw());
  }
}

TEST(TiledConvSimTest, MacCountMatchesWorkload) {
  const TensorQ w = RandomQ(Shape{4, 4, 2, 2, 2}, 15);
  const TensorQ x = RandomQ(Shape{4, 4, 5, 5}, 16);
  TiledConvSim sim(Tiling{2, 2, 2, 2, 2}, {});
  const TiledConvResult r = sim.Run(w, x, {1, 1, 1}, nullptr, {});
  // MACs = M*N*Kd*Kr*Kc*D*R*C for dense execution.
  EXPECT_EQ(r.stats.macs_executed, 4 * 4 * 8 * (3 * 4 * 4));
  EXPECT_GT(r.stats.modeled_cycles, 0);
}

TEST(TiledConvSimTest, PadInputPlacesInterior) {
  TensorQ x(Shape{1, 1, 2, 2});
  x(0, 0, 0, 0) = Fixed16::FromFloat(1.0f);
  x(0, 0, 1, 1) = Fixed16::FromFloat(2.0f);
  const TensorQ p = fpga::PadInput(x, {1, 1, 1});
  EXPECT_EQ(p.shape(), (Shape{1, 3, 4, 4}));
  EXPECT_FLOAT_EQ(p(0, 1, 1, 1).ToFloat(), 1.0f);
  EXPECT_FLOAT_EQ(p(0, 1, 2, 2).ToFloat(), 2.0f);
  EXPECT_FLOAT_EQ(p(0, 0, 0, 0).ToFloat(), 0.0f);
}

TEST(TiledConvSimTest, MaxPoolFixed) {
  TensorQ x(Shape{1, 2, 2, 2});
  for (int64_t i = 0; i < 8; ++i)
    x[i] = Fixed16::FromFloat(static_cast<float>(i) - 4.0f);
  const TensorQ y = fpga::MaxPool3dFixed(x, {2, 2, 2}, {2, 2, 2});
  EXPECT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0].ToFloat(), 3.0f);
}

TEST(TiledConvSimTest, RejectsMismatchedShapes) {
  const TensorQ w = RandomQ(Shape{2, 3, 1, 1, 1}, 17);
  const TensorQ x = RandomQ(Shape{2, 2, 3, 3}, 18);  // wrong channels
  TiledConvSim sim(Tiling{2, 2, 2, 2, 2}, {});
  EXPECT_THROW(sim.Run(w, x, {1, 1, 1}, nullptr, {}), ShapeError);
}

// Property sweep: bit-exactness holds across tilings that do and do not
// divide the problem dimensions.
struct TileCase {
  int64_t Tm, Tn, Td, Tr, Tc;
};
class TilingSweep : public ::testing::TestWithParam<TileCase> {};

TEST_P(TilingSweep, BitExactAcrossTilings) {
  const TileCase t = GetParam();
  const TensorQ w = RandomQ(Shape{5, 7, 2, 2, 2}, 19);
  const TensorQ x = RandomQ(Shape{7, 5, 7, 9}, 20);
  TiledConvSim sim(Tiling{t.Tm, t.Tn, t.Td, t.Tr, t.Tc}, {});
  const TiledConvResult r = sim.Run(w, x, {1, 1, 1}, nullptr, {});
  const TensorQ ref = ReferenceConv3dFixed(w, x, {1, 1, 1});
  EXPECT_TRUE(BitIdentical(r.output, ref));
}

INSTANTIATE_TEST_SUITE_P(
    Tilings, TilingSweep,
    ::testing::Values(TileCase{1, 1, 1, 1, 1}, TileCase{2, 3, 2, 3, 2},
                      TileCase{5, 7, 4, 6, 8}, TileCase{8, 8, 8, 8, 8},
                      TileCase{3, 2, 1, 4, 3}, TileCase{4, 4, 2, 2, 2}));

}  // namespace
}  // namespace hwp3d
