#include "kernels/conv3d_gemm.h"

#include <algorithm>

#include "kernels/scratch.h"
#include "kernels/sgemm.h"
#include "obs/trace.h"

namespace hwp3d::kernels {

void Conv3dForwardGemm(const Conv3dGeom& g, const float* x, const float* w,
                       const float* bias, float* y) {
  HWP_TRACE_SCOPE("kernels/conv3d_forward_gemm");
  const int64_t K = g.cols_rows();
  const int64_t P = g.cols_cols();
  thread_local ScratchBuffer<float> cols_scratch;
  float* cols = cols_scratch.Resize(static_cast<size_t>(K * P));
  for (int64_t b = 0; b < g.batch; ++b) {
    Im2col3d(g, x + b * g.in_sample_size(), cols);
    float* yb = y + b * g.out_sample_size();
    if (bias != nullptr) {
      // Seed each output row with its bias, then accumulate the GEMM.
      for (int64_t m = 0; m < g.out_c; ++m) {
        std::fill(yb + m * P, yb + (m + 1) * P, bias[m]);
      }
    }
    Sgemm(/*trans_a=*/false, /*trans_b=*/false, g.out_c, P, K, w, K,
          cols, P, yb, P, /*accumulate=*/bias != nullptr);
  }
}

void Conv3dBackwardGemm(const Conv3dGeom& g, const float* x, const float* w,
                        const float* dy, float* dw, float* dx) {
  HWP_TRACE_SCOPE("kernels/conv3d_backward_gemm");
  const int64_t K = g.cols_rows();
  const int64_t P = g.cols_cols();
  thread_local ScratchBuffer<float> cols_scratch;
  thread_local ScratchBuffer<float> dcols_scratch;
  float* cols = cols_scratch.Resize(static_cast<size_t>(K * P));
  float* dcols =
      dx != nullptr ? dcols_scratch.Resize(static_cast<size_t>(K * P)) : nullptr;
  for (int64_t b = 0; b < g.batch; ++b) {
    const float* dyb = dy + b * g.out_sample_size();
    Im2col3d(g, x + b * g.in_sample_size(), cols);
    // dW[M×K] += dy_b[M×P] · cols_bᵀ[P×K]
    Sgemm(/*trans_a=*/false, /*trans_b=*/true, g.out_c, K, P, dyb, P,
          cols, P, dw, K, /*accumulate=*/true);
    if (dx != nullptr) {
      // dcols[K×P] = Wᵀ[K×M] · dy_b[M×P], then scatter back to dx_b.
      Sgemm(/*trans_a=*/true, /*trans_b=*/false, K, P, g.out_c, w, K, dyb, P,
            dcols, P, /*accumulate=*/false);
      Col2im3d(g, dcols, dx + b * g.in_sample_size());
    }
  }
}

}  // namespace hwp3d::kernels
