// im2col / col2im lowering for 3D convolution.
//
// A single sample x[N][Di][Hi][Wi] is lowered to the column matrix
// cols[K][P] with K = N·Kd·Kh·Kw rows and P = Do·Ho·Wo columns:
//   cols[((n·Kd + kd)·Kh + kh)·Kw + kw][ (od·Ho + oh)·Wo + ow ]
//     = x[n][od·Sd + kd − Pd][oh·Sh + kh − Ph][ow·Sw + kw − Pw]   (0 if padded)
//
// The row ordering is chosen so the paper's weight tensor
// W[M][N][Kd][Kh][Kw] flattens — with no repacking — to the row-major
// [M × K] matrix of  y = W · cols  (forward),  dW = dy · colsᵀ  and
// dcols = Wᵀ · dy  (backward via the transpose trick, scattered back by
// Col2im3d). All stride/padding combinations are supported; interior
// runs are copied contiguously and the padded border is zero-filled.
#pragma once

#include <cstdint>

namespace hwp3d::kernels {

// Static problem geometry of one Conv3d call.
struct Conv3dGeom {
  int64_t batch = 0;
  int64_t in_c = 0, out_c = 0;
  int64_t in_d = 0, in_h = 0, in_w = 0;
  int64_t k_d = 1, k_h = 1, k_w = 1;
  int64_t s_d = 1, s_h = 1, s_w = 1;
  int64_t p_d = 0, p_h = 0, p_w = 0;
  int64_t out_d = 0, out_h = 0, out_w = 0;

  int64_t cols_rows() const { return in_c * k_d * k_h * k_w; }   // K
  int64_t cols_cols() const { return out_d * out_h * out_w; }    // P
  int64_t in_sample_size() const { return in_c * in_d * in_h * in_w; }
  int64_t out_sample_size() const { return out_c * cols_cols(); }
};

// Fills cols[K × P] from one input sample; parallel over rows.
void Im2col3d(const Conv3dGeom& g, const float* x, float* cols);

// Scatter-adds cols[K × P] back into one (pre-zeroed or accumulating)
// input-gradient sample dx[N][Di][Hi][Wi]; parallel over channels.
void Col2im3d(const Conv3dGeom& g, const float* cols, float* dx);

}  // namespace hwp3d::kernels
