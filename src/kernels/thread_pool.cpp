#include "kernels/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/logging.h"
#include "obs/metrics.h"

namespace hwp3d {
namespace {

thread_local bool t_in_worker = false;

int PoolSizeFromEnv() {
  int threads = 0;
  if (const char* env = std::getenv("HWP_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      threads = static_cast<int>(std::min<long>(v, 256));
    } else {
      HWP_LOG(Warning) << "ignoring invalid HWP_THREADS value \"" << env
                       << "\" (want an integer >= 1)";
    }
  }
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  return threads;
}

}  // namespace

// One parallel-for region. Lives on the dispatching thread's stack;
// `next` is the shared chunk cursor every participant claims from.
struct ThreadPool::Region {
  void (*invoke)(void*, int64_t) = nullptr;
  void* ctx = nullptr;
  std::atomic<int64_t> next{0};
  int64_t end = 0;
  int64_t chunk = 1;
  int active = 0;              // workers inside Drain; guarded by mu_
  std::exception_ptr error;    // first body exception; guarded by mu_
};

ThreadPool& ThreadPool::Get() {
  static ThreadPool pool(PoolSizeFromEnv());
  return pool;
}

ThreadPool::ThreadPool(int threads) : threads_(std::max(threads, 1)) {
  obs::MetricsRegistry::Get().GetGauge("kernels.pool.threads")
      .Set(static_cast<double>(threads_));
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int w = 0; w < threads_ - 1; ++w) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::Dispatch(void (*invoke)(void*, int64_t), void* ctx,
                          int64_t begin, int64_t end) {
  static obs::Counter& regions =
      obs::MetricsRegistry::Get().GetCounter("kernels.pool.regions");
  regions.Add(1);

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  Region region;
  region.invoke = invoke;
  region.ctx = ctx;
  region.next.store(begin, std::memory_order_relaxed);
  region.end = end;
  // ~4 chunks per participant: coarse enough to amortize the cursor,
  // fine enough that an early-finishing participant still finds work.
  region.chunk =
      std::max<int64_t>(1, (end - begin) / (static_cast<int64_t>(threads_) * 4));
  {
    std::lock_guard<std::mutex> lk(mu_);
    current_ = &region;
    ++epoch_;
  }
  wake_cv_.notify_all();

  Drain(region);  // the caller is a participant too

  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [&] { return region.active == 0; });
  current_ = nullptr;  // late-waking workers must not touch the dead region
  if (region.error) {
    std::exception_ptr err = region.error;
    lk.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::Drain(Region& region) {
  const bool was_worker = t_in_worker;
  t_in_worker = true;  // nested For() calls from the body run inline
  std::exception_ptr err;
  for (;;) {
    const int64_t lo =
        region.next.fetch_add(region.chunk, std::memory_order_relaxed);
    if (lo >= region.end) break;
    const int64_t hi = std::min(region.end, lo + region.chunk);
    try {
      for (int64_t i = lo; i < hi; ++i) region.invoke(region.ctx, i);
    } catch (...) {
      err = std::current_exception();
      // Cancel the unclaimed chunks; in-flight ones finish normally.
      region.next.store(region.end, std::memory_order_relaxed);
      break;
    }
  }
  t_in_worker = was_worker;
  if (err) {
    std::lock_guard<std::mutex> lk(mu_);
    if (!region.error) region.error = err;
  }
}

void ThreadPool::WorkerMain() {
  t_in_worker = true;
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    wake_cv_.wait(lk, [&] {
      return stop_ || (current_ != nullptr && epoch_ != seen_epoch);
    });
    if (stop_) return;
    seen_epoch = epoch_;
    Region* region = current_;
    ++region->active;
    lk.unlock();
    Drain(*region);
    lk.lock();
    if (--region->active == 0) done_cv_.notify_all();
  }
}

}  // namespace hwp3d
