#include "kernels/sgemm.h"

#include <algorithm>
#include <cstring>

#include "kernels/scratch.h"
#include "kernels/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwp3d::kernels {
namespace {

inline float OpElem(const float* a, int64_t lda, bool trans, int64_t r,
                    int64_t c) {
  return trans ? a[c * lda + r] : a[r * lda + c];
}

// Packs op(A)[ic:ic+mc, pc:pc+kc] into kMR-row micro-panels, each
// panel kc×kMR with the row index fastest, zero-padded to kMR rows.
void PackA(const float* a, int64_t lda, bool trans, int64_t ic, int64_t pc,
           int64_t mc, int64_t kc, float* ap) {
  for (int64_t i0 = 0; i0 < mc; i0 += kMR) {
    const int64_t mr = std::min(kMR, mc - i0);
    for (int64_t p = 0; p < kc; ++p) {
      float* dst = ap + p * kMR;
      for (int64_t i = 0; i < mr; ++i) {
        dst[i] = OpElem(a, lda, trans, ic + i0 + i, pc + p);
      }
      for (int64_t i = mr; i < kMR; ++i) dst[i] = 0.0f;
    }
    ap += kc * kMR;
  }
}

// Packs op(B)[pc:pc+kc, jc:jc+nc] into kNR-column micro-panels, each
// panel kc×kNR with the column index fastest, zero-padded to kNR.
void PackB(const float* b, int64_t ldb, bool trans, int64_t pc, int64_t jc,
           int64_t kc, int64_t nc, float* bp) {
  for (int64_t j0 = 0; j0 < nc; j0 += kNR) {
    const int64_t nr = std::min(kNR, nc - j0);
    for (int64_t p = 0; p < kc; ++p) {
      float* dst = bp + p * kNR;
      if (!trans) {
        const float* src = b + (pc + p) * ldb + jc + j0;
        for (int64_t j = 0; j < nr; ++j) dst[j] = src[j];
      } else {
        for (int64_t j = 0; j < nr; ++j) {
          dst[j] = b[(jc + j0 + j) * ldb + pc + p];
        }
      }
      for (int64_t j = nr; j < kNR; ++j) dst[j] = 0.0f;
    }
    bp += kc * kNR;
  }
}

// C[mr×nr] += Ap · Bp over kc. The kMR×kNR float accumulator block
// stays in registers; the p-loop body is a rank-1 update with
// contiguous panel reads, which the compiler vectorizes.
void MicroKernel(int64_t kc, const float* ap, const float* bp, float* c,
                 int64_t ldc, int64_t mr, int64_t nr) {
  float acc[kMR][kNR] = {};
  for (int64_t p = 0; p < kc; ++p) {
    const float* av = ap + p * kMR;
    const float* bv = bp + p * kNR;
    for (int64_t i = 0; i < kMR; ++i) {
      const float ai = av[i];
      for (int64_t j = 0; j < kNR; ++j) acc[i][j] += ai * bv[j];
    }
  }
  if (mr == kMR && nr == kNR) {
    for (int64_t i = 0; i < kMR; ++i) {
      float* crow = c + i * ldc;
      for (int64_t j = 0; j < kNR; ++j) crow[j] += acc[i][j];
    }
  } else {
    for (int64_t i = 0; i < mr; ++i) {
      float* crow = c + i * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
}

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

void Sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
           const float* a, int64_t lda, const float* b, int64_t ldb,
           float* c, int64_t ldc, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (!accumulate) {
    for (int64_t i = 0; i < m; ++i) {
      std::memset(c + i * ldc, 0, sizeof(float) * static_cast<size_t>(n));
    }
  }
  if (k <= 0) return;

  static obs::Counter& calls =
      obs::MetricsRegistry::Get().GetCounter("kernels.gemm.calls");
  static obs::Counter& flops =
      obs::MetricsRegistry::Get().GetCounter("kernels.gemm.flops");
  static obs::Counter& pack_us_total =
      obs::MetricsRegistry::Get().GetCounter("kernels.gemm.pack_us");
  static obs::Counter& compute_us_total =
      obs::MetricsRegistry::Get().GetCounter("kernels.gemm.compute_us");
  static obs::Histogram& gflops_hist =
      obs::MetricsRegistry::Get().GetHistogram("kernels.gemm.gflops");

  obs::TraceScope span("kernels/sgemm");
  if (span.active()) {
    span.AddArg("m", m);
    span.AddArg("n", n);
    span.AddArg("k", k);
  }
  const double t_start = obs::NowUs();
  double pack_us = 0.0;

  thread_local ScratchBuffer<float> bpack;
  thread_local ScratchBuffer<float> apack;
  ThreadPool& pool = ThreadPool::Get();

  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    const int64_t njr = CeilDiv(nc, kNR);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      double t0 = obs::NowUs();
      float* bp = bpack.Resize(static_cast<size_t>(njr * kc * kNR));
      PackB(b, ldb, trans_b, pc, jc, kc, nc, bp);
      pack_us += obs::NowUs() - t0;
      for (int64_t ic = 0; ic < m; ic += kMC) {
        const int64_t mc = std::min(kMC, m - ic);
        t0 = obs::NowUs();
        float* ap =
            apack.Resize(static_cast<size_t>(CeilDiv(mc, kMR) * kc * kMR));
        PackA(a, lda, trans_a, ic, pc, mc, kc, ap);
        pack_us += obs::NowUs() - t0;
        // Column micro-panels fan out across the pool; each task owns a
        // disjoint nr-wide strip of C, and the pc blocks accumulate in
        // caller order, so the result is thread-count independent.
        pool.For(0, njr, [&, ap, bp](int64_t jr) {
          const int64_t j0 = jr * kNR;
          const int64_t nr = std::min(kNR, nc - j0);
          const float* bpanel = bp + jr * kc * kNR;
          for (int64_t i0 = 0; i0 < mc; i0 += kMR) {
            MicroKernel(kc, ap + (i0 / kMR) * kc * kMR, bpanel,
                        c + (ic + i0) * ldc + jc + j0, ldc,
                        std::min(kMR, mc - i0), nr);
          }
        });
      }
    }
  }

  const double total_us = obs::NowUs() - t_start;
  const int64_t flop = 2 * m * n * k;
  calls.Add(1);
  flops.Add(flop);
  pack_us_total.Add(static_cast<int64_t>(pack_us));
  compute_us_total.Add(static_cast<int64_t>(std::max(0.0, total_us - pack_us)));
  if (total_us > 0.0) {
    gflops_hist.Observe(static_cast<double>(flop) / (total_us * 1e3));
  }
  if (span.active()) {
    span.AddArg("gflops", total_us > 0.0
                              ? static_cast<double>(flop) / (total_us * 1e3)
                              : 0.0);
  }
}

}  // namespace hwp3d::kernels
