#include "kernels/engine.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

#include "common/logging.h"

namespace hwp3d::kernels {
namespace {

Engine EngineFromEnv() {
  if (const char* env = std::getenv("HWP_CONV_ENGINE")) {
    const std::string v(env);
    if (v == "naive") return Engine::kNaive;
    if (v == "gemm") return Engine::kGemm;
    HWP_LOG(Warning) << "ignoring invalid HWP_CONV_ENGINE value \"" << v
                     << "\" (want naive|gemm); using gemm";
  }
  return Engine::kGemm;
}

std::atomic<Engine>& Current() {
  static std::atomic<Engine> engine{EngineFromEnv()};
  return engine;
}

}  // namespace

Engine CurrentEngine() {
  return Current().load(std::memory_order_relaxed);
}

void SetEngine(Engine engine) {
  Current().store(engine, std::memory_order_relaxed);
}

const char* EngineName(Engine engine) {
  return engine == Engine::kNaive ? "naive" : "gemm";
}

}  // namespace hwp3d::kernels
