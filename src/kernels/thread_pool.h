// Persistent worker pool with chunked, self-scheduling parallel-for.
//
// One process-wide pool (`ThreadPool::Get()`, sized by HWP_THREADS or
// the hardware concurrency) owns every worker thread for the lifetime
// of the process: parallel regions are dispatched to the same
// long-lived workers instead of spawning `std::thread`s per call.
// Work is distributed work-stealing style by chunked self-scheduling —
// every participant (the N-1 workers plus the calling thread)
// repeatedly claims the next unclaimed chunk of the index range from a
// shared atomic cursor, so fast participants automatically take over
// the chunks slow ones never reached and no static partition can
// strand work.
//
// Guarantees:
//  * body(i) runs exactly once per index in [begin, end); For() returns
//    only after every invocation has finished.
//  * An exception thrown by the body cancels the unclaimed chunks and
//    the first captured exception is rethrown on the calling thread.
//  * Nested For() calls (from inside a body) run serially inline —
//    deadlock-free and deterministic.
//  * HWP_THREADS=1 (or a single-core machine, or `threads == 1`)
//    degrades to plain in-order serial execution, independent of the
//    scheduler.
//  * Workers are joinable and joined in the destructor; none are
//    detached (sanitizer-friendly shutdown).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace hwp3d {

class ThreadPool {
 public:
  // Process-wide pool. Sized by the HWP_THREADS environment variable
  // when set (clamped to [1, 256]), else std::thread::hardware_concurrency.
  static ThreadPool& Get();

  // Standalone pool with `threads` participants total (the constructor
  // spawns threads-1 workers; the thread calling For() is the last
  // participant). Intended for tests; production code uses Get().
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total participants (worker threads + the calling thread).
  int threads() const { return threads_; }

  // Invokes body(i) for every i in [begin, end). `threads == 1` forces
  // serial in-order execution; other positive values are a legacy hint
  // and are ignored (the pool size is fixed at construction).
  template <typename Body>
  void For(int64_t begin, int64_t end, Body&& body, int threads = 0) {
    const int64_t n = end - begin;
    if (n <= 0) return;
    if (threads_ == 1 || threads == 1 || n == 1 || InWorker()) {
      for (int64_t i = begin; i < end; ++i) body(i);
      return;
    }
    using B = std::remove_reference_t<Body>;
    Dispatch(
        [](void* ctx, int64_t i) { (*static_cast<B*>(ctx))(i); },
        const_cast<std::remove_const_t<B>*>(&body), begin, end);
  }

 private:
  struct Region;

  // True on pool worker threads and while the calling thread is inside
  // a parallel region (used to serialize nested submissions).
  static bool InWorker();

  void Dispatch(void (*invoke)(void*, int64_t), void* ctx, int64_t begin,
                int64_t end);
  void Drain(Region& region);
  void WorkerMain();

  int threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex submit_mu_;  // serializes concurrent top-level For() calls

  std::mutex mu_;  // guards current_/epoch_/stop_ and Region bookkeeping
  std::condition_variable wake_cv_;  // workers wait for a new region
  std::condition_variable done_cv_;  // caller waits for region completion
  Region* current_ = nullptr;
  uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace hwp3d
