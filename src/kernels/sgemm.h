// Cache-blocked single-precision GEMM.
//
// Row-major  C[m×n] (+)= op(A)[m×k] · op(B)[k×n]  with optional
// transposes, organized BLIS-style: the k dimension is split into KC
// blocks, op(B) panels (KC×NR) and op(A) panels (MC×KC in MR-row
// micro-panels) are packed into contiguous, zero-padded scratch so the
// MR×NR micro-kernel runs branch-free contiguous inner loops the
// compiler auto-vectorizes. Column micro-panels of one (MC, KC, NC)
// block are distributed over the persistent ThreadPool; every C tile is
// written by exactly one task and the KC blocks accumulate in a fixed
// order, so results are bitwise identical for any thread count.
#pragma once

#include <cstdint>

namespace hwp3d::kernels {

// Micro-tile: kMR×kNR float accumulators live in registers.
inline constexpr int64_t kMR = 6;
inline constexpr int64_t kNR = 16;
// Cache blocking: the KC×NR B panel targets L1, the MC×KC packed A
// block L2, the KC×NC packed B block the last-level cache.
inline constexpr int64_t kMC = 96;   // multiple of kMR
inline constexpr int64_t kKC = 256;
inline constexpr int64_t kNC = 1024; // multiple of kNR

// C[m×n] (+)= op(A)[m×k] · op(B)[k×n]; op transposes when trans_* is
// set. lda/ldb are the leading dimensions of the *stored* (untransposed)
// matrices. accumulate=false overwrites C, true adds into it.
void Sgemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
           const float* a, int64_t lda, const float* b, int64_t ldb,
           float* c, int64_t ldc, bool accumulate);

}  // namespace hwp3d::kernels
