// Conv/linear compute-engine selection.
//
// Two engines implement every dense layer contraction:
//   kNaive — the original 7-deep scalar loops with double accumulators.
//            Slow, but trivially auditable: it is the bit-exactness
//            reference the gemm engine is parity-tested against.
//   kGemm  — im2col lowering + cache-blocked packed sgemm on the
//            persistent thread pool (src/kernels). The default.
//
// The process-wide default comes from HWP_CONV_ENGINE=naive|gemm
// (default gemm); tests and benches override it with SetEngine.
#pragma once

namespace hwp3d::kernels {

enum class Engine { kNaive, kGemm };

// Currently selected engine (HWP_CONV_ENGINE on first call, unless a
// SetEngine override happened earlier).
Engine CurrentEngine();

// Process-wide override, e.g. for parity tests and A/B benchmarks.
void SetEngine(Engine engine);

const char* EngineName(Engine engine);

}  // namespace hwp3d::kernels
