// Reusable thread-local scratch buffers for kernel lowering.
//
// The GEMM conv engine and the fast-path executor need per-call scratch
// (im2col columns, packed GEMM panels, accumulator tiles). Allocating
// them per call would put a malloc/free pair on every hot-path
// invocation; instead each thread keeps one ScratchBuffer per use site
// (declared `thread_local`), which grows geometrically and is then
// reused for the lifetime of the thread.
//
// Every byte held by live scratch buffers is accounted in a
// process-wide total, exported as the `kernels.scratch_bytes` gauge so
// the steady-state scratch footprint is visible next to the kernels.*
// throughput counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hwp3d::kernels {

// Current bytes held across all live scratch buffers in the process.
int64_t ScratchBytesInUse();

namespace detail {
// Adjusts the process-wide total and refreshes the gauge. `sync_gauge`
// is false on the thread-exit path, where the metrics registry may be
// mid-teardown; the atomic total alone is always safe to update.
void AccountScratch(int64_t delta_bytes, bool sync_gauge);
}  // namespace detail

// One reusable, geometrically-growing buffer. Intended use:
//
//   thread_local ScratchBuffer<float> cols;
//   float* p = cols.Resize(K * P);   // valid until the next Resize
//
// Resize never shrinks; contents are unspecified after Resize (callers
// overwrite). T must be trivially destructible.
template <typename T>
class ScratchBuffer {
 public:
  ScratchBuffer() = default;
  ~ScratchBuffer() {
    detail::AccountScratch(
        -static_cast<int64_t>(v_.capacity() * sizeof(T)),
        /*sync_gauge=*/false);
  }
  ScratchBuffer(const ScratchBuffer&) = delete;
  ScratchBuffer& operator=(const ScratchBuffer&) = delete;

  T* Resize(size_t n) {
    if (n > v_.size()) {
      const size_t old_cap = v_.capacity();
      size_t grown = v_.size() * 2;
      if (grown < n) grown = n;
      v_.resize(grown);
      const size_t new_cap = v_.capacity();
      if (new_cap != old_cap) {
        detail::AccountScratch(
            static_cast<int64_t>((new_cap - old_cap) * sizeof(T)),
            /*sync_gauge=*/true);
      }
    }
    return v_.data();
  }

  size_t capacity_bytes() const { return v_.capacity() * sizeof(T); }

 private:
  std::vector<T> v_;
};

}  // namespace hwp3d::kernels
