#include "kernels/scratch.h"

#include <atomic>

#include "obs/metrics.h"

namespace hwp3d::kernels {

namespace {
std::atomic<int64_t>& Total() {
  static std::atomic<int64_t> total{0};
  return total;
}
}  // namespace

int64_t ScratchBytesInUse() {
  return Total().load(std::memory_order_relaxed);
}

namespace detail {

void AccountScratch(int64_t delta_bytes, bool sync_gauge) {
  const int64_t now =
      Total().fetch_add(delta_bytes, std::memory_order_relaxed) + delta_bytes;
  if (sync_gauge) {
    static obs::Gauge& gauge =
        obs::MetricsRegistry::Get().GetGauge("kernels.scratch_bytes");
    gauge.Set(static_cast<double>(now));
  }
}

}  // namespace detail

}  // namespace hwp3d::kernels
