#include "kernels/im2col.h"

#include <algorithm>
#include <cstring>

#include "kernels/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwp3d::kernels {
namespace {

// Valid output range [lo, hi) along one axis: the ow with
// 0 <= ow·s + shift < extent, clamped to [0, out).
inline void ValidRange(int64_t out, int64_t s, int64_t shift, int64_t extent,
                       int64_t* lo, int64_t* hi) {
  *lo = shift < 0 ? (-shift + s - 1) / s : 0;
  *hi = extent > shift ? (extent - shift + s - 1) / s : 0;
  *lo = std::min(*lo, out);
  *hi = std::clamp(*hi, *lo, out);
}

}  // namespace

void Im2col3d(const Conv3dGeom& g, const float* x, float* cols) {
  HWP_TRACE_SCOPE("kernels/im2col");
  static obs::Counter& us_total =
      obs::MetricsRegistry::Get().GetCounter("kernels.im2col.us");
  const double t0 = obs::NowUs();

  const int64_t K = g.cols_rows();
  const int64_t P = g.cols_cols();
  const int64_t khw = g.k_h * g.k_w;
  const int64_t kdhw = g.k_d * khw;
  ThreadPool::Get().For(0, K, [&](int64_t r) {
    const int64_t n = r / kdhw;
    const int64_t kd = (r / khw) % g.k_d;
    const int64_t kh = (r / g.k_w) % g.k_h;
    const int64_t kw = r % g.k_w;
    const int64_t sd = kd - g.p_d, sh = kh - g.p_h, sw = kw - g.p_w;
    int64_t ow_lo, ow_hi;
    ValidRange(g.out_w, g.s_w, sw, g.in_w, &ow_lo, &ow_hi);

    float* dst = cols + r * P;
    const float* src_n = x + n * g.in_d * g.in_h * g.in_w;
    for (int64_t od = 0; od < g.out_d; ++od) {
      const int64_t id = od * g.s_d + sd;
      if (id < 0 || id >= g.in_d) {
        std::memset(dst, 0, sizeof(float) * static_cast<size_t>(g.out_h * g.out_w));
        dst += g.out_h * g.out_w;
        continue;
      }
      for (int64_t oh = 0; oh < g.out_h; ++oh) {
        const int64_t ih = oh * g.s_h + sh;
        if (ih < 0 || ih >= g.in_h) {
          std::memset(dst, 0, sizeof(float) * static_cast<size_t>(g.out_w));
          dst += g.out_w;
          continue;
        }
        const float* row = src_n + (id * g.in_h + ih) * g.in_w + sw;
        for (int64_t ow = 0; ow < ow_lo; ++ow) dst[ow] = 0.0f;
        if (g.s_w == 1) {
          if (ow_hi > ow_lo) {
            std::memcpy(dst + ow_lo, row + ow_lo,
                        sizeof(float) * static_cast<size_t>(ow_hi - ow_lo));
          }
        } else {
          for (int64_t ow = ow_lo; ow < ow_hi; ++ow) dst[ow] = row[ow * g.s_w];
        }
        for (int64_t ow = ow_hi; ow < g.out_w; ++ow) dst[ow] = 0.0f;
        dst += g.out_w;
      }
    }
  });

  us_total.Add(static_cast<int64_t>(obs::NowUs() - t0));
}

void Col2im3d(const Conv3dGeom& g, const float* cols, float* dx) {
  HWP_TRACE_SCOPE("kernels/col2im");
  static obs::Counter& us_total =
      obs::MetricsRegistry::Get().GetCounter("kernels.col2im.us");
  const double t0 = obs::NowUs();

  const int64_t P = g.cols_cols();
  // Each channel n owns a disjoint slice of dx, so the scatter-add is
  // race-free when parallelized over channels.
  ThreadPool::Get().For(0, g.in_c, [&](int64_t n) {
    float* dx_n = dx + n * g.in_d * g.in_h * g.in_w;
    for (int64_t kd = 0; kd < g.k_d; ++kd) {
      for (int64_t kh = 0; kh < g.k_h; ++kh) {
        for (int64_t kw = 0; kw < g.k_w; ++kw) {
          const int64_t r = ((n * g.k_d + kd) * g.k_h + kh) * g.k_w + kw;
          const float* src = cols + r * P;
          const int64_t sd = kd - g.p_d, sh = kh - g.p_h, sw = kw - g.p_w;
          int64_t ow_lo, ow_hi;
          ValidRange(g.out_w, g.s_w, sw, g.in_w, &ow_lo, &ow_hi);
          for (int64_t od = 0; od < g.out_d; ++od) {
            const int64_t id = od * g.s_d + sd;
            if (id < 0 || id >= g.in_d) continue;
            for (int64_t oh = 0; oh < g.out_h; ++oh) {
              const int64_t ih = oh * g.s_h + sh;
              if (ih < 0 || ih >= g.in_h) continue;
              float* drow = dx_n + (id * g.in_h + ih) * g.in_w + sw;
              const float* srow = src + (od * g.out_h + oh) * g.out_w;
              for (int64_t ow = ow_lo; ow < ow_hi; ++ow) {
                drow[ow * g.s_w] += srow[ow];
              }
            }
          }
        }
      }
    }
  });

  us_total.Add(static_cast<int64_t>(obs::NowUs() - t0));
}

}  // namespace hwp3d::kernels
