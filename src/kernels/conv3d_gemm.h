// GEMM-lowered Conv3d forward/backward (the HWP_CONV_ENGINE=gemm path).
//
// Per sample:  forward   y = W·im2col(x)            [M×K]·[K×P]
//              weight    dW += dy·im2col(x)ᵀ        [M×P]·[P×K]
//              input     dx = col2im(Wᵀ·dy)         [K×M]·[M×P]
// with K = N·Kd·Kh·Kw and P = Do·Ho·Wo. The paper's W[M][N][Kd][Kh][Kw]
// layout flattens to the [M×K] GEMM operand with no repacking, so the
// same weight tensor feeds the pruning core, the FPGA simulator, and
// this engine. Parity with the naive reference loops is asserted by
// tests/conv_engine_parity_test.cpp.
#pragma once

#include "kernels/im2col.h"

namespace hwp3d::kernels {

// y[B][M][Do][Ho][Wo] = conv(x, w) (+ bias if non-null). Overwrites y.
void Conv3dForwardGemm(const Conv3dGeom& g, const float* x, const float* w,
                       const float* bias, float* y);

// Accumulates dw[M][K] (+=) and scatter-adds dx (caller zero-fills dx
// beforehand) from dy[B][M][Do][Ho][Wo]. Pass dx == nullptr to skip the
// input-gradient computation.
void Conv3dBackwardGemm(const Conv3dGeom& g, const float* x, const float* w,
                        const float* dy, float* dw, float* dx);

}  // namespace hwp3d::kernels
