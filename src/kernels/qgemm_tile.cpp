#include "kernels/qgemm_tile.h"

namespace hwp3d::kernels {

void QOuterMacRow(FixedAccum* acc, int64_t acc_stride, const Fixed16* w_col,
                  int64_t tm_n, const Fixed16* in, int64_t in_stride,
                  int64_t n) {
  if (in_stride == 1) {
    // Contiguous input row (column stride 1, the common case): the
    // c-loop is a scalar×row widening MAC the compiler vectorizes.
    for (int64_t tm = 0; tm < tm_n; ++tm) {
      const Fixed16 w = w_col[tm];
      FixedAccum* a = acc + tm * acc_stride;
      for (int64_t c = 0; c < n; ++c) a[c].MulAdd(w, in[c]);
    }
  } else {
    for (int64_t tm = 0; tm < tm_n; ++tm) {
      const Fixed16 w = w_col[tm];
      FixedAccum* a = acc + tm * acc_stride;
      for (int64_t c = 0; c < n; ++c) a[c].MulAdd(w, in[c * in_stride]);
    }
  }
}

void QPostProcessRow(const FixedAccum* acc, int64_t n, bool has_affine,
                     Fixed16 scale, Fixed16 shift, const Fixed16* shortcut,
                     bool relu, Fixed16* out) {
  const Fixed16 zero;
  for (int64_t c = 0; c < n; ++c) {
    Fixed16 v = acc[c].ToFixed16();
    if (has_affine) v = v * scale + shift;
    if (shortcut != nullptr) v = v + shortcut[c];
    if (relu && v < zero) v = zero;
    out[c] = v;
  }
}

}  // namespace hwp3d::kernels
