// Vectorizable Q7.8 fixed-point micro-kernels for the fast-path
// compiled executor (fpga::PackedConvLayer).
//
// The accelerator simulator accumulates int16 Q7.8 products in a wide
// DSP48-style accumulator (hwp3d::FixedAccum, an int64) and narrows to
// Q7.8 exactly once per output element. Because the int64 accumulation
// of int16×int16 products is exact — each product fits in 32 bits and
// the sum cannot overflow 64 — the result is independent of
// accumulation order, so these kernels are free to reorder the loops
// for locality and SIMD while staying bitwise identical to
// TiledConvSim's per-element arithmetic.
//
// The workhorse is an outer-product row update: one packed weight
// column (the Tm values of a (tm, tn, kd, kr, kc) slot) times one input
// row strip, accumulated into a [tm][c] accumulator tile that stays in
// cache across the whole surviving-tile list of an output-channel
// block. The inner c-loop is a scalar-times-row multiply-accumulate
// over contiguous (stride 1) or strided input, which compilers
// auto-vectorize to widening 16→32-bit multiplies feeding 64-bit adds
// (see the release-native preset for -march=native builds).
#pragma once

#include <cstdint>

#include "fixed/fixed_point.h"

namespace hwp3d::kernels {

// acc[tm * acc_stride + c] += w_col[tm] * in[c * in_stride]
// for tm in [0, tm_n), c in [0, n). `w_col` is one packed weight
// column ([tm] fastest, see PackedConvLayer's tile layout); `in` is one
// input feature row sampled at the layer's column stride.
void QOuterMacRow(FixedAccum* acc, int64_t acc_stride, const Fixed16* w_col,
                  int64_t tm_n, const Fixed16* in, int64_t in_stride,
                  int64_t n);

// Narrows and post-processes one accumulator row into the output:
//   v = narrow(acc[c]); if affine: v = v*scale + shift;
//   if shortcut: v = v + shortcut[c]; if relu: v = max(v, 0)
// in exactly the order and Q7.8 saturating arithmetic of the
// simulator's post-processing unit. `shortcut` may be null.
void QPostProcessRow(const FixedAccum* acc, int64_t n, bool has_affine,
                     Fixed16 scale, Fixed16 shift, const Fixed16* shortcut,
                     bool relu, Fixed16* out);

}  // namespace hwp3d::kernels
