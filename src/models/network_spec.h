// Analytic layer-by-layer network descriptions.
//
// A NetworkSpec captures exactly what the paper's evaluation needs from a
// network: every CONV layer's 5-D weight geometry W[M][N][Kd][Kr][Kc],
// strides, and *output* feature-map extents (D, R, C), grouped by the
// residual stage names of Table I. From this we derive parameter counts
// and operation counts (Table II), and the FPGA performance/resource
// models map each layer onto the tiled accelerator (Tables III & IV).
//
// The full-size specs are analytic only — no trained weights exist for
// them in this repo; the trainable counterpart is models/tiny_r2plus1d.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hwp3d::models {

// One convolutional layer, as the accelerator sees it.
struct ConvLayerSpec {
  std::string name;   // e.g. "conv2_1a_spatial"
  std::string group;  // Table I grouping: conv1, conv2_x, ... conv5_x
  int64_t M = 0;      // output channels
  int64_t N = 0;      // input channels
  int64_t Kd = 1, Kr = 1, Kc = 1;  // kernel extents (temporal, height, width)
  int64_t Sd = 1, Sr = 1, Sc = 1;  // strides
  int64_t D = 0, R = 0, C = 0;     // OUTPUT feature-map extents
  // Target blockwise pruning ratio eta_i in [0,1); 0 means unpruned.
  double eta = 0.0;
  // Layers with a post-op handled by the post-processing unit.
  bool has_bn = true;
  bool has_relu = true;
  bool has_shortcut_add = false;

  int64_t params() const { return M * N * Kd * Kr * Kc; }
  // Multiply-accumulate count for one inference.
  double macs() const {
    return static_cast<double>(params()) * static_cast<double>(D * R * C);
  }
  // Operations counted as 2 ops per MAC (multiply + add), the convention
  // of the paper's Table II.
  double ops() const { return 2.0 * macs(); }
  // Input feature-map extents implied by output extents and stride/kernel
  // (valid-padding accelerator view: I = (O-1)*S + K).
  int64_t in_d() const { return (D - 1) * Sd + Kd; }
  int64_t in_r() const { return (R - 1) * Sr + Kr; }
  int64_t in_c() const { return (C - 1) * Sc + Kc; }
};

struct NetworkSpec {
  std::string name;
  // Input clip: channels x frames x height x width.
  int64_t in_channels = 3;
  int64_t in_frames = 16;
  int64_t in_height = 112;
  int64_t in_width = 112;
  int64_t num_classes = 101;
  std::vector<ConvLayerSpec> layers;

  double TotalParams() const;
  double TotalMacs() const;
  double TotalOps() const;
  // Sum of params/ops over layers whose group matches.
  double GroupParams(const std::string& group) const;
  double GroupOps(const std::string& group) const;
  std::vector<std::string> Groups() const;  // in first-appearance order
};

// Full-size R(2+1)D of Table I: 16x112x112 input, 5 stages, mid-channel
// counts from the parameter-matching formula (144/230/288/460/576/921/
// 1152 as printed in Table I). Stage shortcuts are modeled as a single
// 1x1x1 strided convolution (this matches the paper's per-stage parameter
// totals; see DESIGN.md).
NetworkSpec MakeR2Plus1DSpec();

// Standard C3D (Tran et al.; FPGA baseline of [13]): eight 3x3x3 CONV
// layers with interleaved max-pooling, 16x112x112 input.
NetworkSpec MakeC3DSpec();

// Applies the paper's pruning targets: eta = 0.90 for conv2_x layers and
// eta = 0.80 for conv3_x layers (pruning rates 10x and 5x).
void ApplyPaperPruningTargets(NetworkSpec& spec);

}  // namespace hwp3d::models
