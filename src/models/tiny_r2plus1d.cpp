#include "models/tiny_r2plus1d.h"

namespace hwp3d::models {

TinyR2Plus1d::TinyR2Plus1d(TinyR2Plus1dConfig cfg, Rng& rng) : cfg_(cfg) {
  nn::Conv2Plus1dConfig stem;
  stem.in_channels = cfg.in_channels;
  stem.out_channels = cfg.stem_channels;
  stem.spatial_kernel = 3;
  stem.temporal_kernel = 3;
  // Fix the stem's mid width explicitly; the parameter-matching formula
  // degenerates for single-channel input.
  stem.mid_channels = cfg.stem_channels;
  stem_ = std::make_unique<nn::Conv2Plus1d>(stem, rng, "stem");
  stem_bn_ = std::make_unique<nn::BatchNorm3d>(cfg.stem_channels, "stem_bn");
  stem_relu_ = std::make_unique<nn::ReLU>("stem_relu");

  nn::ResidualBlockConfig s1;
  s1.in_channels = cfg.stem_channels;
  s1.out_channels = cfg.stage1_channels;
  s1.spatial_stride = 1;
  s1.temporal_stride = 1;
  stage1_ = std::make_unique<nn::ResidualBlock>(s1, rng, "stage1");

  nn::ResidualBlockConfig s2;
  s2.in_channels = cfg.stage1_channels;
  s2.out_channels = cfg.stage2_channels;
  s2.spatial_stride = 2;
  s2.temporal_stride = 2;
  stage2_ = std::make_unique<nn::ResidualBlock>(s2, rng, "stage2");

  gap_ = std::make_unique<nn::GlobalAvgPool3d>("gap");
  fc_ = std::make_unique<nn::Linear>(cfg.stage2_channels, cfg.num_classes,
                                     rng, "fc");
}

TensorF TinyR2Plus1d::Forward(const TensorF& x, bool train) {
  TensorF h = stem_->Forward(x, train);
  h = stem_bn_->Forward(h, train);
  h = stem_relu_->Forward(h, train);
  h = stage1_->Forward(h, train);
  h = stage2_->Forward(h, train);
  h = gap_->Forward(h, train);
  return fc_->Forward(h, train);
}

TensorF TinyR2Plus1d::Backward(const TensorF& dy) {
  TensorF g = fc_->Backward(dy);
  g = gap_->Backward(g);
  g = stage2_->Backward(g);
  g = stage1_->Backward(g);
  g = stem_relu_->Backward(g);
  g = stem_bn_->Backward(g);
  return stem_->Backward(g);
}

void TinyR2Plus1d::CollectParams(std::vector<nn::Param*>& out) {
  stem_->CollectParams(out);
  stem_bn_->CollectParams(out);
  stage1_->CollectParams(out);
  stage2_->CollectParams(out);
  fc_->CollectParams(out);
}

void TinyR2Plus1d::CollectBuffers(std::vector<nn::NamedBuffer>& out) {
  stem_->CollectBuffers(out);
  stem_bn_->CollectBuffers(out);
  stage1_->CollectBuffers(out);
  stage2_->CollectBuffers(out);
  fc_->CollectBuffers(out);
}

std::vector<nn::Conv3d*> TinyR2Plus1d::PrunableConvs() {
  return {
      &stage1_->conv1().spatial(), &stage1_->conv1().temporal(),
      &stage1_->conv2().spatial(), &stage1_->conv2().temporal(),
      &stage2_->conv1().spatial(), &stage2_->conv1().temporal(),
      &stage2_->conv2().spatial(), &stage2_->conv2().temporal(),
  };
}

}  // namespace hwp3d::models
