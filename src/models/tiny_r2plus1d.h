// Trainable scaled-down R(2+1)D for the accuracy experiments.
//
// The full Table I network (33M parameters, Kinetics pretraining) is not
// trainable in this repo's offline environment, so the accuracy claims of
// Section V are reproduced on this faithful miniature: same topology
// family (factorized (2+1)D convs, BN, residual stages with projection
// shortcuts, global average pooling + FC head), trained on the synthetic
// motion dataset. The prunable layers are exposed so the ADMM pruner can
// target the middle residual stages, mirroring the paper's choice of
// pruning conv2_x and conv3_x.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/pool3d.h"
#include "nn/r2plus1d_block.h"

namespace hwp3d::models {

struct TinyR2Plus1dConfig {
  int64_t in_channels = 1;
  int64_t num_classes = 10;
  int64_t stem_channels = 8;
  int64_t stage1_channels = 16;
  int64_t stage2_channels = 32;
};

class TinyR2Plus1d : public nn::Module {
 public:
  TinyR2Plus1d(TinyR2Plus1dConfig cfg, Rng& rng);

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  void CollectParams(std::vector<nn::Param*>& out) override;
  void CollectBuffers(std::vector<nn::NamedBuffer>& out) override;
  std::string name() const override { return "tiny_r2plus1d"; }

  // Convolutions targeted by pruning (the two residual stages), i.e. the
  // analogue of the paper pruning conv2_x/conv3_x but not the stem.
  std::vector<nn::Conv3d*> PrunableConvs();

  // Structural access for mapping the trained model onto the FPGA
  // accelerator simulator (BN folding, residual wiring).
  nn::Conv2Plus1d& stem() { return *stem_; }
  nn::BatchNorm3d& stem_bn() { return *stem_bn_; }
  nn::ResidualBlock& stage1() { return *stage1_; }
  nn::ResidualBlock& stage2() { return *stage2_; }
  nn::Linear& fc() { return *fc_; }

  const TinyR2Plus1dConfig& config() const { return cfg_; }

 private:
  TinyR2Plus1dConfig cfg_;
  std::unique_ptr<nn::Conv2Plus1d> stem_;
  std::unique_ptr<nn::BatchNorm3d> stem_bn_;
  std::unique_ptr<nn::ReLU> stem_relu_;
  std::unique_ptr<nn::ResidualBlock> stage1_;
  std::unique_ptr<nn::ResidualBlock> stage2_;
  std::unique_ptr<nn::GlobalAvgPool3d> gap_;
  std::unique_ptr<nn::Linear> fc_;
};

}  // namespace hwp3d::models
