#include "models/network_spec.h"

#include <algorithm>

#include "common/error.h"

namespace hwp3d::models {

double NetworkSpec::TotalParams() const {
  double s = 0.0;
  for (const auto& l : layers) s += static_cast<double>(l.params());
  return s;
}

double NetworkSpec::TotalMacs() const {
  double s = 0.0;
  for (const auto& l : layers) s += l.macs();
  return s;
}

double NetworkSpec::TotalOps() const {
  double s = 0.0;
  for (const auto& l : layers) s += l.ops();
  return s;
}

double NetworkSpec::GroupParams(const std::string& group) const {
  double s = 0.0;
  for (const auto& l : layers)
    if (l.group == group) s += static_cast<double>(l.params());
  return s;
}

double NetworkSpec::GroupOps(const std::string& group) const {
  double s = 0.0;
  for (const auto& l : layers)
    if (l.group == group) s += l.ops();
  return s;
}

std::vector<std::string> NetworkSpec::Groups() const {
  std::vector<std::string> out;
  for (const auto& l : layers) {
    if (std::find(out.begin(), out.end(), l.group) == out.end()) {
      out.push_back(l.group);
    }
  }
  return out;
}

namespace {

// Appends the factorized (2+1)D pair: spatial 1xkxk conv into `mid`
// channels (carrying the spatial stride), then temporal tx1x1 conv
// (carrying the temporal stride). `out_*` are the extents AFTER both.
void AddConv2Plus1d(NetworkSpec& spec, const std::string& name,
                    const std::string& group, int64_t in_ch, int64_t mid,
                    int64_t out_ch, int64_t out_d, int64_t out_hw,
                    int64_t spatial_stride, int64_t temporal_stride,
                    int64_t spatial_k = 3, int64_t temporal_k = 3,
                    bool shortcut_add_on_temporal = false) {
  // The spatial conv runs at the un-decimated temporal depth.
  const int64_t mid_d = out_d * temporal_stride;
  ConvLayerSpec sp;
  sp.name = name + "_spatial";
  sp.group = group;
  sp.M = mid;
  sp.N = in_ch;
  sp.Kd = 1;
  sp.Kr = sp.Kc = spatial_k;
  sp.Sd = 1;
  sp.Sr = sp.Sc = spatial_stride;
  sp.D = mid_d;
  sp.R = sp.C = out_hw;
  spec.layers.push_back(sp);

  ConvLayerSpec tp;
  tp.name = name + "_temporal";
  tp.group = group;
  tp.M = out_ch;
  tp.N = mid;
  tp.Kd = temporal_k;
  tp.Kr = tp.Kc = 1;
  tp.Sd = temporal_stride;
  tp.Sr = tp.Sc = 1;
  tp.D = out_d;
  tp.R = tp.C = out_hw;
  tp.has_shortcut_add = shortcut_add_on_temporal;
  spec.layers.push_back(tp);
}

// Appends one residual stage of Table I: two residual blocks, each with
// two (2+1)D convs; the first block of a down-sampling stage strides and
// projects the shortcut with a 1x1x1 convolution.
void AddResidualStage(NetworkSpec& spec, const std::string& group,
                      int64_t in_ch, int64_t out_ch, int64_t mid_first,
                      int64_t mid_rest, int64_t out_d, int64_t out_hw,
                      bool downsample) {
  const int64_t stride = downsample ? 2 : 1;
  // Block 1.
  AddConv2Plus1d(spec, group + "_1a", group, in_ch, mid_first, out_ch, out_d,
                 out_hw, stride, stride);
  AddConv2Plus1d(spec, group + "_1b", group, out_ch, mid_rest, out_ch, out_d,
                 out_hw, 1, 1, 3, 3, /*shortcut_add_on_temporal=*/true);
  if (downsample || in_ch != out_ch) {
    ConvLayerSpec sc;
    sc.name = group + "_shortcut";
    sc.group = group;
    sc.M = out_ch;
    sc.N = in_ch;
    sc.Kd = sc.Kr = sc.Kc = 1;
    sc.Sd = sc.Sr = sc.Sc = stride;
    sc.D = out_d;
    sc.R = sc.C = out_hw;
    sc.has_relu = false;
    spec.layers.push_back(sc);
  }
  // Block 2 (identity shortcut).
  AddConv2Plus1d(spec, group + "_2a", group, out_ch, mid_rest, out_ch, out_d,
                 out_hw, 1, 1);
  AddConv2Plus1d(spec, group + "_2b", group, out_ch, mid_rest, out_ch, out_d,
                 out_hw, 1, 1, 3, 3, /*shortcut_add_on_temporal=*/true);
}

}  // namespace

NetworkSpec MakeR2Plus1DSpec() {
  NetworkSpec spec;
  spec.name = "R(2+1)D";
  spec.in_channels = 3;
  spec.in_frames = 16;
  spec.in_height = spec.in_width = 112;
  spec.num_classes = 101;

  // conv1: [1x7x7, 45] stride (1,2,2), then [3x1x1, 64]  ->  16x56x56.
  {
    ConvLayerSpec sp;
    sp.name = "conv1_spatial";
    sp.group = "conv1";
    sp.M = 45;
    sp.N = 3;
    sp.Kd = 1;
    sp.Kr = sp.Kc = 7;
    sp.Sd = 1;
    sp.Sr = sp.Sc = 2;
    sp.D = 16;
    sp.R = sp.C = 56;
    spec.layers.push_back(sp);

    ConvLayerSpec tp;
    tp.name = "conv1_temporal";
    tp.group = "conv1";
    tp.M = 64;
    tp.N = 45;
    tp.Kd = 3;
    tp.Kr = tp.Kc = 1;
    tp.Sd = tp.Sr = tp.Sc = 1;
    tp.D = 16;
    tp.R = tp.C = 56;
    spec.layers.push_back(tp);
  }

  // Table I mid-channel counts: 144 (conv2), 230/288 (conv3),
  // 460/576 (conv4), 921/1152 (conv5).
  AddResidualStage(spec, "conv2_x", 64, 64, 144, 144, 16, 56, false);
  AddResidualStage(spec, "conv3_x", 64, 128, 230, 288, 8, 28, true);
  AddResidualStage(spec, "conv4_x", 128, 256, 460, 576, 4, 14, true);
  AddResidualStage(spec, "conv5_x", 256, 512, 921, 1152, 2, 7, true);
  return spec;
}

NetworkSpec MakeC3DSpec() {
  NetworkSpec spec;
  spec.name = "C3D";
  spec.in_channels = 3;
  spec.in_frames = 16;
  spec.in_height = spec.in_width = 112;
  spec.num_classes = 101;

  struct Cfg {
    const char* name;
    const char* group;
    int64_t in_ch, out_ch, d, hw;
  };
  // Extents follow the standard C3D pooling pyramid on 16x112x112 input.
  const Cfg cfgs[] = {
      {"conv1a", "conv1", 3, 64, 16, 112},   {"conv2a", "conv2", 64, 128, 16, 56},
      {"conv3a", "conv3", 128, 256, 8, 28},  {"conv3b", "conv3", 256, 256, 8, 28},
      {"conv4a", "conv4", 256, 512, 4, 14},  {"conv4b", "conv4", 512, 512, 4, 14},
      {"conv5a", "conv5", 512, 512, 2, 7},   {"conv5b", "conv5", 512, 512, 2, 7},
  };
  for (const Cfg& c : cfgs) {
    ConvLayerSpec l;
    l.name = c.name;
    l.group = c.group;
    l.M = c.out_ch;
    l.N = c.in_ch;
    l.Kd = l.Kr = l.Kc = 3;
    l.Sd = l.Sr = l.Sc = 1;
    l.D = c.d;
    l.R = l.C = c.hw;
    l.has_bn = false;  // C3D uses bias + ReLU, no batch norm
    spec.layers.push_back(l);
  }
  return spec;
}

void ApplyPaperPruningTargets(NetworkSpec& spec) {
  for (auto& l : spec.layers) {
    if (l.group == "conv2_x") {
      l.eta = 0.90;
    } else if (l.group == "conv3_x") {
      l.eta = 0.80;
    }
  }
}

}  // namespace hwp3d::models
