#include "models/tiny_c3d.h"

namespace hwp3d::models {

TinyC3d::Stage TinyC3d::MakeStage(int64_t in_ch, int64_t out_ch,
                                  bool pool_spatial_only, bool with_pool,
                                  const std::string& name, Rng& rng) {
  Stage s;
  nn::Conv3dConfig cc;
  cc.in_channels = in_ch;
  cc.out_channels = out_ch;
  cc.kernel = {3, 3, 3};
  cc.stride = {1, 1, 1};
  cc.padding = {1, 1, 1};
  cc.bias = !cfg_.batch_norm;
  s.conv = std::make_unique<nn::Conv3d>(cc, rng, name);
  if (cfg_.batch_norm) {
    s.bn = std::make_unique<nn::BatchNorm3d>(out_ch, name + "_bn");
  }
  s.relu = std::make_unique<nn::ReLU>(name + "_relu");
  if (with_pool) {
    // C3D's pool1 is spatial-only (keeps temporal depth), later pools
    // halve all three dimensions.
    nn::Pool3dConfig pc;
    pc.kernel = pool_spatial_only ? std::array<int64_t, 3>{1, 2, 2}
                                  : std::array<int64_t, 3>{2, 2, 2};
    pc.stride = pc.kernel;
    s.pool = std::make_unique<nn::MaxPool3d>(pc, name + "_pool");
  }
  return s;
}

TinyC3d::TinyC3d(TinyC3dConfig cfg, Rng& rng) : cfg_(cfg) {
  stages_.push_back(MakeStage(cfg.in_channels, cfg.conv1_channels,
                              /*pool_spatial_only=*/true, /*with_pool=*/true,
                              "c3d_conv1", rng));
  stages_.push_back(MakeStage(cfg.conv1_channels, cfg.conv2_channels,
                              false, true, "c3d_conv2", rng));
  stages_.push_back(MakeStage(cfg.conv2_channels, cfg.conv3_channels,
                              false, false, "c3d_conv3", rng));
  gap_ = std::make_unique<nn::GlobalAvgPool3d>("c3d_gap");
  fc_ = std::make_unique<nn::Linear>(cfg.conv3_channels, cfg.num_classes,
                                     rng, "c3d_fc");
}

TensorF TinyC3d::Forward(const TensorF& x, bool train) {
  TensorF h = x;
  for (auto& s : stages_) {
    h = s.conv->Forward(h, train);
    if (s.bn) h = s.bn->Forward(h, train);
    h = s.relu->Forward(h, train);
    if (s.pool) h = s.pool->Forward(h, train);
  }
  h = gap_->Forward(h, train);
  return fc_->Forward(h, train);
}

TensorF TinyC3d::Backward(const TensorF& dy) {
  TensorF g = gap_->Backward(fc_->Backward(dy));
  for (auto it = stages_.rbegin(); it != stages_.rend(); ++it) {
    if (it->pool) g = it->pool->Backward(g);
    g = it->relu->Backward(g);
    if (it->bn) g = it->bn->Backward(g);
    g = it->conv->Backward(g);
  }
  return g;
}

void TinyC3d::CollectParams(std::vector<nn::Param*>& out) {
  for (auto& s : stages_) {
    s.conv->CollectParams(out);
    if (s.bn) s.bn->CollectParams(out);
  }
  fc_->CollectParams(out);
}

void TinyC3d::CollectBuffers(std::vector<nn::NamedBuffer>& out) {
  for (auto& s : stages_) {
    if (s.bn) s.bn->CollectBuffers(out);
  }
}

std::vector<nn::Conv3d*> TinyC3d::Convs() {
  std::vector<nn::Conv3d*> out;
  for (auto& s : stages_) out.push_back(s.conv.get());
  return out;
}

int64_t TinyC3d::TotalParams() {
  int64_t total = 0;
  for (nn::Param* p : Params()) total += p->value.numel();
  return total;
}

}  // namespace hwp3d::models
