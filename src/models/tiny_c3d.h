// Trainable scaled-down C3D (standard 3D CNN baseline).
//
// The paper's motivation for choosing R(2+1)D is that it reaches higher
// accuracy with far fewer parameters than C3D. This miniature mirrors
// TinyR2Plus1d's capacity budget with full 3x3x3 convolutions and no
// factorization, so the motivation experiment (R(2+1)D vs C3D at equal
// parameter budget on motion classification) is reproducible.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/batchnorm3d.h"
#include "nn/conv3d.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "nn/pool3d.h"

namespace hwp3d::models {

struct TinyC3dConfig {
  int64_t in_channels = 1;
  int64_t num_classes = 10;
  int64_t conv1_channels = 8;
  int64_t conv2_channels = 16;
  int64_t conv3_channels = 32;
  bool batch_norm = true;  // classic C3D has none; on by default for parity
};

class TinyC3d : public nn::Module {
 public:
  TinyC3d(TinyC3dConfig cfg, Rng& rng);

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  void CollectParams(std::vector<nn::Param*>& out) override;
  void CollectBuffers(std::vector<nn::NamedBuffer>& out) override;
  std::string name() const override { return "tiny_c3d"; }

  // All conv layers (for pruning experiments on C3D, which the paper
  // notes its scheme also supports).
  std::vector<nn::Conv3d*> Convs();

  int64_t TotalParams();

  const TinyC3dConfig& config() const { return cfg_; }

 private:
  struct Stage {
    std::unique_ptr<nn::Conv3d> conv;
    std::unique_ptr<nn::BatchNorm3d> bn;  // null when batch_norm == false
    std::unique_ptr<nn::ReLU> relu;
    std::unique_ptr<nn::MaxPool3d> pool;  // null for the last stage
  };
  Stage MakeStage(int64_t in_ch, int64_t out_ch, bool pool_spatial_only,
                  bool with_pool, const std::string& name, Rng& rng);

  TinyC3dConfig cfg_;
  std::vector<Stage> stages_;
  std::unique_ptr<nn::GlobalAvgPool3d> gap_;
  std::unique_ptr<nn::Linear> fc_;
};

}  // namespace hwp3d::models
