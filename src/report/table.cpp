#include "report/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/strings.h"

namespace hwp3d::report {

Table& Table::Header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::Row(std::vector<std::string> cells) {
  rows_.push_back({std::move(cells), false});
  return *this;
}

Table& Table::Rule() {
  rows_.push_back({{}, true});
  return *this;
}

std::string Table::Render() const {
  // Column widths.
  std::vector<size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  absorb(header_);
  for (const auto& r : rows_) {
    if (!r.is_rule) absorb(r.cells);
  }

  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_rule = [&]() {
    for (size_t i = 0; i < widths.size(); ++i) {
      os << "+" << std::string(widths[i] + 2, '-');
    }
    os << "+\n";
  };
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << "| " << c << std::string(widths[i] - c.size() + 1, ' ');
    }
    os << "|\n";
  };
  emit_rule();
  if (!header_.empty()) {
    emit_row(header_);
    emit_rule();
  }
  for (const auto& r : rows_) {
    if (r.is_rule) {
      emit_rule();
    } else {
      emit_row(r.cells);
    }
  }
  emit_rule();
  return os.str();
}

std::string Table::RenderCsv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ",";
      // RFC 4180: cells containing separators, quotes, or line breaks
      // are quoted, with embedded quotes doubled.
      const std::string& c = cells[i];
      if (c.find_first_of(",\"\n\r") != std::string::npos) {
        os << '"';
        for (const char ch : c) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << c;
      }
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) {
    if (!r.is_rule) emit(r.cells);
  }
  return os.str();
}

void Table::Print() const { std::fputs(Render().c_str(), stdout); }

std::string Table::Num(double v, int precision) {
  return StrFormat("%.*f", precision, v);
}

std::string Table::Int(int64_t v) {
  return StrFormat("%lld", static_cast<long long>(v));
}

std::string Table::Pct(double fraction, int precision) {
  return StrFormat("%.*f%%", precision, fraction * 100.0);
}

std::string Table::Ratio(double v, int precision) {
  return StrFormat("%.*fx", precision, v);
}

}  // namespace hwp3d::report
