// ASCII table emission for the benchmark harness: every bench prints the
// paper's rows next to our measured values in a fixed-width table, plus
// an optional CSV dump for downstream plotting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hwp3d::report {

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  Table& Header(std::vector<std::string> cells);
  Table& Row(std::vector<std::string> cells);
  // Horizontal separator row.
  Table& Rule();

  std::string Render() const;
  std::string RenderCsv() const;
  void Print() const;  // Render to stdout

  // Cell formatting helpers.
  static std::string Num(double v, int precision = 2);
  static std::string Int(int64_t v);
  static std::string Pct(double fraction, int precision = 0);
  static std::string Ratio(double v, int precision = 2);  // "3.18x"

 private:
  struct RowData {
    std::vector<std::string> cells;
    bool is_rule = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<RowData> rows_;
};

}  // namespace hwp3d::report
