#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/strings.h"
#include "obs/json_util.h"

namespace hwp3d::obs {

namespace {

std::chrono::steady_clock::time_point ProcessOrigin() {
  static const auto origin = std::chrono::steady_clock::now();
  return origin;
}

void AppendNumber(std::ostringstream& os, double v) {
  // Integral values print without a fraction; everything else keeps
  // enough digits for round-tripping microsecond timestamps.
  if (v == static_cast<double>(static_cast<int64_t>(v))) {
    os << static_cast<int64_t>(v);
  } else {
    os << StrFormat("%.3f", v);
  }
}

void AppendEvent(std::ostringstream& os, const TraceEvent& e) {
  os << "{\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"hwp3d\""
     << ",\"ph\":\"" << e.phase << "\",\"pid\":1,\"tid\":" << e.tid
     << ",\"ts\":";
  AppendNumber(os, e.ts_us);
  if (e.phase == 'X') {
    os << ",\"dur\":";
    AppendNumber(os, e.dur_us);
  }
  if (!e.args.empty()) {
    os << ",\"args\":{";
    for (size_t i = 0; i < e.args.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << JsonEscape(e.args[i].key) << "\":";
      if (e.args[i].is_number) {
        os << e.args[i].value;
      } else {
        os << "\"" << JsonEscape(e.args[i].value) << "\"";
      }
    }
    os << "}";
  }
  os << "}";
}

}  // namespace

double NowUs() {
  const auto dt = std::chrono::steady_clock::now() - ProcessOrigin();
  return std::chrono::duration<double, std::micro>(dt).count();
}

uint32_t CurrentThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

Tracer::Tracer() {
  ProcessOrigin();  // pin the time origin no later than first access
  const char* env = std::getenv("HWP_TRACE");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    enabled_.store(true, std::memory_order_relaxed);
  }
}

Tracer& Tracer::Get() {
  static Tracer tracer;
  return tracer;
}

void Tracer::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

void Tracer::Counter(std::string name, double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.phase = 'C';
  e.ts_us = NowUs();
  e.tid = CurrentThreadId();
  e.args.push_back({"value", StrFormat("%g", value), /*is_number=*/true});
  Record(std::move(e));
}

void Tracer::Instant(std::string name) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.phase = 'i';
  e.ts_us = NowUs();
  e.tid = CurrentThreadId();
  Record(std::move(e));
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Tracer::ToChromeJson() const {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < events_.size(); ++i) {
      if (i > 0) os << ",";
      os << "\n";
      AppendEvent(os, events_[i]);
    }
  }
  os << "\n]}\n";
  return os.str();
}

bool Tracer::WriteChromeJson(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = ToChromeJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

void TraceScope::AddArg(const char* key, int64_t value) {
  if (active_) {
    args_.push_back({key, StrFormat("%lld", static_cast<long long>(value)),
                     /*is_number=*/true});
  }
}

void TraceScope::AddArg(const char* key, double value) {
  if (active_) args_.push_back({key, StrFormat("%g", value), true});
}

void TraceScope::Finish() noexcept {
  try {
    TraceEvent e;
    e.name = dynamic_name_.empty() ? std::string(name_)
                                   : std::move(dynamic_name_);
    e.phase = 'X';
    e.ts_us = start_us_;
    e.dur_us = NowUs() - start_us_;
    e.tid = CurrentThreadId();
    e.args = std::move(args_);
    Tracer::Get().Record(std::move(e));
  } catch (...) {
    // Tracing must never take the process down.
  }
}

}  // namespace hwp3d::obs
