#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"
#include "obs/json_util.h"

namespace hwp3d::obs {

namespace {

int BucketIndex(double v) {
  if (!(v > 1.0)) return 0;
  const int k = static_cast<int>(std::ceil(std::log2(v)));
  return std::min(k, Histogram::kBuckets - 1);
}

std::string CanonicalKey(std::string_view name, const LabelSet& labels) {
  std::string key(name);
  key += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ',';
    key += labels[i].first;
    key += '=';
    key += labels[i].second;
  }
  key += '}';
  return key;
}

const char* KindName(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

void AppendLabels(std::ostringstream& os, const LabelSet& labels) {
  if (labels.empty()) return;
  os << ",\"labels\":{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) os << ",";
    os << "\"" << JsonEscape(labels[i].first) << "\":\""
       << JsonEscape(labels[i].second) << "\"";
  }
  os << "}";
}

std::string LabelSuffix(const LabelSet& labels) {
  if (labels.empty()) return "";
  std::string s = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) s += ',';
    s += labels[i].first + "=" + labels[i].second;
  }
  s += '}';
  return s;
}

std::string FmtDouble(double v) {
  // Trim trailing zeros for readable tables/JSON.
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%g", v);
}

}  // namespace

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_.count == 0) {
    stats_.min = stats_.max = v;
  } else {
    stats_.min = std::min(stats_.min, v);
    stats_.max = std::max(stats_.max, v);
  }
  ++stats_.count;
  stats_.sum += v;
  ++buckets_[BucketIndex(v)];
}

Histogram::Stats Histogram::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<int64_t> Histogram::buckets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<int64_t>(buckets_, buckets_ + kBuckets);
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::Lookup(std::string_view name,
                                                LabelSet labels,
                                                MetricKind kind) {
  std::sort(labels.begin(), labels.end());
  const std::string key = CanonicalKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    HWP_CHECK_MSG(it->second->kind == kind,
                  "metric " << key << " already registered as "
                            << KindName(it->second->kind));
    return *it->second;
  }
  entries_.emplace_back();
  Entry& e = entries_.back();
  e.name = std::string(name);
  e.labels = std::move(labels);
  e.kind = kind;
  by_key_.emplace(key, &e);
  return e;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, LabelSet labels) {
  return Lookup(name, std::move(labels), MetricKind::Counter).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, LabelSet labels) {
  return Lookup(name, std::move(labels), MetricKind::Gauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         LabelSet labels) {
  return Lookup(name, std::move(labels), MetricKind::Histogram).histogram;
}

int64_t MetricsRegistry::CounterTotal(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const Entry& e : entries_) {
    if (e.kind == MetricKind::Counter && e.name == name) {
      total += e.counter.value();
    }
  }
  return total;
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    MetricSnapshot s;
    s.name = e.name;
    s.labels = e.labels;
    s.kind = e.kind;
    switch (e.kind) {
      case MetricKind::Counter: s.counter_value = e.counter.value(); break;
      case MetricKind::Gauge: s.gauge_value = e.gauge.value(); break;
      case MetricKind::Histogram:
        s.histogram = e.histogram.stats();
        s.buckets = e.histogram.buckets();
        break;
    }
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
  return out;
}

std::string MetricsRegistry::ToJsonl() const {
  std::ostringstream os;
  for (const MetricSnapshot& s : Snapshot()) {
    os << "{\"type\":\"" << KindName(s.kind) << "\",\"name\":\""
       << JsonEscape(s.name) << "\"";
    AppendLabels(os, s.labels);
    switch (s.kind) {
      case MetricKind::Counter:
        os << ",\"value\":" << s.counter_value;
        break;
      case MetricKind::Gauge:
        os << ",\"value\":" << FmtDouble(s.gauge_value);
        break;
      case MetricKind::Histogram: {
        os << ",\"count\":" << s.histogram.count
           << ",\"sum\":" << FmtDouble(s.histogram.sum)
           << ",\"min\":" << FmtDouble(s.histogram.min)
           << ",\"max\":" << FmtDouble(s.histogram.max)
           << ",\"mean\":" << FmtDouble(s.histogram.mean());
        os << ",\"buckets\":{";
        bool first = true;
        for (int k = 0; k < Histogram::kBuckets; ++k) {
          if (s.buckets[static_cast<size_t>(k)] == 0) continue;
          if (!first) os << ",";
          first = false;
          // Key: inclusive upper bound of the bucket (2^k).
          os << "\"" << FmtDouble(std::ldexp(1.0, k)) << "\":"
             << s.buckets[static_cast<size_t>(k)];
        }
        os << "}";
        break;
      }
    }
    os << "}\n";
  }
  return os.str();
}

bool MetricsRegistry::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string jsonl = ToJsonl();
  const size_t written = std::fwrite(jsonl.data(), 1, jsonl.size(), f);
  std::fclose(f);
  return written == jsonl.size();
}

report::Table MetricsRegistry::SummaryTable() const {
  report::Table table("Metrics summary");
  table.Header({"Metric", "Type", "Value", "Count", "Mean", "Min", "Max"});
  for (const MetricSnapshot& s : Snapshot()) {
    const std::string name = s.name + LabelSuffix(s.labels);
    switch (s.kind) {
      case MetricKind::Counter:
        table.Row({name, "counter", report::Table::Int(s.counter_value), "-",
                   "-", "-", "-"});
        break;
      case MetricKind::Gauge:
        table.Row({name, "gauge", FmtDouble(s.gauge_value), "-", "-", "-",
                   "-"});
        break;
      case MetricKind::Histogram:
        table.Row({name, "histogram", "-",
                   report::Table::Int(s.histogram.count),
                   FmtDouble(s.histogram.mean()), FmtDouble(s.histogram.min),
                   FmtDouble(s.histogram.max)});
        break;
    }
  }
  return table;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  by_key_.clear();
  entries_.clear();
}

}  // namespace hwp3d::obs
