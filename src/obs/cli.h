// Command-line glue shared by the examples and benches: a small typed
// flag registry that parses the common flags every binary used to
// re-implement by hand, removes them from argv, and applies the
// side-effecting ones (tracing, thread-pool size, conv engine).
//
//   int main(int argc, char** argv) {
//     const obs::CliOptions opts = obs::InitFromArgs(argc, argv);
//     Rng rng(opts.seed.value_or(42));
//     ...                                  // known flags removed from argv
//     obs::Finalize(opts);                 // writes the requested files
//   }
//
// Flags (both `--flag value` and `--flag=value`):
//   --trace-out F    enable tracing, write Chrome trace JSON to F
//   --metrics-out F  write metrics JSONL to F + print the summary table
//   --threads N      size hwp3d::ThreadPool (sets HWP_THREADS; must run
//                    before the first ThreadPool::Get())
//   --engine E       conv engine, naive|gemm (sets HWP_CONV_ENGINE)
//   --executor E     compiled-model executor, sim|fast (sets HWP_EXEC;
//                    fast = pre-packed block-CSR tiles + analytic
//                    timing, sim = step-by-step cycle simulator)
//   --device D       FPGA device name, e.g. zcu102 (consumed by the
//                    caller, see fpga::DeviceByName)
//   --seed S         RNG seed (consumed by the caller)
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace hwp3d::obs {

struct CliOptions {
  std::string trace_out;    // Chrome trace-event JSON path ("" = off)
  std::string metrics_out;  // metrics JSONL path ("" = off)
  std::optional<int> threads;
  std::string engine;       // "" = keep HWP_CONV_ENGINE / default
  std::string executor;     // "" = keep HWP_EXEC / context default
  std::string device;       // "" = binary's default device
  std::optional<uint64_t> seed;
};

// Extracts the registered flags from argv, compacting the remaining
// arguments and updating argc. Enables the tracer when --trace-out is
// present, exports HWP_THREADS / HWP_CONV_ENGINE for --threads /
// --engine. Malformed values (non-numeric --threads) warn on stderr and
// are ignored.
CliOptions InitFromArgs(int& argc, char** argv);

// Writes the requested trace/metrics files and prints the metrics
// summary table when --metrics-out was given.
void Finalize(const CliOptions& options);

}  // namespace hwp3d::obs
