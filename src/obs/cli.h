// Command-line glue shared by the examples: `--trace-out <file>` and
// `--metrics-out <file>` flags that enable tracing / arrange metric
// export without each binary re-implementing flag parsing.
//
//   int main(int argc, char** argv) {
//     const obs::CliOptions obs_opts = obs::InitFromArgs(argc, argv);
//     ...                                  // obs flags removed from argv
//     obs::Finalize(obs_opts);             // writes the requested files
//   }
#pragma once

#include <string>

namespace hwp3d::obs {

struct CliOptions {
  std::string trace_out;    // Chrome trace-event JSON path ("" = off)
  std::string metrics_out;  // metrics JSONL path ("" = off)
};

// Extracts `--trace-out F` / `--metrics-out F` (also `--flag=F`) from
// argv, compacting the remaining arguments and updating argc. Enables
// the tracer when --trace-out is present.
CliOptions InitFromArgs(int& argc, char** argv);

// Writes the requested trace/metrics files and prints the metrics
// summary table when --metrics-out was given.
void Finalize(const CliOptions& options);

}  // namespace hwp3d::obs
