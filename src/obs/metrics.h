// Metrics registry: named counters, gauges, and histograms with optional
// labels, aggregated process-wide and exportable as JSONL or a
// report::Table summary.
//
//   auto& skipped = obs::MetricsRegistry::Get().GetCounter(
//       "sim.blocks_skipped", {{"layer", "conv2a"}});
//   skipped.Add(n);   // lock-free after the first lookup
//
// Look metrics up once (outside hot loops) and hold the reference —
// references are stable for the registry's lifetime. The registry is
// always on; its cost is the instrument sites' atomics.
//
// Export:
//   obs::MetricsRegistry::Get().WriteJsonl("metrics.jsonl");
//   obs::MetricsRegistry::Get().SummaryTable().Print();
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "report/table.h"

namespace hwp3d::obs {

// Label key/value pairs; canonicalized (sorted by key) on lookup.
using LabelSet = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void Add(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  struct Stats {
    int64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean() const { return count > 0 ? sum / count : 0.0; }
  };
  // Power-of-two buckets over non-negative values: bucket k counts
  // observations with 2^(k-1) < v <= 2^k (bucket 0: v <= 1).
  static constexpr int kBuckets = 64;

  void Observe(double v);
  Stats stats() const;
  std::vector<int64_t> buckets() const;  // size kBuckets

 private:
  mutable std::mutex mu_;
  Stats stats_;
  int64_t buckets_[kBuckets] = {};
};

enum class MetricKind { Counter, Gauge, Histogram };

// Read-only view of one metric, for export and tests.
struct MetricSnapshot {
  std::string name;
  LabelSet labels;
  MetricKind kind = MetricKind::Counter;
  int64_t counter_value = 0;        // Counter
  double gauge_value = 0.0;         // Gauge
  Histogram::Stats histogram;       // Histogram
  std::vector<int64_t> buckets;     // Histogram (non-empty buckets only
                                    // appear in the JSONL export)
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Get();

  // Returns the metric registered under (name, labels), creating it on
  // first use. Throws if the name+labels is already registered as a
  // different kind.
  Counter& GetCounter(std::string_view name, LabelSet labels = {});
  Gauge& GetGauge(std::string_view name, LabelSet labels = {});
  Histogram& GetHistogram(std::string_view name, LabelSet labels = {});

  // Sums a counter across all label sets sharing `name`.
  int64_t CounterTotal(std::string_view name) const;

  std::vector<MetricSnapshot> Snapshot() const;

  // One JSON object per line, e.g.
  //   {"type":"counter","name":"sim.blocks_skipped",
  //    "labels":{"layer":"conv2a"},"value":128}
  std::string ToJsonl() const;
  bool WriteJsonl(const std::string& path) const;

  // End-of-run summary rendered through report::Table.
  report::Table SummaryTable() const;

  // Drops every registered metric (invalidates references; tests only).
  void Reset();

 private:
  struct Entry {
    std::string name;
    LabelSet labels;
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    Histogram histogram;
  };

  Entry& Lookup(std::string_view name, LabelSet labels, MetricKind kind);

  mutable std::mutex mu_;
  std::deque<Entry> entries_;               // stable addresses
  std::map<std::string, Entry*> by_key_;    // canonical key -> entry
};

}  // namespace hwp3d::obs
