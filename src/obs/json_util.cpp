#include "obs/json_util.h"

#include "common/strings.h"

namespace hwp3d::obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hwp3d::obs
