// Scoped tracing profiler.
//
// RAII spans record wall-clock intervals into a process-global event
// buffer and export them as Chrome trace-event JSON, viewable in
// chrome://tracing or https://ui.perfetto.dev. Tracing is off by default
// and costs one relaxed atomic load per span when disabled — no clock
// read, no allocation. Enable at runtime with
// `Tracer::Get().SetEnabled(true)` or by setting the HWP_TRACE
// environment variable (any non-empty value other than "0").
//
// Usage:
//   void TiledConvSim::Run(...) {
//     HWP_TRACE_SCOPE("sim/run");          // span covers the function
//     ...
//   }
//
//   obs::TraceScope span("sched/evaluate");  // named object for args
//   if (span.active()) span.SetName("sched/" + spec.name);
//   span.AddArg("cycles", total_cycles);     // no-op when disabled
//
// Export:
//   obs::Tracer::Get().WriteChromeJson("trace.json");
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace hwp3d::obs {

// Microseconds since process start (steady clock).
double NowUs();

// Small dense id for the calling thread (stable for its lifetime).
uint32_t CurrentThreadId();

// One span/counter argument. Numeric values are emitted unquoted so
// Perfetto can aggregate them.
struct TraceArg {
  std::string key;
  std::string value;
  bool is_number = false;
};

struct TraceEvent {
  std::string name;
  char phase = 'X';  // 'X' complete span, 'C' counter, 'i' instant
  double ts_us = 0.0;
  double dur_us = 0.0;  // spans only
  uint32_t tid = 0;
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  // Process-global tracer; reads HWP_TRACE on first access.
  static Tracer& Get();

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Record(TraceEvent event);
  // Counter track (phase 'C'): one series named `name`.
  void Counter(std::string name, double value);
  // Zero-duration marker on the calling thread's track.
  void Instant(std::string name);

  void Clear();
  size_t event_count() const;
  std::vector<TraceEvent> Snapshot() const;

  // {"traceEvents":[...]} — the Chrome trace-event format.
  std::string ToChromeJson() const;
  bool WriteChromeJson(const std::string& path) const;

 private:
  Tracer();
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

// RAII span. The disabled path touches no clock and allocates nothing.
class TraceScope {
 public:
  explicit TraceScope(const char* name) noexcept
      : active_(Tracer::Get().enabled()), name_(name) {
    if (active_) start_us_ = NowUs();
  }
  ~TraceScope() {
    if (active_) Finish();
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  bool active() const { return active_; }

  // Replaces the span name (for dynamic names, e.g. per-layer); only
  // call under `if (span.active())` to keep the disabled path free.
  void SetName(std::string name) {
    if (active_) dynamic_name_ = std::move(name);
  }

  void AddArg(const char* key, const std::string& value) {
    if (active_) args_.push_back({key, value, /*is_number=*/false});
  }
  void AddArg(const char* key, const char* value) {
    if (active_) args_.push_back({key, value, /*is_number=*/false});
  }
  void AddArg(const char* key, int64_t value);
  void AddArg(const char* key, double value);

 private:
  void Finish() noexcept;

  bool active_;
  const char* name_;
  std::string dynamic_name_;  // empty: use name_
  double start_us_ = 0.0;
  std::vector<TraceArg> args_;
};

}  // namespace hwp3d::obs

#define HWP_TRACE_CONCAT_INNER(a, b) a##b
#define HWP_TRACE_CONCAT(a, b) HWP_TRACE_CONCAT_INNER(a, b)
// Span covering the enclosing scope; near-zero cost when tracing is off.
#define HWP_TRACE_SCOPE(name) \
  ::hwp3d::obs::TraceScope HWP_TRACE_CONCAT(hwp_trace_scope_, __LINE__)(name)
