#include "obs/cli.h"

#include <cstdio>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwp3d::obs {

namespace {

// Matches "--flag value" and "--flag=value"; advances `i` past consumed
// arguments and stores the value. Returns false if `arg` is not `flag`.
bool MatchFlag(const char* flag, int argc, char** argv, int& i,
               std::string& value) {
  const char* arg = argv[i];
  const size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) return false;
  if (arg[flag_len] == '=') {
    value = arg + flag_len + 1;
    return true;
  }
  if (arg[flag_len] == '\0' && i + 1 < argc) {
    value = argv[++i];
    return true;
  }
  return false;
}

}  // namespace

CliOptions InitFromArgs(int& argc, char** argv) {
  CliOptions options;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (MatchFlag("--trace-out", argc, argv, i, options.trace_out) ||
        MatchFlag("--metrics-out", argc, argv, i, options.metrics_out)) {
      continue;
    }
    if (std::strcmp(argv[i], "--trace-out") == 0 ||
        std::strcmp(argv[i], "--metrics-out") == 0) {
      std::fprintf(stderr, "warning: %s requires a value; ignored\n",
                   argv[i]);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  if (!options.trace_out.empty()) Tracer::Get().SetEnabled(true);
  return options;
}

void Finalize(const CliOptions& options) {
  if (!options.trace_out.empty()) {
    if (Tracer::Get().WriteChromeJson(options.trace_out)) {
      std::fprintf(stderr, "wrote %zu trace events to %s\n",
                   Tracer::Get().event_count(), options.trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   options.trace_out.c_str());
    }
  }
  if (!options.metrics_out.empty()) {
    if (MetricsRegistry::Get().WriteJsonl(options.metrics_out)) {
      std::fprintf(stderr, "wrote metrics JSONL to %s\n",
                   options.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   options.metrics_out.c_str());
    }
    MetricsRegistry::Get().SummaryTable().Print();
  }
}

}  // namespace hwp3d::obs
