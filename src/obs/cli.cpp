#include "obs/cli.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwp3d::obs {

namespace {

// One registered flag: a name plus a typed destination. String flags
// store the raw value; integer flags parse it (warning + ignore on
// garbage).
struct Flag {
  const char* name;  // "--threads"
  enum class Kind { kString, kInt, kUint64 } kind;
  void* target;      // std::string* / std::optional<int>* /
                     // std::optional<uint64_t>*
};

// Matches "--flag value" and "--flag=value"; advances `i` past consumed
// arguments and stores the value. Returns false if `arg` is not `flag`.
bool MatchFlag(const char* flag, int argc, char** argv, int& i,
               std::string& value) {
  const char* arg = argv[i];
  const size_t flag_len = std::strlen(flag);
  if (std::strncmp(arg, flag, flag_len) != 0) return false;
  if (arg[flag_len] == '=') {
    value = arg + flag_len + 1;
    return true;
  }
  if (arg[flag_len] == '\0' && i + 1 < argc) {
    value = argv[++i];
    return true;
  }
  return false;
}

void StoreValue(const Flag& flag, const std::string& value) {
  switch (flag.kind) {
    case Flag::Kind::kString:
      *static_cast<std::string*>(flag.target) = value;
      return;
    case Flag::Kind::kInt:
    case Flag::Kind::kUint64: {
      char* end = nullptr;
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' ||
          (flag.kind == Flag::Kind::kInt && v < 1)) {
        std::fprintf(stderr, "warning: invalid %s value \"%s\"; ignored\n",
                     flag.name, value.c_str());
        return;
      }
      if (flag.kind == Flag::Kind::kInt) {
        *static_cast<std::optional<int>*>(flag.target) =
            static_cast<int>(v);
      } else {
        *static_cast<std::optional<uint64_t>*>(flag.target) =
            static_cast<uint64_t>(v);
      }
      return;
    }
  }
}

}  // namespace

CliOptions InitFromArgs(int& argc, char** argv) {
  CliOptions options;
  const Flag registry[] = {
      {"--trace-out", Flag::Kind::kString, &options.trace_out},
      {"--metrics-out", Flag::Kind::kString, &options.metrics_out},
      {"--engine", Flag::Kind::kString, &options.engine},
      {"--executor", Flag::Kind::kString, &options.executor},
      {"--device", Flag::Kind::kString, &options.device},
      {"--threads", Flag::Kind::kInt, &options.threads},
      {"--seed", Flag::Kind::kUint64, &options.seed},
  };

  int out = 1;
  for (int i = 1; i < argc; ++i) {
    bool consumed = false;
    for (const Flag& flag : registry) {
      std::string value;
      if (MatchFlag(flag.name, argc, argv, i, value)) {
        StoreValue(flag, value);
        consumed = true;
        break;
      }
      if (std::strcmp(argv[i], flag.name) == 0) {
        std::fprintf(stderr, "warning: %s requires a value; ignored\n",
                     argv[i]);
        consumed = true;
        break;
      }
    }
    if (!consumed) argv[out++] = argv[i];
  }
  argc = out;

  if (!options.trace_out.empty()) Tracer::Get().SetEnabled(true);
  // The pool and the conv engine read their environment on first use,
  // so these must be exported before any parallel code runs — which is
  // why examples call InitFromArgs first thing in main.
  if (options.threads.has_value()) {
    setenv("HWP_THREADS", std::to_string(*options.threads).c_str(),
           /*overwrite=*/1);
  }
  if (!options.engine.empty()) {
    setenv("HWP_CONV_ENGINE", options.engine.c_str(), /*overwrite=*/1);
  }
  if (!options.executor.empty()) {
    setenv("HWP_EXEC", options.executor.c_str(), /*overwrite=*/1);
  }
  return options;
}

void Finalize(const CliOptions& options) {
  if (!options.trace_out.empty()) {
    if (Tracer::Get().WriteChromeJson(options.trace_out)) {
      std::fprintf(stderr, "wrote %zu trace events to %s\n",
                   Tracer::Get().event_count(), options.trace_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write trace to %s\n",
                   options.trace_out.c_str());
    }
  }
  if (!options.metrics_out.empty()) {
    if (MetricsRegistry::Get().WriteJsonl(options.metrics_out)) {
      std::fprintf(stderr, "wrote metrics JSONL to %s\n",
                   options.metrics_out.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   options.metrics_out.c_str());
    }
    MetricsRegistry::Get().SummaryTable().Print();
  }
}

}  // namespace hwp3d::obs
