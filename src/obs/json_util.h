// JSON string escaping shared by the trace and metrics exporters.
#pragma once

#include <string>
#include <string_view>

namespace hwp3d::obs {

// Escapes `s` for inclusion inside a JSON string literal (no quotes
// added): ", \, and control characters are encoded per RFC 8259.
std::string JsonEscape(std::string_view s);

}  // namespace hwp3d::obs
