// 16-bit fixed-point arithmetic as used by the paper's FPGA datapath:
// "16-bit fixed-point with 1 sign bit, 7 integer bits and 8 fractional
// bits" (Q7.8). Multiplication uses a 32-bit intermediate, mirroring a
// DSP48 MAC; addition/accumulation saturates at the representable range.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace hwp3d {

// Q(7.8) signed fixed-point scalar. Trivially copyable; usable as the
// element type of Tensor<T>.
class Fixed16 {
 public:
  static constexpr int kFractionBits = 8;
  static constexpr int kIntegerBits = 7;
  static constexpr int32_t kScale = 1 << kFractionBits;  // 256
  static constexpr int16_t kRawMax = std::numeric_limits<int16_t>::max();
  static constexpr int16_t kRawMin = std::numeric_limits<int16_t>::min();

  constexpr Fixed16() = default;

  // Quantizes a float with round-to-nearest and saturation. NaN maps
  // to 0; ±Inf and out-of-range values saturate. The range check runs
  // in floating point *before* any float→int conversion: casting a
  // non-finite or out-of-range float to an integer is UB, so the
  // integer SaturateRaw alone cannot make this safe.
  static Fixed16 FromFloat(float v) {
    if (std::isnan(v)) return Fixed16(0);
    const float scaled = v * static_cast<float>(kScale);
    if (scaled >= static_cast<float>(kRawMax)) return Fixed16(kRawMax);
    if (scaled <= static_cast<float>(kRawMin)) return Fixed16(kRawMin);
    return Fixed16(static_cast<int16_t>(std::nearbyint(scaled)));
  }

  static constexpr Fixed16 FromRaw(int16_t raw) { return Fixed16(raw); }

  float ToFloat() const {
    return static_cast<float>(raw_) / static_cast<float>(kScale);
  }

  int16_t raw() const { return raw_; }

  // Largest / smallest representable values: ±127.996...
  static constexpr float MaxValue() {
    return static_cast<float>(kRawMax) / kScale;
  }
  static constexpr float MinValue() {
    return static_cast<float>(kRawMin) / kScale;
  }

  // Smallest positive step.
  static constexpr float Epsilon() { return 1.0f / kScale; }

  Fixed16 operator+(Fixed16 o) const {
    return Fixed16(SaturateRaw(static_cast<int64_t>(raw_) + o.raw_));
  }
  Fixed16 operator-(Fixed16 o) const {
    return Fixed16(SaturateRaw(static_cast<int64_t>(raw_) - o.raw_));
  }
  Fixed16 operator-() const {
    return Fixed16(SaturateRaw(-static_cast<int64_t>(raw_)));
  }
  // Product of two Q7.8 values is Q14.16; shift back with rounding.
  Fixed16 operator*(Fixed16 o) const {
    const int64_t wide = static_cast<int64_t>(raw_) * o.raw_;
    const int64_t rounded = (wide + (1 << (kFractionBits - 1))) >> kFractionBits;
    return Fixed16(SaturateRaw(rounded));
  }

  Fixed16& operator+=(Fixed16 o) { return *this = *this + o; }
  Fixed16& operator-=(Fixed16 o) { return *this = *this - o; }
  Fixed16& operator*=(Fixed16 o) { return *this = *this * o; }

  bool operator==(Fixed16 o) const { return raw_ == o.raw_; }
  bool operator!=(Fixed16 o) const { return raw_ != o.raw_; }
  bool operator<(Fixed16 o) const { return raw_ < o.raw_; }
  bool operator<=(Fixed16 o) const { return raw_ <= o.raw_; }
  bool operator>(Fixed16 o) const { return raw_ > o.raw_; }
  bool operator>=(Fixed16 o) const { return raw_ >= o.raw_; }

 private:
  constexpr explicit Fixed16(int16_t raw) : raw_(raw) {}

  static constexpr int16_t SaturateRaw(int64_t wide) {
    if (wide > kRawMax) return kRawMax;
    if (wide < kRawMin) return kRawMin;
    return static_cast<int16_t>(wide);
  }

  int16_t raw_ = 0;
};

// 32-bit accumulator matching a DSP48-style MAC chain: products are
// accumulated at full precision and narrowed to Fixed16 only at the end,
// which is how the adder-tree in the accelerator's processing element
// behaves before write-back to the output buffer.
class FixedAccum {
 public:
  constexpr FixedAccum() = default;

  void MulAdd(Fixed16 a, Fixed16 b) {
    acc_ += static_cast<int64_t>(a.raw()) * b.raw();
  }

  void Add(FixedAccum o) { acc_ += o.acc_; }

  // Adds a pre-scaled Fixed16 (e.g. a bias or a shortcut value).
  void AddFixed(Fixed16 v) {
    acc_ += static_cast<int64_t>(v.raw()) << Fixed16::kFractionBits;
  }

  // Narrow to Q7.8 with rounding and saturation.
  Fixed16 ToFixed16() const {
    const int64_t rounded =
        (acc_ + (1 << (Fixed16::kFractionBits - 1))) >> Fixed16::kFractionBits;
    if (rounded > Fixed16::kRawMax) return Fixed16::FromRaw(Fixed16::kRawMax);
    if (rounded < Fixed16::kRawMin) return Fixed16::FromRaw(Fixed16::kRawMin);
    return Fixed16::FromRaw(static_cast<int16_t>(rounded));
  }

  int64_t raw() const { return acc_; }
  void Reset() { acc_ = 0; }

 private:
  int64_t acc_ = 0;
};

}  // namespace hwp3d
