// Tensor-level quantization between float and Fixed16 (Q7.8), plus
// quantization-error statistics used to validate that 16-bit fixed point
// preserves model outputs (the paper runs the whole datapath in Q7.8).
#pragma once

#include "fixed/fixed_point.h"
#include "tensor/tensor.h"

namespace hwp3d {

using TensorQ = Tensor<Fixed16>;

// Round-to-nearest, saturating quantization of every element.
TensorQ Quantize(const TensorF& t);

// Exact float reconstruction of the quantized values.
TensorF Dequantize(const TensorQ& t);

struct QuantStats {
  float max_abs_error = 0.0f;   // max |x - Q(x)|
  float mean_abs_error = 0.0f;  // mean |x - Q(x)|
  int64_t saturated = 0;        // elements clipped at ±Q7.8 range
};

// Quantizes and reports the element-wise error statistics.
QuantStats MeasureQuantization(const TensorF& t);

}  // namespace hwp3d
