#include "fixed/quantize.h"

#include <cmath>

namespace hwp3d {

TensorQ Quantize(const TensorF& t) {
  TensorQ out(t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) out[i] = Fixed16::FromFloat(t[i]);
  return out;
}

TensorF Dequantize(const TensorQ& t) {
  TensorF out(t.shape());
  for (int64_t i = 0; i < t.numel(); ++i) out[i] = t[i].ToFloat();
  return out;
}

QuantStats MeasureQuantization(const TensorF& t) {
  QuantStats stats;
  double sum_abs = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    const Fixed16 q = Fixed16::FromFloat(t[i]);
    const float err = std::fabs(t[i] - q.ToFloat());
    stats.max_abs_error = std::max(stats.max_abs_error, err);
    sum_abs += err;
    if (q.raw() == Fixed16::kRawMax || q.raw() == Fixed16::kRawMin) {
      // Saturation only counts when the float was actually out of range.
      if (t[i] > Fixed16::MaxValue() || t[i] < Fixed16::MinValue()) {
        ++stats.saturated;
      }
    }
  }
  stats.mean_abs_error =
      t.numel() > 0 ? static_cast<float>(sum_abs / t.numel()) : 0.0f;
  return stats;
}

}  // namespace hwp3d
