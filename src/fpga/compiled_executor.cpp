#include "fpga/compiled_executor.h"

#include <algorithm>
#include <cstdlib>

#include "common/error.h"
#include "common/logging.h"
#include "fpga/perf_model.h"
#include "kernels/qgemm_tile.h"
#include "kernels/scratch.h"
#include "kernels/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/shape.h"

namespace hwp3d::fpga {

namespace {

int64_t OutExtent(int64_t in, int64_t k, int64_t s) {
  return (in - k) / s + 1;
}

// Accumulator strips are post-processed in cache-resident column
// blocks: a full [Tm][kColBlock] strip of wide accumulators is 8 KiB at
// Tm=64 — it stays in L1 across the whole surviving-tile list.
constexpr int64_t kColBlock = 128;

}  // namespace

const char* ExecModeName(ExecMode mode) {
  return mode == ExecMode::kFast ? "fast" : "sim";
}

std::optional<ExecMode> ParseExecMode(std::string_view name) {
  if (name == "sim" || name == "simulate") return ExecMode::kSimulate;
  if (name == "fast") return ExecMode::kFast;
  return std::nullopt;
}

ExecMode ResolveExecMode(std::optional<ExecMode> requested,
                         ExecMode fallback) {
  if (requested.has_value()) return *requested;
  if (const char* env = std::getenv("HWP_EXEC")) {
    if (const std::optional<ExecMode> parsed = ParseExecMode(env)) {
      return *parsed;
    }
    HWP_LOG(Warning) << "ignoring invalid HWP_EXEC value \"" << env
                     << "\" (want sim|fast); using "
                     << ExecModeName(fallback);
  }
  return fallback;
}

PackedConvLayer::PackedConvLayer(const TensorQ& weights, const Tiling& tiling,
                                 const Ports& ports,
                                 const core::BlockMask* mask)
    : t_(tiling), p_(ports) {
  HWP_SHAPE_CHECK_MSG(weights.rank() == 5, "weights must be rank-5");
  M_ = weights.dim(0);
  N_ = weights.dim(1);
  Kd_ = weights.dim(2);
  Kr_ = weights.dim(3);
  Kc_ = weights.dim(4);
  blocks_m_ = CeilDiv(M_, t_.Tm);
  blocks_n_ = CeilDiv(N_, t_.Tn);
  if (mask != nullptr) {
    HWP_CHECK_MSG(mask->blocks_m == blocks_m_ && mask->blocks_n == blocks_n_,
                  "block mask grid mismatch");
    mask_ = *mask;
  }

  const int64_t k_vol = Kd_ * Kr_ * Kc_;
  row_ptr_.reserve(static_cast<size_t>(blocks_m_) + 1);
  row_ptr_.push_back(0);
  for (int64_t bm = 0; bm < blocks_m_; ++bm) {
    const int64_t m0 = bm * t_.Tm;
    const int64_t tm_n = std::min(t_.Tm, M_ - m0);
    for (int64_t bn = 0; bn < blocks_n_; ++bn) {
      if (mask != nullptr && !mask->at(bm, bn)) continue;  // elided
      const int64_t n0 = bn * t_.Tn;
      const int64_t tn_n = std::min(t_.Tn, N_ - n0);
      Tile tile;
      tile.bn = static_cast<int32_t>(bn);
      tile.tn_n = static_cast<int32_t>(tn_n);
      tile.w_offset = static_cast<int64_t>(wdata_.size());
      // Layout [tn][kd][kr][kc][tm]: the executor walks (tn, kd, kr,
      // kc) outer and reads one contiguous tm-column per slot.
      wdata_.resize(wdata_.size() +
                    static_cast<size_t>(tn_n * k_vol * tm_n));
      Fixed16* w = wdata_.data() + tile.w_offset;
      for (int64_t tn = 0; tn < tn_n; ++tn)
        for (int64_t kd = 0; kd < Kd_; ++kd)
          for (int64_t kr = 0; kr < Kr_; ++kr)
            for (int64_t kc = 0; kc < Kc_; ++kc)
              for (int64_t tm = 0; tm < tm_n; ++tm)
                *w++ = weights(m0 + tm, n0 + tn, kd, kr, kc);
      tiles_.push_back(tile);
      sum_mn_ += tm_n * tn_n;
    }
    row_ptr_.push_back(static_cast<int64_t>(tiles_.size()));
  }
}

TiledConvStats PackedConvLayer::ModelStats(std::array<int64_t, 3> stride,
                                           int64_t D, int64_t R,
                                           int64_t C) const {
  models::ConvLayerSpec spec;
  spec.M = M_;
  spec.N = N_;
  spec.Kd = Kd_;
  spec.Kr = Kr_;
  spec.Kc = Kc_;
  spec.Sd = stride[0];
  spec.Sr = stride[1];
  spec.Sc = stride[2];
  spec.D = D;
  spec.R = R;
  spec.C = C;
  const PerfModel pm(t_, p_);
  const LayerLatency lat =
      pm.LayerCycles(spec, mask_.has_value() ? &*mask_ : nullptr);
  TiledConvStats stats;
  stats.tile_iterations = lat.tile_iterations;
  stats.blocks_loaded = lat.blocks_loaded;
  stats.blocks_skipped = lat.blocks_skipped;
  stats.modeled_cycles = lat.cycles;
  stats.stall = lat.stall;
  // The simulator counts one MAC per (enabled block element, kernel
  // element, output element); spatial tiles partition D×R×C exactly, so
  // the count factorizes over the surviving-tile channel area.
  stats.macs_executed = sum_mn_ * Kd_ * Kr_ * Kc_ * D * R * C;
  return stats;
}

TiledConvResult PackedConvLayer::Run(const TensorQ& input,
                                     std::array<int64_t, 3> stride,
                                     const PostOps& post,
                                     std::string_view label,
                                     ThreadPool* pool) const {
  obs::TraceScope span("exec/conv");
  if (span.active() && !label.empty()) {
    span.SetName("exec/" + std::string(label));
  }
  HWP_SHAPE_CHECK_MSG(input.rank() == 4, "input must be rank-4 [N][D][R][C]");
  HWP_SHAPE_CHECK_MSG(input.dim(0) == N_, "input channel mismatch: "
                                              << input.dim(0) << " vs " << N_);
  const auto [Sd, Sr, Sc] = stride;
  const int64_t Di = input.dim(1), Ri = input.dim(2), Ci = input.dim(3);
  const int64_t D = OutExtent(Di, Kd_, Sd);
  const int64_t R = OutExtent(Ri, Kr_, Sr);
  const int64_t C = OutExtent(Ci, Kc_, Sc);
  HWP_SHAPE_CHECK_MSG(D > 0 && R > 0 && C > 0, "empty output");
  if (post.has_affine) {
    HWP_SHAPE_CHECK_MSG(post.scale.numel() == M_ && post.shift.numel() == M_,
                        "affine params must be [M]");
  }
  if (post.shortcut != nullptr) {
    HWP_SHAPE_CHECK_MSG(post.shortcut->rank() == 4 &&
                            post.shortcut->dim(0) == M_ &&
                            post.shortcut->dim(1) == D &&
                            post.shortcut->dim(2) == R &&
                            post.shortcut->dim(3) == C,
                        "shortcut shape mismatch");
  }

  TiledConvResult result;
  result.output = TensorQ(Shape{M_, D, R, C});
  Fixed16* out = result.output.data();
  const Fixed16* in = input.data();

  // One task per (output-channel block, output depth): disjoint output
  // slabs, fixed inner order — bitwise identical for any thread count.
  const auto run_slab = [&](int64_t idx) {
    const int64_t bm = idx / D;
    const int64_t d = idx % D;
    const int64_t m0 = bm * t_.Tm;
    const int64_t tm_n = std::min(t_.Tm, M_ - m0);
    const Tile* row_begin = tiles_.data() + row_ptr_[bm];
    const Tile* row_end = tiles_.data() + row_ptr_[bm + 1];

    thread_local kernels::ScratchBuffer<FixedAccum> acc_scratch;
    FixedAccum* acc =
        acc_scratch.Resize(static_cast<size_t>(tm_n * std::min(C, kColBlock)));

    for (int64_t r = 0; r < R; ++r) {
      for (int64_t c0 = 0; c0 < C; c0 += kColBlock) {
        const int64_t cb = std::min(kColBlock, C - c0);
        for (int64_t i = 0; i < tm_n * cb; ++i) acc[i].Reset();
        // Only surviving tiles exist in the packed row: pruned blocks
        // cost nothing here, not even a branch.
        for (const Tile* tile = row_begin; tile != row_end; ++tile) {
          const int64_t n0 = static_cast<int64_t>(tile->bn) * t_.Tn;
          const Fixed16* wt = wdata_.data() + tile->w_offset;
          for (int64_t tn = 0; tn < tile->tn_n; ++tn) {
            const Fixed16* in_chan = in + (n0 + tn) * Di * Ri * Ci;
            for (int64_t kd = 0; kd < Kd_; ++kd) {
              const int64_t id = d * Sd + kd;
              for (int64_t kr = 0; kr < Kr_; ++kr) {
                const int64_t ir = r * Sr + kr;
                const Fixed16* in_row =
                    in_chan + (id * Ri + ir) * Ci + c0 * Sc;
                const Fixed16* w_slot =
                    wt + ((tn * Kd_ + kd) * Kr_ + kr) * Kc_ * tm_n;
                for (int64_t kc = 0; kc < Kc_; ++kc) {
                  kernels::QOuterMacRow(acc, cb, w_slot + kc * tm_n, tm_n,
                                        in_row + kc, Sc, cb);
                }
              }
            }
          }
        }
        // Post-processing unit, per output channel of the block.
        for (int64_t tm = 0; tm < tm_n; ++tm) {
          const int64_t m = m0 + tm;
          const int64_t out_off = ((m * D + d) * R + r) * C + c0;
          kernels::QPostProcessRow(
              acc + tm * cb, cb, post.has_affine,
              post.has_affine ? post.scale[m] : Fixed16{},
              post.has_affine ? post.shift[m] : Fixed16{},
              post.shortcut != nullptr ? post.shortcut->data() + out_off
                                       : nullptr,
              post.relu, out + out_off);
        }
      }
    }
  };

  ThreadPool& tp = pool != nullptr ? *pool : ThreadPool::Get();
  tp.For(0, blocks_m_ * D, run_slab);

  // Timing split from compute: the cycle accounting comes from the
  // analytic model + mask counts, not from walking the loop nest.
  result.stats = ModelStats(stride, D, R, C);

  const TiledConvStats& s = result.stats;
  if (span.active()) {
    if (!label.empty()) span.AddArg("layer", std::string(label));
    span.AddArg("macs", s.macs_executed);
    span.AddArg("blocks_loaded", s.blocks_loaded);
    span.AddArg("blocks_skipped", s.blocks_skipped);
    span.AddArg("modeled_cycles", s.modeled_cycles);
    span.AddArg("packed_tiles", surviving_tiles());
  }
  auto& reg = obs::MetricsRegistry::Get();
  obs::LabelSet labels;
  if (!label.empty()) labels = {{"layer", std::string(label)}};
  reg.GetCounter("exec.runs", labels).Add(1);
  reg.GetCounter("exec.macs_executed", labels).Add(s.macs_executed);
  reg.GetCounter("exec.blocks_loaded", labels).Add(s.blocks_loaded);
  reg.GetCounter("exec.blocks_skipped", labels).Add(s.blocks_skipped);
  reg.GetCounter("exec.modeled_cycles", labels).Add(s.modeled_cycles);
  return result;
}

}  // namespace hwp3d::fpga
