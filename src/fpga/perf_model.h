// Cycle-level performance model of the tiled accelerator
// (Section IV-B.2, Eqs. 19-25), extended with block-enable skipping.
//
// Per tile iteration:
//   t_wgt  = Tm*Tn*Kd*Kr*Kc / p_wgt          (Eq. 19)
//   t_in   = Tn*T'd*T'r*T'c / p_in           (Eq. 20), T'x = (Tx-1)Sx + Kx
//   t_out  = Tm*Td*Tr*Tc / p_out             (Eq. 21)
//   t_comp = Kd*Kr*Kc*Td*Tr*Tc               (Eq. 22)
//   t_L3   = max(t_wgt, t_in, t_comp)        (Eq. 23, double buffering)
//   t_L2   = max(t_L3 * ceil(N/Tn) + t_comp, t_out)   (Eq. 24)
//   t_tot  = ceil(D/Td) ceil(R/Tr) ceil(C/Tc) ceil(M/Tm) t_L2 + t_out (25)
//
// Pruning: the block-enable signal skips the load+compute of pruned
// (m-block, n-block) tiles, so ceil(N/Tn) in Eq. 24 becomes the number of
// ENABLED input blocks for that output block row. The output still has to
// be post-processed and stored, so a fully-pruned row costs
// max(t_comp_min, t_out) — the pipeline still drains one tile.
#pragma once

#include <optional>

#include "core/block_partition.h"
#include "fpga/tiling.h"
#include "models/network_spec.h"

namespace hwp3d::fpga {

// Stall attribution: every cycle of a layer/run is charged to the
// pipeline stage that bound it — the weight load, input load, or MAC
// array (whichever wins Eq. 23's max; ties prefer compute, then
// weights, then input), or the output store when Eq. 24's t_out term or
// the final drain dominates. Invariant: total() equals the modeled
// cycle count, so memory- vs compute-bound layers are directly visible.
struct StallBreakdown {
  int64_t wgt = 0;   // cycles bound by the weight-load port
  int64_t in = 0;    // cycles bound by the input-load port
  int64_t comp = 0;  // cycles bound by the MAC array
  int64_t out = 0;   // cycles bound by the output store / drain
  int64_t total() const { return wgt + in + comp + out; }
  void Accumulate(const StallBreakdown& o, int64_t multiplicity = 1) {
    wgt += o.wgt * multiplicity;
    in += o.in * multiplicity;
    comp += o.comp * multiplicity;
    out += o.out * multiplicity;
  }
};

// Cycle cost and attribution of ONE output-block row (Eq. 24) whose
// block-enable row keeps `enabled` input blocks. Shared by
// PerfModel::LayerCycles and TiledConvSim::Run so the analytic model
// and the functional simulator account cycles identically.
StallBreakdown RowCycleBreakdown(const Ports& ports, int64_t t_wgt,
                                 int64_t t_in, int64_t t_comp, int64_t t_out,
                                 int64_t enabled);

struct LayerLatency {
  int64_t cycles = 0;
  int64_t t_wgt = 0, t_in = 0, t_out = 0, t_comp = 0, t_L3 = 0;
  // Diagnostics.
  int64_t tile_iterations = 0;   // (d,r,c,m) tile count
  int64_t blocks_loaded = 0;     // weight blocks actually loaded
  int64_t blocks_skipped = 0;    // pruned blocks skipped by block-enable
  StallBreakdown stall;          // sums to `cycles`
  double MsAt(double freq_mhz) const {
    return static_cast<double>(cycles) / (freq_mhz * 1e3);
  }
};

class PerfModel {
 public:
  PerfModel(Tiling tiling, Ports ports) : t_(tiling), p_(ports) {}

  // Latency of one CONV layer. When `mask` is provided, its grid must
  // match ceil(M/Tm) x ceil(N/Tn) for the layer and pruned blocks are
  // skipped; otherwise the dense Eq. 24/25 applies.
  LayerLatency LayerCycles(const models::ConvLayerSpec& layer,
                           const core::BlockMask* mask = nullptr) const;

  // Sum over all layers of a network. `masks` (if given) must be indexed
  // like spec.layers, with disabled entries for unpruned layers allowed
  // to be nullptr.
  LayerLatency NetworkCycles(
      const models::NetworkSpec& spec,
      const std::vector<const core::BlockMask*>* masks = nullptr) const;

  const Tiling& tiling() const { return t_; }
  const Ports& ports() const { return p_; }

 private:
  Tiling t_;
  Ports p_;
};

}  // namespace hwp3d::fpga
