// FPGA device catalog and published comparator rows.
//
// The device limits gate the design-space exploration (Eq. 18's BRAM
// bound, DSP count) and the Table III/IV utilization percentages. The
// comparator rows reproduce the published numbers of Table IV for
// implementations we do not simulate (F-C3D [13], the template
// architectures of [18], GPU, CPU); they are data, clearly labeled as
// published values.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hwp3d::fpga {

struct FpgaDevice {
  std::string name;
  int64_t dsp = 0;      // DSP48 slices
  int64_t bram36 = 0;   // 36Kb block RAMs
  int64_t lut = 0;
  int64_t ff = 0;
  int technology_nm = 0;
  double default_freq_mhz = 150.0;
};

// Xilinx ZCU102 (Zynq UltraScale+ ZU9EG) — the paper's board.
FpgaDevice Zcu102();
// Comparator boards of Table IV.
FpgaDevice Zc706();
FpgaDevice Vc709();
FpgaDevice Vus440();

// Catalog lookup by case-insensitive name ("zcu102", "ZC706", ...);
// kNotFound lists the known devices (used by the --device flag).
StatusOr<FpgaDevice> DeviceByName(std::string_view name);

// A published implementation row of Table IV (values quoted from the
// paper; not produced by our models).
struct PublishedRow {
  std::string label;       // e.g. "F-C3D [13]"
  std::string network;     // C3D / R(2+1)D
  std::string device;
  double freq_mhz = 0.0;
  std::string precision;
  int technology_nm = 0;
  double power_w = 0.0;        // <= 0: not reported
  double throughput_gops = 0.0;
  int64_t dsp_used = 0;        // 0: not reported
  double latency_ms = 0.0;
};

// The non-"ours" columns of Table IV.
std::vector<PublishedRow> PublishedComparators();

}  // namespace hwp3d::fpga
