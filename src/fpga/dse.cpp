#include "fpga/dse.h"

#include <algorithm>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwp3d::fpga {

DseResult ExploreDesignSpace(
    const std::vector<const models::NetworkSpec*>& networks,
    const std::vector<const SpecMasks*>& masks, const FpgaDevice& device,
    const DseOptions& options) {
  obs::TraceScope span("dse/explore");
  if (span.active()) span.AddArg("device", device.name);
  HWP_CHECK_MSG(!networks.empty(), "DSE needs at least one network");
  HWP_CHECK_MSG(masks.empty() || masks.size() == networks.size(),
                "masks must be empty or match networks");
  ResourceModel resources;
  DseResult result;

  for (int64_t tm : options.Tm)
    for (int64_t tn : options.Tn)
      for (int64_t td : options.Td)
        for (int64_t tr : options.Tr)
          for (int64_t tc : options.Tc) {
            DseCandidate cand;
            cand.tiling = Tiling{tm, tn, td, tr, tc};
            ++result.evaluated;
            cand.usage = resources.Estimate(cand.tiling, networks);
            cand.feasible = resources.Feasible(cand.usage, device);
            if (!cand.feasible) {
              ++result.infeasible;
              continue;
            }
            PerfModel pm(cand.tiling, options.ports);
            for (size_t i = 0; i < networks.size(); ++i) {
              const SpecMasks* m = masks.empty() ? nullptr : masks[i];
              // Mask grids depend on (Tm, Tn); they only apply when the
              // candidate matches the mask's block config.
              const bool mask_applies = m != nullptr &&
                                        m->block.Tm == tm && m->block.Tn == tn;
              const LayerLatency lat = pm.NetworkCycles(
                  *networks[i], mask_applies ? &m->ptrs : nullptr);
              cand.cycles += lat.cycles;
            }
            cand.latency_ms =
                static_cast<double>(cand.cycles) / (options.freq_mhz * 1e3);
            obs::MetricsRegistry::Get()
                .GetHistogram("dse.candidate_cycles",
                              {{"device", device.name}})
                .Observe(static_cast<double>(cand.cycles));
            result.best.push_back(cand);
          }

  std::sort(result.best.begin(), result.best.end(),
            [](const DseCandidate& a, const DseCandidate& b) {
              return a.cycles < b.cycles;
            });
  if (result.best.size() > options.top_k) {
    result.best.resize(options.top_k);
  }

  auto& reg = obs::MetricsRegistry::Get();
  const obs::LabelSet labels = {{"device", device.name}};
  reg.GetCounter("dse.candidates_evaluated", labels)
      .Add(static_cast<int64_t>(result.evaluated));
  reg.GetCounter("dse.candidates_infeasible", labels)
      .Add(static_cast<int64_t>(result.infeasible));
  reg.GetCounter("dse.candidates_feasible", labels)
      .Add(static_cast<int64_t>(result.evaluated - result.infeasible));
  if (!result.best.empty()) {
    reg.GetGauge("dse.best_cycles", labels)
        .Set(static_cast<double>(result.best.front().cycles));
  }
  if (span.active()) {
    span.AddArg("evaluated", static_cast<int64_t>(result.evaluated));
    span.AddArg("infeasible", static_cast<int64_t>(result.infeasible));
    if (!result.best.empty()) {
      span.AddArg("best_tiling", result.best.front().tiling.ToString());
      span.AddArg("best_cycles", result.best.front().cycles);
    }
  }
  return result;
}

}  // namespace hwp3d::fpga
