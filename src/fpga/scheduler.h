// NetworkScheduler: maps a whole network onto one accelerator design
// point and produces the Table IV row quantities — latency, throughput,
// power, power efficiency, DSP efficiency — plus a per-layer breakdown.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "fpga/device.h"
#include "fpga/perf_model.h"
#include "fpga/power_model.h"
#include "fpga/resource_model.h"
#include "fpga/spec_masks.h"

namespace hwp3d::fpga {

struct LayerBreakdown {
  std::string name;
  std::string group;
  int64_t cycles = 0;
  double ms = 0.0;
  int64_t blocks_loaded = 0;
  int64_t blocks_skipped = 0;
  StallBreakdown stall;  // which stage bound this layer's cycles
};

struct NetworkPerfReport {
  std::string network;
  std::string design;       // e.g. "ours (Tn=8)"
  double freq_mhz = 150.0;
  int64_t total_cycles = 0;
  double latency_ms = 0.0;
  // Work counted for throughput; by default the network's nominal ops
  // (2 ops/MAC of the UNPRUNED model, as the paper reports for its own
  // designs: pruned designs get credited only the surviving ops).
  double ops_counted = 0.0;
  double throughput_gops = 0.0;
  double power_w = 0.0;
  double power_eff_gops_w = 0.0;
  int64_t dsp_used = 0;
  double dsp_utilization = 0.0;   // fraction of device DSPs
  double dsp_eff_gops_dsp = 0.0;
  double bram36_used = 0.0;
  double bram_utilization = 0.0;
  std::vector<LayerBreakdown> layers;
};

class NetworkScheduler {
 public:
  NetworkScheduler(Tiling tiling, Ports ports, FpgaDevice device,
                   double freq_mhz = 0.0 /* 0: device default */);

  // Evaluates one network on this design point. `masks` may be null
  // (unpruned). `ops_counted` overrides the throughput numerator when
  // set (an explicit 0.0 credits zero ops); nullopt picks kept-ops
  // (pruned) or total ops (unpruned) automatically.
  NetworkPerfReport Evaluate(
      const models::NetworkSpec& spec, const SpecMasks* masks = nullptr,
      std::optional<double> ops_counted = std::nullopt) const;

  const ResourceModel& resource_model() const { return resources_; }
  const PowerModel& power_model() const { return power_; }
  ResourceUsage Resources(
      const std::vector<const models::NetworkSpec*>& networks) const;

 private:
  Tiling tiling_;
  Ports ports_;
  FpgaDevice device_;
  double freq_mhz_;
  ResourceModel resources_;
  PowerModel power_;
};

}  // namespace hwp3d::fpga
