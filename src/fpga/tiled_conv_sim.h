// Functional (bit-accurate) simulator of the tiled convolution engine,
// Algorithm 2 of the paper, in Q7.8 fixed point.
//
// The simulator walks the exact loop nest of Algorithm 2: output tiles
// (d, r, c), output-channel blocks m, input-channel blocks n; for each
// (m, n) block the block-enable signal decides whether the weight tile
// and input tile are loaded and the Tm x Tn MAC array runs, or whether
// the iteration is skipped entirely (pruned block). Partial sums live in
// a wide accumulator (DSP48-style) and are narrowed to Q7.8 only when the
// post-processing unit (bias/BN affine, shortcut add, ReLU) stores the
// output tile.
//
// Inputs are pre-padded on the host, as in the paper's implementation:
// the engine computes a valid convolution with I = (O-1)*S + K.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "core/block_partition.h"
#include "fixed/quantize.h"
#include "fpga/perf_model.h"
#include "fpga/tiling.h"

namespace hwp3d::fpga {

// Per-channel post-processing configuration (the post-processing unit of
// Fig. 2). Applied in order: affine (folded BN or bias), shortcut add,
// ReLU.
struct PostOps {
  bool has_affine = false;
  TensorQ scale;  // [M], used when has_affine
  TensorQ shift;  // [M]
  const TensorQ* shortcut = nullptr;  // [M][D][R][C] or null
  bool relu = false;
};

struct TiledConvStats {
  int64_t tile_iterations = 0;  // (d,r,c,m) iterations
  int64_t blocks_loaded = 0;
  int64_t blocks_skipped = 0;
  int64_t macs_executed = 0;
  int64_t modeled_cycles = 0;  // PerfModel cycles for the same run
  // Per-stage cycle attribution, accumulated tile row by tile row with
  // the same accounting as PerfModel (RowCycleBreakdown); stall.total()
  // equals modeled_cycles.
  StallBreakdown stall;
};

struct TiledConvResult {
  TensorQ output;  // [M][D][R][C]
  TiledConvStats stats;
};

class TiledConvSim {
 public:
  TiledConvSim(Tiling tiling, Ports ports) : t_(tiling), p_(ports) {}

  // weights: [M][N][Kd][Kr][Kc]; input: [N][Di][Ri][Ci] (pre-padded).
  // `mask` (optional) must match the ceil(M/Tm) x ceil(N/Tn) grid.
  // `label` names the layer in traces and metrics (e.g. "conv2a");
  // empty runs unlabeled.
  TiledConvResult Run(const TensorQ& weights, const TensorQ& input,
                      std::array<int64_t, 3> stride,
                      const core::BlockMask* mask, const PostOps& post,
                      std::string_view label = {}) const;

  const Tiling& tiling() const { return t_; }

 private:
  Tiling t_;
  Ports p_;
};

// Dense reference 3D convolution in the same fixed-point arithmetic
// (single wide accumulator per output), for validating the simulator.
TensorQ ReferenceConv3dFixed(const TensorQ& weights, const TensorQ& input,
                             std::array<int64_t, 3> stride);

// Host-side helpers used when mapping whole networks onto the engine.
TensorQ PadInput(const TensorQ& input, std::array<int64_t, 3> pad);
TensorQ MaxPool3dFixed(const TensorQ& input, std::array<int64_t, 3> kernel,
                       std::array<int64_t, 3> stride);

}  // namespace hwp3d::fpga
