// FPGA resource model (Section IV-B.1, Eqs. 14-18) plus calibrated
// estimates for the Vivado-reported quantities of Table III.
//
// Two BRAM numbers are produced:
//  * eq18: the paper's aggregate bound ceil((B_out+B_in+B_wgt)*Nbit/36K),
//    used as the DSE feasibility constraint;
//  * partitioned: an estimate of what Vivado reports after HLS array
//    partitioning (each partition consumes whole BRAM18 primitives),
//    with a documented constant for post-processing buffers / DMA FIFOs.
//
// DSP: Tm*Tn MACs plus a calibrated post-processing/control overhead.
// LUT/FF: linear models calibrated to the paper's two design points.
#pragma once

#include <vector>

#include "fpga/device.h"
#include "fpga/tiling.h"
#include "models/network_spec.h"

namespace hwp3d::fpga {

struct BufferSizes {
  int64_t K_size = 0;  // max_i Kd*Kr*Kc (Eq. 17)
  int64_t I_size = 0;  // max_i input-tile volume (Eq. 17)
  int64_t B_out = 0;   // Eq. 14 (elements, double-buffered)
  int64_t B_in = 0;    // Eq. 15
  int64_t B_wgt = 0;   // Eq. 16
};

struct ResourceUsage {
  BufferSizes buffers;
  int64_t bram36_eq18 = 0;         // Eq. 18 left-hand side
  int64_t bram18_partitioned = 0;  // partition-granularity estimate
  double bram36_partitioned = 0.0; // bram18/2 (matches Vivado's x.5 counts)
  int64_t dsp = 0;
  int64_t lut = 0;
  int64_t ff = 0;
};

class ResourceModel {
 public:
  struct Calibration {
    int64_t n_bit = 16;          // 16-bit fixed point
    // DSP overhead beyond the Tm*Tn MAC array: post-processing units
    // (BN multiply-add, shortcut add) and address generation. Calibrated
    // to Table III: overhead = base + per_tn * Tn.
    int64_t dsp_overhead_base = 175;
    int64_t dsp_overhead_per_tn = 1;
    // LUT ~= per MAC (adder tree + PE control); FF = base + per MAC.
    double lut_per_mac = 144.5;
    double ff_base = 26000.0;
    double ff_per_mac = 48.8;
    // Partitioned-BRAM mapping: buffers partitioned along the unrolled
    // dims (W: m and n; I: n; O: m), each partition occupying whole
    // BRAM18s; constant extra for BN/bias/shortcut buffers, the
    // block-enable bitmap and AXI FIFOs.
    double misc_bram36 = 102.5;
  };

  ResourceModel() = default;
  explicit ResourceModel(Calibration cal) : cal_(cal) {}

  // Buffer sizes need the network-wide K_size/I_size maxima (Eq. 17);
  // pass every network the bitstream must support.
  BufferSizes ComputeBuffers(
      const Tiling& t,
      const std::vector<const models::NetworkSpec*>& networks) const;

  // When `device` is given, the partitioned BRAM estimate is capped at
  // the device's physical capacity: an over-subscribed estimate means
  // Vivado maps the excess to LUTRAM/optimizes, reporting 100%
  // utilization (exactly the paper's (64,16) row in Table III).
  ResourceUsage Estimate(const Tiling& t,
                         const std::vector<const models::NetworkSpec*>& networks,
                         const FpgaDevice* device = nullptr) const;

  // DSE feasibility: Eq. 18 BRAM bound and the DSP bound on the device.
  bool Feasible(const ResourceUsage& usage, const FpgaDevice& device) const;

  const Calibration& calibration() const { return cal_; }

 private:
  Calibration cal_;
};

}  // namespace hwp3d::fpga
