#include "fpga/model_compiler.h"

#include "common/error.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace hwp3d::fpga {

namespace {

// Quantizes a folded BN (or identity) into Q7.8 post-op parameters.
PostOps FoldBn(nn::BatchNorm3d* bn, bool relu) {
  PostOps post;
  post.relu = relu;
  if (bn != nullptr) {
    TensorF scale, shift;
    bn->FoldedAffine(scale, shift);
    post.has_affine = true;
    post.scale = Quantize(scale);
    post.shift = Quantize(shift);
  }
  return post;
}

}  // namespace

StatusOr<CompiledTinyR2Plus1d> CompiledTinyR2Plus1d::Compile(
    models::TinyR2Plus1d& model, CompiledModelOptions options) {
  const auto prunable = model.PrunableConvs();
  if (!options.masks.empty() && options.masks.size() != prunable.size()) {
    return InvalidArgumentError(StrFormat(
        "mask count %zu does not match the %zu prunable convs of '%s'; "
        "pass one mask per PrunableConvs() entry or none for dense "
        "execution",
        options.masks.size(), prunable.size(), model.name().c_str()));
  }
  for (size_t i = 0; i < options.masks.size(); ++i) {
    core::BlockPartition part(prunable[i]->weight().value.shape(),
                              options.tiling.block());
    const core::BlockMask& mask = options.masks[i];
    if (mask.blocks_m != part.blocks_m() || mask.blocks_n != part.blocks_n()) {
      return InvalidArgumentError(StrFormat(
          "%s: mask grid %lldx%lld does not match the %lldx%lld block "
          "grid induced by tiling %s — re-run pruning with block size "
          "(Tm=%lld, Tn=%lld) or change the tiling",
          prunable[i]->name().c_str(), (long long)mask.blocks_m,
          (long long)mask.blocks_n, (long long)part.blocks_m(),
          (long long)part.blocks_n(),
          options.tiling.ToString().c_str(), (long long)options.tiling.Tm,
          (long long)options.tiling.Tn));
    }
  }
  try {
    return CompiledTinyR2Plus1d(model, std::move(options));
  } catch (const Error& e) {
    // Anything the pre-validation above missed is a library bug, but
    // surface it as a Status rather than tearing the server down.
    return InternalError(StrFormat("model compilation failed: %s", e.what()));
  }
}

CompiledTinyR2Plus1d::ConvStage CompiledTinyR2Plus1d::MakeStage(
    nn::Conv3d& conv, nn::BatchNorm3d* bn, bool relu,
    const core::BlockMask* mask) const {
  ConvStage stage;
  stage.name = conv.name();
  stage.weights = Quantize(conv.weight().value);
  stage.stride = conv.config().stride;
  stage.padding = conv.config().padding;
  stage.post = FoldBn(bn, relu);
  if (mask != nullptr) {
    core::BlockPartition part(conv.weight().value.shape(),
                              options_.tiling.block());
    HWP_CHECK_MSG(mask->blocks_m == part.blocks_m() &&
                      mask->blocks_n == part.blocks_n(),
                  conv.name() << ": mask grid does not match tiling "
                              << options_.tiling.ToString());
    stage.mask = *mask;
  }
  if (exec_ == ExecMode::kFast) {
    stage.packed = std::make_shared<PackedConvLayer>(
        stage.weights, options_.tiling, options_.ports,
        stage.mask.has_value() ? &*stage.mask : nullptr);
  }
  return stage;
}

TensorQ CompiledTinyR2Plus1d::RunStage(const ConvStage& stage,
                                       const TensorQ& x,
                                       const TensorQ* shortcut,
                                       CompiledRunStats* stats) const {
  const TensorQ padded = PadInput(x, stage.padding);
  PostOps post = stage.post;
  post.shortcut = shortcut;
  const TiledConvResult r =
      exec_ == ExecMode::kFast
          ? stage.packed->Run(padded, stage.stride, post, stage.name)
          : sim_.Run(stage.weights, padded, stage.stride,
                     stage.mask.has_value() ? &*stage.mask : nullptr, post,
                     stage.name);
  if (stats != nullptr) {
    stats->modeled_cycles += r.stats.modeled_cycles;
    stats->blocks_loaded += r.stats.blocks_loaded;
    stats->blocks_skipped += r.stats.blocks_skipped;
    stats->macs_executed += r.stats.macs_executed;
  }
  return r.output;
}

TensorQ CompiledTinyR2Plus1d::RunConv2Plus1d(const ConvStage& spatial,
                                             const ConvStage& temporal,
                                             const TensorQ& x,
                                             const TensorQ* shortcut,
                                             CompiledRunStats* stats) const {
  const TensorQ mid = RunStage(spatial, x, nullptr, stats);
  return RunStage(temporal, mid, shortcut, stats);
}

CompiledTinyR2Plus1d::CompiledTinyR2Plus1d(models::TinyR2Plus1d& model,
                                           CompiledModelOptions options)
    : options_(std::move(options)),
      exec_(ResolveExecMode(options_.executor, ExecMode::kSimulate)),
      sim_(options_.tiling, options_.ports) {
  const auto prunable = model.PrunableConvs();
  HWP_CHECK_MSG(options_.masks.empty() ||
                    options_.masks.size() == prunable.size(),
                "mask count " << options_.masks.size() << " vs "
                              << prunable.size() << " prunable convs");
  const auto mask_for = [&](size_t i) -> const core::BlockMask* {
    return options_.masks.empty() ? nullptr : &options_.masks[i];
  };

  // Stem: spatial (+bn_mid+relu) -> temporal (+stem_bn+relu). Unpruned.
  stem_spatial_ =
      MakeStage(model.stem().spatial(), &model.stem().bn_mid(), true, nullptr);
  stem_temporal_ =
      MakeStage(model.stem().temporal(), &model.stem_bn(), true, nullptr);

  // Residual stages: prunable conv order is
  // [c1.spatial, c1.temporal, c2.spatial, c2.temporal] per stage.
  const auto build_block = [&](nn::ResidualBlock& rb, size_t base) {
    Block b;
    b.c1_spatial = MakeStage(rb.conv1().spatial(), &rb.conv1().bn_mid(), true,
                             mask_for(base + 0));
    b.c1_temporal =
        MakeStage(rb.conv1().temporal(), &rb.bn1(), true, mask_for(base + 1));
    b.c2_spatial = MakeStage(rb.conv2().spatial(), &rb.conv2().bn_mid(), true,
                             mask_for(base + 2));
    // bn2's affine is applied before the shortcut add + final ReLU.
    b.c2_temporal =
        MakeStage(rb.conv2().temporal(), &rb.bn2(), true, mask_for(base + 3));
    if (rb.has_projection()) {
      b.shortcut =
          MakeStage(*rb.shortcut_conv(), rb.shortcut_bn(), false, nullptr);
    }
    return b;
  };
  stage1_ = build_block(model.stage1(), 0);
  stage2_ = build_block(model.stage2(), 4);

  fc_weight_ = model.fc().weight().value;
  fc_bias_ = model.fc().bias().value;
}

TensorF CompiledTinyR2Plus1d::Infer(const TensorF& clip,
                                    CompiledRunStats* stats) const {
  HWP_TRACE_SCOPE("compiled/Infer");
  HWP_SHAPE_CHECK_MSG(clip.rank() == 4,
                      "Infer expects a [C][D][H][W] clip, got "
                          << clip.shape().ToString());
  TensorQ x = Quantize(clip);

  // Stem.
  x = RunConv2Plus1d(stem_spatial_, stem_temporal_, x, nullptr, stats);

  // Residual stages.
  const auto run_block = [&](const Block& b, const TensorQ& in) {
    const TensorQ shortcut =
        b.shortcut.has_value() ? RunStage(*b.shortcut, in, nullptr, stats)
                               : in;
    TensorQ h = RunConv2Plus1d(b.c1_spatial, b.c1_temporal, in, nullptr,
                               stats);
    // conv2's temporal stage applies bn2, adds the shortcut tile and the
    // final ReLU inside the post-processing unit.
    return RunConv2Plus1d(b.c2_spatial, b.c2_temporal, h, &shortcut, stats);
  };
  x = run_block(stage1_, x);
  x = run_block(stage2_, x);

  // Host side: global average pool + FC, in float (as in the paper the
  // FC layer contributes negligibly and runs on the PS).
  const int64_t C = x.dim(0);
  const int64_t vol = x.dim(1) * x.dim(2) * x.dim(3);
  TensorF pooled(Shape{C});
  for (int64_t c = 0; c < C; ++c) {
    double acc = 0.0;
    for (int64_t i = 0; i < vol; ++i) acc += x[c * vol + i].ToFloat();
    pooled[c] = static_cast<float>(acc / static_cast<double>(vol));
  }
  const int64_t K = fc_weight_.dim(0);
  TensorF logits(Shape{K});
  for (int64_t k = 0; k < K; ++k) {
    double acc = fc_bias_[k];
    for (int64_t c = 0; c < C; ++c) acc += fc_weight_(k, c) * pooled[c];
    logits[k] = static_cast<float>(acc);
  }
  return logits;
}

int CompiledTinyR2Plus1d::Classify(const TensorF& clip,
                                   CompiledRunStats* stats) const {
  const TensorF logits = Infer(clip, stats);
  int best = 0;
  for (int64_t k = 1; k < logits.numel(); ++k) {
    if (logits[k] > logits[best]) best = static_cast<int>(k);
  }
  return best;
}

}  // namespace hwp3d::fpga
