#include "fpga/bandwidth_model.h"

#include "common/error.h"
#include "tensor/shape.h"

namespace hwp3d::fpga {

LayerTraffic BandwidthModel::LayerBytes(const models::ConvLayerSpec& l,
                                        const core::BlockMask* mask) const {
  LayerTraffic t;
  const int64_t blocks_m = CeilDiv(l.M, tiling_.Tm);
  const int64_t blocks_n = CeilDiv(l.N, tiling_.Tn);
  if (mask != nullptr) {
    HWP_CHECK_MSG(mask->blocks_m == blocks_m && mask->blocks_n == blocks_n,
                  l.name << ": mask grid mismatch in bandwidth model");
  }
  const int64_t spatial_tiles = CeilDiv(l.D, tiling_.Td) *
                                CeilDiv(l.R, tiling_.Tr) *
                                CeilDiv(l.C, tiling_.Tc);
  const int64_t k_vol = l.Kd * l.Kr * l.Kc;
  const int64_t in_tile = ((tiling_.Td - 1) * l.Sd + l.Kd) *
                          ((tiling_.Tr - 1) * l.Sr + l.Kr) *
                          ((tiling_.Tc - 1) * l.Sc + l.Kc);
  const double bpe = static_cast<double>(bytes_per_element_);

  int64_t enabled_blocks = 0;
  for (int64_t bm = 0; bm < blocks_m; ++bm) {
    enabled_blocks +=
        mask != nullptr ? mask->CountEnabledInRow(bm) : blocks_n;
  }
  // Weight tiles are re-fetched for every spatial tile (the weight
  // buffer holds exactly one block, Section IV-A).
  t.weight_bytes = bpe * static_cast<double>(spatial_tiles) *
                   static_cast<double>(enabled_blocks) *
                   static_cast<double>(tiling_.Tm * tiling_.Tn * k_vol);
  // Input tiles: one fetch per enabled (m-row, n-block) pair per spatial
  // tile; the same receptive field is re-read for each m-row.
  t.input_bytes = bpe * static_cast<double>(spatial_tiles) *
                  static_cast<double>(enabled_blocks) *
                  static_cast<double>(tiling_.Tn * in_tile);
  // Output tiles: written once per (m, d, r, c) tile.
  t.output_bytes = bpe * static_cast<double>(spatial_tiles * blocks_m) *
                   static_cast<double>(tiling_.Tm * tiling_.Td * tiling_.Tr *
                                       tiling_.Tc);
  return t;
}

NetworkTraffic BandwidthModel::NetworkBytes(const models::NetworkSpec& spec,
                                            const SpecMasks* masks) const {
  if (masks != nullptr) {
    HWP_CHECK_MSG(masks->ptrs.size() == spec.layers.size(),
                  "mask list does not match spec");
  }
  NetworkTraffic out;
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    const core::BlockMask* mask =
        masks != nullptr ? masks->ptrs[i] : nullptr;
    const LayerTraffic t = LayerBytes(spec.layers[i], mask);
    out.totals.weight_bytes += t.weight_bytes;
    out.totals.input_bytes += t.input_bytes;
    out.totals.output_bytes += t.output_bytes;
    out.per_layer.push_back(t);
  }
  return out;
}

}  // namespace hwp3d::fpga
