#include "fpga/spec_masks.h"

#include "common/rng.h"
#include "core/projection.h"
#include "tensor/init.h"

namespace hwp3d::fpga {

SpecMasks GenerateSpecMasks(const models::NetworkSpec& spec,
                            core::BlockConfig block, uint64_t seed) {
  SpecMasks out;
  out.block = block;
  Rng rng(seed);
  out.storage.reserve(spec.layers.size());
  for (const auto& l : spec.layers) {
    const Shape wshape{l.M, l.N, l.Kd, l.Kr, l.Kc};
    core::BlockPartition part(wshape, block);
    if (l.eta <= 0.0) {
      out.storage.push_back(part.FullMask());
      out.kept_params += static_cast<double>(l.params());
      out.kept_macs += l.macs();
      continue;
    }
    // Same projection code path a trained model takes; random weights
    // make the choice of surviving blocks uniform, which is all that
    // matters for counting and for Eq. 24's per-row trip counts.
    TensorF w(wshape);
    FillNormal(w, rng, 0.0f, 1.0f);
    core::ProjectionResult r = core::PlanBlockSparse(w, part, l.eta);
    const int64_t kept = part.EnabledParams(r.mask);
    out.kept_params += static_cast<double>(kept);
    out.kept_macs += static_cast<double>(kept) *
                     static_cast<double>(l.D * l.R * l.C);
    out.storage.push_back(std::move(r.mask));
  }
  // Build the pointer view: null for layers without pruning so the dense
  // path (no per-row accounting) is used.
  out.ptrs.reserve(spec.layers.size());
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    out.ptrs.push_back(spec.layers[i].eta > 0.0 ? &out.storage[i] : nullptr);
  }
  return out;
}

}  // namespace hwp3d::fpga
