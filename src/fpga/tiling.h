// Tiling configuration of the accelerator (Section IV-B).
//
// Five tiling factors (Tm, Tn, Td, Tr, Tc) tile the output channels,
// input channels, and the three feature-map dimensions. (Tm, Tn) is also
// the pruning block size — the co-design at the heart of the paper.
#pragma once

#include <cstdint>
#include <string>

#include "core/block_partition.h"

namespace hwp3d::fpga {

struct Tiling {
  int64_t Tm = 64;
  int64_t Tn = 8;
  int64_t Td = 4;
  int64_t Tr = 14;
  int64_t Tc = 14;

  core::BlockConfig block() const { return {Tm, Tn}; }
  std::string ToString() const;
};

// Memory-port widths in elements transferred per cycle for weights,
// input features, and output features (p_wgt, p_in, p_out in Eqs. 19-21).
// `double_buffered` models the paper's ping-pong buffers: loads overlap
// compute (Eq. 23's max); turning it off serializes load -> compute ->
// store, the ablation baseline.
struct Ports {
  int64_t p_wgt = 8;
  int64_t p_in = 8;
  int64_t p_out = 8;
  bool double_buffered = true;
};

// The two design points evaluated in the paper.
inline Tiling PaperTilingTn8() { return {64, 8, 4, 14, 14}; }
inline Tiling PaperTilingTn16() { return {64, 16, 4, 14, 14}; }

}  // namespace hwp3d::fpga
