#include "fpga/scheduler.h"

#include "common/error.h"
#include "common/strings.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwp3d::fpga {

NetworkScheduler::NetworkScheduler(Tiling tiling, Ports ports,
                                   FpgaDevice device, double freq_mhz)
    : tiling_(tiling),
      ports_(ports),
      device_(std::move(device)),
      freq_mhz_(freq_mhz > 0.0 ? freq_mhz : device_.default_freq_mhz) {}

ResourceUsage NetworkScheduler::Resources(
    const std::vector<const models::NetworkSpec*>& networks) const {
  return resources_.Estimate(tiling_, networks);
}

NetworkPerfReport NetworkScheduler::Evaluate(
    const models::NetworkSpec& spec, const SpecMasks* masks,
    std::optional<double> ops_counted) const {
  if (masks != nullptr) {
    HWP_CHECK_MSG(masks->ptrs.size() == spec.layers.size(),
                  "mask list does not match spec layers");
  }
  obs::TraceScope span("sched/evaluate");
  if (span.active()) span.SetName("sched/" + spec.name);
  NetworkPerfReport r;
  r.network = spec.name;
  r.design = StrFormat("%s %s", device_.name.c_str(),
                       tiling_.ToString().c_str());
  r.freq_mhz = freq_mhz_;

  auto& reg = obs::MetricsRegistry::Get();
  const obs::LabelSet net_labels = {{"network", spec.name}};
  auto& layer_cycles =
      reg.GetHistogram("sched.layer_cycles", net_labels);
  PerfModel pm(tiling_, ports_);
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    const core::BlockMask* mask = masks != nullptr ? masks->ptrs[i] : nullptr;
    const LayerLatency lat = pm.LayerCycles(spec.layers[i], mask);
    LayerBreakdown lb;
    lb.name = spec.layers[i].name;
    lb.group = spec.layers[i].group;
    lb.cycles = lat.cycles;
    lb.ms = lat.MsAt(freq_mhz_);
    lb.blocks_loaded = lat.blocks_loaded;
    lb.blocks_skipped = lat.blocks_skipped;
    lb.stall = lat.stall;
    r.layers.push_back(lb);
    r.total_cycles += lat.cycles;
    layer_cycles.Observe(static_cast<double>(lat.cycles));
    reg.GetCounter("sched.blocks_loaded", net_labels).Add(lat.blocks_loaded);
    reg.GetCounter("sched.blocks_skipped", net_labels)
        .Add(lat.blocks_skipped);
  }
  r.latency_ms = static_cast<double>(r.total_cycles) / (freq_mhz_ * 1e3);
  reg.GetCounter("sched.evaluations", net_labels).Add(1);
  if (span.active()) {
    span.AddArg("design", r.design);
    span.AddArg("total_cycles", r.total_cycles);
    span.AddArg("latency_ms", r.latency_ms);
  }

  if (ops_counted.has_value()) {
    r.ops_counted = *ops_counted;
  } else if (masks != nullptr) {
    r.ops_counted = 2.0 * masks->kept_macs;  // surviving work only
  } else {
    r.ops_counted = spec.TotalOps();
  }
  r.throughput_gops = r.ops_counted / 1e9 / (r.latency_ms / 1e3);

  const ResourceUsage usage = resources_.Estimate(tiling_, {&spec}, &device_);
  r.power_w = power_.Estimate(usage);
  r.power_eff_gops_w = r.throughput_gops / r.power_w;
  r.dsp_used = usage.dsp;
  r.dsp_utilization =
      static_cast<double>(usage.dsp) / static_cast<double>(device_.dsp);
  r.dsp_eff_gops_dsp = r.throughput_gops / static_cast<double>(usage.dsp);
  r.bram36_used = usage.bram36_partitioned;
  r.bram_utilization = r.bram36_used / static_cast<double>(device_.bram36);
  return r;
}

}  // namespace hwp3d::fpga
