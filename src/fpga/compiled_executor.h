// Fast-path compiled executor: block-CSR pre-packed weights + Q7.8
// micro-kernels, with timing split from compute.
//
// TiledConvSim is the oracle: it walks Algorithm 2 cycle-by-cycle,
// counting every MAC and attributing every stall — perfect for DSE and
// ablations, far too slow for serving. PackedConvLayer is the serving
// counterpart of the same layer:
//
//  * Compute is functional. At pack time the quantized weight tensor is
//    re-laid-out into a block-CSR grid of Tm×Tn×Kd×Kr×Kc tiles — one
//    row list per output-channel block, PRUNED TILES PHYSICALLY ELIDED
//    — so per-request work touches only surviving tiles. This mirrors
//    the paper's co-design (the pruning block IS the tile the engine
//    loads): block-enable low means the tile simply isn't in the packed
//    stream, and skipping it costs zero wall-clock instead of a
//    walked-and-skipped loop iteration. Within a tile, weights are
//    stored [tn][kd][kr][kc][tm] so the inner loops stream one packed
//    weight column against one input row (kernels::QOuterMacRow).
//  * Timing is analytic. modeled_cycles / blocks_loaded / blocks_skipped
//    / stall come from PerfModel::LayerCycles + the mask's block counts
//    — the same accounting the simulator reproduces step by step (their
//    equality is asserted by sim_perf_consistency_test and
//    compiled_executor_test), so the cycle model stays bit-for-bit
//    intact while compute no longer pays for it.
//
// Results are bitwise identical to TiledConvSim::Run: products
// accumulate exactly in 64-bit (order-independent), narrowing and the
// post-processing unit reuse the simulator's Fixed16 arithmetic in the
// same order. Output-channel blocks × output depth fan out on the
// hwp3d::ThreadPool; each task owns a disjoint output slab, so results
// are also thread-count invariant.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/block_partition.h"
#include "fixed/quantize.h"
#include "fpga/tiled_conv_sim.h"
#include "fpga/tiling.h"

namespace hwp3d {
class ThreadPool;
}

namespace hwp3d::fpga {

// Which engine executes compiled conv stages.
//  kSimulate — TiledConvSim, step-by-step cycle accounting (oracle).
//  kFast     — PackedConvLayer, pre-packed tiles + analytic timing.
enum class ExecMode { kSimulate, kFast };

const char* ExecModeName(ExecMode mode);

// "sim"/"simulate" -> kSimulate, "fast" -> kFast; nullopt otherwise.
std::optional<ExecMode> ParseExecMode(std::string_view name);

// Executor selection: an explicit request wins, else the HWP_EXEC
// environment variable (sim|fast; invalid values warn and are
// ignored), else `fallback`. Serving defaults to kFast, direct
// CompiledTinyR2Plus1d users (DSE, ablation benches) to kSimulate.
ExecMode ResolveExecMode(std::optional<ExecMode> requested,
                         ExecMode fallback);

// One conv layer's weights packed for fast execution (see file
// comment). Immutable after construction; Run is const and safe to
// call concurrently, so serving replicas share one PackedConvLayer.
class PackedConvLayer {
 public:
  // weights: [M][N][Kd][Kr][Kc] quantized. `mask` (optional) must match
  // the ceil(M/Tm) x ceil(N/Tn) grid; its pruned tiles are elided from
  // the packed stream.
  PackedConvLayer(const TensorQ& weights, const Tiling& tiling,
                  const Ports& ports, const core::BlockMask* mask);

  // Mirror of TiledConvSim::Run (same shapes, same pre-padded input,
  // same PostOps), bitwise identical output and identical stats.
  // `pool` overrides the process-wide ThreadPool (tests use standalone
  // pools to prove thread-count invariance); null uses ThreadPool::Get.
  TiledConvResult Run(const TensorQ& input, std::array<int64_t, 3> stride,
                      const PostOps& post, std::string_view label = {},
                      ThreadPool* pool = nullptr) const;

  // Packed-stream footprint: surviving tiles only.
  int64_t packed_weights() const {
    return static_cast<int64_t>(wdata_.size());
  }
  int64_t surviving_tiles() const {
    return static_cast<int64_t>(tiles_.size());
  }
  int64_t total_tiles() const { return blocks_m_ * blocks_n_; }

 private:
  struct Tile {
    int32_t bn = 0;       // input-channel block index
    int32_t tn_n = 0;     // channels in this block (partial at the edge)
    int64_t w_offset = 0; // into wdata_, layout [tn][kd][kr][kc][tm]
  };

  // Analytic stats for one run on a D×R×C output (PerfModel + mask).
  TiledConvStats ModelStats(std::array<int64_t, 3> stride, int64_t D,
                            int64_t R, int64_t C) const;

  Tiling t_;
  Ports p_;
  int64_t M_ = 0, N_ = 0, Kd_ = 0, Kr_ = 0, Kc_ = 0;
  int64_t blocks_m_ = 0, blocks_n_ = 0;
  std::vector<Tile> tiles_;      // rows concatenated in bm order
  std::vector<int64_t> row_ptr_; // [blocks_m_+1] offsets into tiles_
  std::vector<Fixed16> wdata_;   // packed tile weights, pruned elided
  std::optional<core::BlockMask> mask_;  // kept for the analytic stats
  int64_t sum_mn_ = 0;  // Σ over surviving tiles of tm_n*tn_n (for MACs)
};

}  // namespace hwp3d::fpga
