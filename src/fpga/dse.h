// Design-space exploration over the five tiling factors (Section IV-B).
//
// Enumerates (Tm, Tn, Td, Tr, Tc) candidates, discards points violating
// the device's BRAM (Eq. 18) and DSP bounds, evaluates the latency model
// on the target network(s), and ranks the survivors. This is the tool
// that justifies the paper's chosen (64, 8, 4, 14, 14) / (64, 16, ...)
// design points.
#pragma once

#include <vector>

#include "fpga/scheduler.h"

namespace hwp3d::fpga {

struct DseCandidate {
  Tiling tiling;
  int64_t cycles = 0;       // summed over all target networks
  double latency_ms = 0.0;
  ResourceUsage usage;
  bool feasible = false;
};

struct DseOptions {
  std::vector<int64_t> Tm = {16, 32, 64, 128};
  std::vector<int64_t> Tn = {4, 8, 16, 32};
  std::vector<int64_t> Td = {1, 2, 4, 8};
  std::vector<int64_t> Tr = {7, 14, 28};
  std::vector<int64_t> Tc = {7, 14, 28};
  Ports ports;
  double freq_mhz = 150.0;
  // Keep at most this many feasible candidates (best first).
  size_t top_k = 10;
};

struct DseResult {
  std::vector<DseCandidate> best;  // feasible, sorted by latency
  size_t evaluated = 0;
  size_t infeasible = 0;
};

// `networks`: all networks the bitstream must run (their masks may be
// null = unpruned). Buffer maxima (Eq. 17) span all of them.
DseResult ExploreDesignSpace(
    const std::vector<const models::NetworkSpec*>& networks,
    const std::vector<const SpecMasks*>& masks, const FpgaDevice& device,
    const DseOptions& options);

}  // namespace hwp3d::fpga
