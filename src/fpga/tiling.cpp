#include "fpga/tiling.h"

#include "common/strings.h"

namespace hwp3d::fpga {

std::string Tiling::ToString() const {
  return StrFormat("(Tm=%lld, Tn=%lld, Td=%lld, Tr=%lld, Tc=%lld)",
                   static_cast<long long>(Tm), static_cast<long long>(Tn),
                   static_cast<long long>(Td), static_cast<long long>(Tr),
                   static_cast<long long>(Tc));
}

}  // namespace hwp3d::fpga
