#include "fpga/perf_model.h"

#include <algorithm>
#include <array>
#include <utility>

#include "common/error.h"
#include "tensor/shape.h"

namespace hwp3d::fpga {

namespace {

// Distinct output-tile extents along one axis with their multiplicities:
// e.g. D = 7 with Td = 4 yields one full tile of 4 and one partial of 3.
// HLS tile loops run with variable bounds min(Tx, X - x0), so partial
// tiles cost proportionally fewer cycles — without this refinement the
// paper's Eq. 22 over-charges conv5_x (2x7x7 outputs on 4x14x14 tiles)
// by ~8x and flattens the pruning speedup.
struct TileExtents {
  int64_t full_count = 0;
  int64_t full_extent = 0;
  int64_t partial_extent = 0;  // 0 when the axis divides evenly
};

TileExtents SplitAxis(int64_t extent, int64_t tile) {
  TileExtents e;
  e.full_count = extent / tile;
  e.full_extent = tile;
  e.partial_extent = extent % tile;
  return e;
}

}  // namespace

StallBreakdown RowCycleBreakdown(const Ports& ports, int64_t t_wgt,
                                 int64_t t_in, int64_t t_comp, int64_t t_out,
                                 int64_t enabled) {
  StallBreakdown b;
  if (enabled <= 0) {
    // Nothing to compute: the post-processing unit still emits the
    // (bias/BN/shortcut) output tile.
    b.out = t_out;
    return b;
  }
  if (!ports.double_buffered) {
    // Serial load -> compute -> store: each phase is charged as-is.
    b.wgt = t_wgt * enabled;
    b.in = t_in * enabled;
    b.comp = t_comp * enabled;
    b.out = t_out;
    return b;
  }
  // Double buffering (Eq. 23): the overlapped phase costs max(t_wgt,
  // t_in, t_comp) per block; charge it to the stage that bound it.
  const int64_t t_l3 = std::max({t_wgt, t_in, t_comp});
  if (t_comp >= t_wgt && t_comp >= t_in) {
    b.comp = t_l3 * enabled;
  } else if (t_wgt >= t_in) {
    b.wgt = t_l3 * enabled;
  } else {
    b.in = t_l3 * enabled;
  }
  b.comp += t_comp;  // last block's pipeline drain (Eq. 24)
  const int64_t inner = t_l3 * enabled + t_comp;
  if (t_out > inner) b.out = t_out - inner;  // store-bound row
  return b;
}

LayerLatency PerfModel::LayerCycles(const models::ConvLayerSpec& l,
                                    const core::BlockMask* mask) const {
  LayerLatency out;
  const int64_t k_vol = l.Kd * l.Kr * l.Kc;

  // Reported per-tile quantities use full-tile extents (Eqs. 19-22).
  {
    const int64_t tile_d = (t_.Td - 1) * l.Sd + l.Kd;
    const int64_t tile_r = (t_.Tr - 1) * l.Sr + l.Kr;
    const int64_t tile_c = (t_.Tc - 1) * l.Sc + l.Kc;
    out.t_wgt = CeilDiv(t_.Tm * t_.Tn * k_vol, p_.p_wgt);
    out.t_in = CeilDiv(t_.Tn * tile_d * tile_r * tile_c, p_.p_in);
    out.t_out = CeilDiv(t_.Tm * t_.Td * t_.Tr * t_.Tc, p_.p_out);
    out.t_comp = k_vol * t_.Td * t_.Tr * t_.Tc;
    out.t_L3 = std::max({out.t_wgt, out.t_in, out.t_comp});
  }

  const int64_t blocks_m = CeilDiv(l.M, t_.Tm);
  const int64_t blocks_n = CeilDiv(l.N, t_.Tn);
  if (mask != nullptr) {
    HWP_CHECK_MSG(mask->blocks_m == blocks_m && mask->blocks_n == blocks_n,
                  l.name << ": mask grid " << mask->blocks_m << "x"
                         << mask->blocks_n << " vs layer " << blocks_m << "x"
                         << blocks_n);
  }

  const TileExtents ed = SplitAxis(l.D, t_.Td);
  const TileExtents er = SplitAxis(l.R, t_.Tr);
  const TileExtents ec = SplitAxis(l.C, t_.Tc);
  const std::array<std::pair<int64_t, int64_t>, 2> d_opts = {
      std::make_pair(ed.full_count, ed.full_extent),
      std::make_pair(ed.partial_extent > 0 ? int64_t{1} : int64_t{0},
                     ed.partial_extent)};
  const std::array<std::pair<int64_t, int64_t>, 2> r_opts = {
      std::make_pair(er.full_count, er.full_extent),
      std::make_pair(er.partial_extent > 0 ? int64_t{1} : int64_t{0},
                     er.partial_extent)};
  const std::array<std::pair<int64_t, int64_t>, 2> c_opts = {
      std::make_pair(ec.full_count, ec.full_extent),
      std::make_pair(ec.partial_extent > 0 ? int64_t{1} : int64_t{0},
                     ec.partial_extent)};

  int64_t spatial_tiles = 0;
  int64_t cycles = 0;
  int64_t last_t_out = 0;
  for (const auto& [cnt_d, td] : d_opts) {
    if (cnt_d == 0) continue;
    for (const auto& [cnt_r, tr] : r_opts) {
      if (cnt_r == 0) continue;
      for (const auto& [cnt_c, tc] : c_opts) {
        if (cnt_c == 0) continue;
        const int64_t multiplicity = cnt_d * cnt_r * cnt_c;
        spatial_tiles += multiplicity;

        // Effective per-tile latencies for this extent combination.
        const int64_t in_d = (td - 1) * l.Sd + l.Kd;
        const int64_t in_r = (tr - 1) * l.Sr + l.Kr;
        const int64_t in_c = (tc - 1) * l.Sc + l.Kc;
        const int64_t t_in = CeilDiv(t_.Tn * in_d * in_r * in_c, p_.p_in);
        const int64_t t_out = CeilDiv(t_.Tm * td * tr * tc, p_.p_out);
        const int64_t t_comp = k_vol * td * tr * tc;
        last_t_out = t_out;

        // Eq. 24/25 per output-block row; block-enable shrinks the inner
        // trip count row by row. RowCycleBreakdown applies Eq. 23's
        // double-buffer overlap and attributes the cycles to stages.
        int64_t row_cycles = 0;
        for (int64_t bm = 0; bm < blocks_m; ++bm) {
          const int64_t enabled =
              mask != nullptr ? mask->CountEnabledInRow(bm) : blocks_n;
          const StallBreakdown row =
              RowCycleBreakdown(p_, out.t_wgt, t_in, t_comp, t_out, enabled);
          row_cycles += row.total();
          out.stall.Accumulate(row, multiplicity);
          out.blocks_loaded += multiplicity * enabled;
          out.blocks_skipped += multiplicity * (blocks_n - enabled);
        }
        cycles += multiplicity * row_cycles;
      }
    }
  }
  out.tile_iterations = spatial_tiles * blocks_m;
  out.cycles = cycles + last_t_out;  // final store drain (Eq. 25)
  out.stall.out += last_t_out;
  return out;
}

LayerLatency PerfModel::NetworkCycles(
    const models::NetworkSpec& spec,
    const std::vector<const core::BlockMask*>* masks) const {
  if (masks != nullptr) {
    HWP_CHECK_MSG(masks->size() == spec.layers.size(),
                  "mask list size mismatch");
  }
  LayerLatency total;
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    const core::BlockMask* mask =
        masks != nullptr ? (*masks)[i] : nullptr;
    const LayerLatency l = LayerCycles(spec.layers[i], mask);
    total.cycles += l.cycles;
    total.tile_iterations += l.tile_iterations;
    total.blocks_loaded += l.blocks_loaded;
    total.blocks_skipped += l.blocks_skipped;
    total.stall.Accumulate(l.stall);
  }
  return total;
}

}  // namespace hwp3d::fpga
