// Off-chip (DRAM) traffic model for the tiled accelerator.
//
// Eqs. 19-21 express per-tile transfer LATENCY through port widths; this
// model accounts for the total BYTES moved per inference — weight tiles
// (once per enabled block per spatial tile), input tiles (once per
// enabled n-block per tile iteration, as the engine re-fetches the
// receptive field for every output tile) and output tiles (once per
// (m, d, r, c) tile). From traffic and latency it derives the average
// bandwidth demand, which must fit the board's DDR envelope; block-enable
// pruning cuts weight AND input traffic in the same proportion it cuts
// compute — a second, often-overlooked saving of the co-design.
#pragma once

#include "fpga/perf_model.h"
#include "fpga/spec_masks.h"

namespace hwp3d::fpga {

struct LayerTraffic {
  double weight_bytes = 0.0;
  double input_bytes = 0.0;
  double output_bytes = 0.0;
  double total() const { return weight_bytes + input_bytes + output_bytes; }
};

struct NetworkTraffic {
  LayerTraffic totals;
  std::vector<LayerTraffic> per_layer;
  // Average bandwidth demand over the modeled execution.
  double AvgBandwidthGBs(int64_t total_cycles, double freq_mhz) const {
    const double seconds = static_cast<double>(total_cycles) /
                           (freq_mhz * 1e6);
    return totals.total() / 1e9 / seconds;
  }
};

class BandwidthModel {
 public:
  explicit BandwidthModel(Tiling tiling, int64_t bytes_per_element = 2)
      : tiling_(tiling), bytes_per_element_(bytes_per_element) {}

  LayerTraffic LayerBytes(const models::ConvLayerSpec& layer,
                          const core::BlockMask* mask = nullptr) const;

  NetworkTraffic NetworkBytes(const models::NetworkSpec& spec,
                              const SpecMasks* masks = nullptr) const;

 private:
  Tiling tiling_;
  int64_t bytes_per_element_;
};

}  // namespace hwp3d::fpga
