// Compiles a trained TinyR2Plus1d onto the tiled accelerator simulator:
// quantizes every conv weight to Q7.8, folds each BatchNorm into the
// post-processing unit's per-channel affine, wires residual shortcuts
// through the shortcut port, and attaches the block-enable masks of a
// pruned model so the engine actually skips pruned tiles.
//
// This is the software counterpart of the paper's deployment flow:
// ADMM-pruned network -> 16-bit fixed-point accelerator with
// block-enable, FC head on the host.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/block_partition.h"
#include "fpga/compiled_executor.h"
#include "fpga/tiled_conv_sim.h"
#include "models/tiny_r2plus1d.h"

namespace hwp3d::fpga {

struct CompiledModelOptions {
  Tiling tiling{4, 4, 2, 4, 4};
  Ports ports;
  // Block masks for the prunable convs, indexed like
  // TinyR2Plus1d::PrunableConvs(); empty = dense execution.
  std::vector<core::BlockMask> masks;
  // Which engine runs the conv stages; both are bitwise identical
  // (asserted by compiled_executor_test). Unset resolves via the
  // HWP_EXEC environment variable, else defaults to kSimulate here —
  // serving (InferenceSession / bench_serve) resolves to kFast.
  std::optional<ExecMode> executor;
};

struct CompiledRunStats {
  int64_t modeled_cycles = 0;
  int64_t blocks_loaded = 0;
  int64_t blocks_skipped = 0;
  int64_t macs_executed = 0;
};

class CompiledTinyR2Plus1d {
 public:
  // Validates `options` against the model (mask count and per-conv
  // block grids under tiling.block()) and compiles; the preferred entry
  // point — returns an actionable Status instead of throwing. The
  // compiled model snapshots weights and BN statistics, so it is
  // self-contained, copyable (serving replicas copy it, one TiledConvSim
  // each) and immutable: Infer/Classify are const and safe to call from
  // many threads concurrently.
  static StatusOr<CompiledTinyR2Plus1d> Compile(models::TinyR2Plus1d& model,
                                                CompiledModelOptions options);

  // Snapshots the model's weights and (eval-mode) BN statistics; the
  // model must already be trained. Throws if masks are provided but do
  // not match the prunable convs' block grids under tiling.block().
  CompiledTinyR2Plus1d(models::TinyR2Plus1d& model,
                       CompiledModelOptions options);

  // Runs one clip [C][D][H][W] (float, host side) through the simulated
  // accelerator and the host FC; returns the logits.
  TensorF Infer(const TensorF& clip, CompiledRunStats* stats = nullptr) const;

  // Argmax convenience.
  int Classify(const TensorF& clip, CompiledRunStats* stats = nullptr) const;

  // The engine Infer dispatches to (resolved at compile time from
  // options.executor / HWP_EXEC, default kSimulate).
  ExecMode executor() const { return exec_; }

 private:
  struct ConvStage {
    std::string name;                 // conv layer name, labels traces/metrics
    TensorQ weights;                  // [M][N][Kd][Kr][Kc]
    std::array<int64_t, 3> stride;
    std::array<int64_t, 3> padding;
    std::optional<core::BlockMask> mask;
    PostOps post;                     // affine/relu; shortcut set at runtime
    // Block-CSR packed weights for the fast path; shared so serving
    // replicas (copies of this model) reuse one packed stream.
    std::shared_ptr<const PackedConvLayer> packed;
  };

  // Builds a stage from a conv and the BN that follows it (null = raw).
  ConvStage MakeStage(nn::Conv3d& conv, nn::BatchNorm3d* bn, bool relu,
                      const core::BlockMask* mask) const;
  TensorQ RunStage(const ConvStage& stage, const TensorQ& x,
                   const TensorQ* shortcut, CompiledRunStats* stats) const;

  // Runs one (2+1)D pair: spatial (BN-mid + ReLU folded) then temporal.
  TensorQ RunConv2Plus1d(const ConvStage& spatial, const ConvStage& temporal,
                         const TensorQ& x, const TensorQ* shortcut,
                         CompiledRunStats* stats) const;

  CompiledModelOptions options_;
  ExecMode exec_ = ExecMode::kSimulate;
  TiledConvSim sim_;

  // Stem.
  ConvStage stem_spatial_, stem_temporal_;
  // Stages: conv1 spatial/temporal, conv2 spatial/temporal, shortcut.
  struct Block {
    ConvStage c1_spatial, c1_temporal, c2_spatial, c2_temporal;
    std::optional<ConvStage> shortcut;
  };
  Block stage1_, stage2_;
  // Host-side FC.
  TensorF fc_weight_;  // [out][in]
  TensorF fc_bias_;    // [out]
};

}  // namespace hwp3d::fpga
