// Linear FPGA power model (substitute for board measurement).
//
//   P = P_static + c_dsp * DSP_used + c_bram * BRAM36_used
//
// The coefficients are calibrated to the paper's two measured design
// points on the ZCU102 — (DSP 695, BRAM 710.5) -> 5.4 W and
// (DSP 1215, BRAM 912) -> 6.7 W — with a 3.0 W static/PS-side floor,
// giving c_dsp ~ 1.92 mW and c_bram ~ 1.50 mW at 150 MHz, both within
// the range Xilinx power estimators report for these primitives. Applied
// uniformly to every design point we evaluate; ratios between design
// points (the paper's 2.3x power-efficiency claim) are what the model is
// for, not absolute watts.
#pragma once

#include "fpga/resource_model.h"

namespace hwp3d::fpga {

struct PowerModel {
  double static_w = 3.0;
  double w_per_dsp = 0.0019182;
  double w_per_bram36 = 0.0015017;

  double Estimate(const ResourceUsage& usage) const {
    return static_w + w_per_dsp * static_cast<double>(usage.dsp) +
           w_per_bram36 * usage.bram36_partitioned;
  }
};

}  // namespace hwp3d::fpga
