#include "fpga/device.h"

#include <algorithm>
#include <cctype>

namespace hwp3d::fpga {

StatusOr<FpgaDevice> DeviceByName(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "zcu102") return Zcu102();
  if (lower == "zc706") return Zc706();
  if (lower == "vc709") return Vc709();
  if (lower == "vus440") return Vus440();
  return NotFoundError("unknown FPGA device \"" + std::string(name) +
                       "\" (known: zcu102, zc706, vc709, vus440)");
}

FpgaDevice Zcu102() {
  FpgaDevice d;
  d.name = "ZCU102";
  d.dsp = 2520;
  d.bram36 = 912;
  d.lut = 274080;
  d.ff = 548160;
  d.technology_nm = 16;
  d.default_freq_mhz = 150.0;
  return d;
}

FpgaDevice Zc706() {
  FpgaDevice d;
  d.name = "ZC706";
  d.dsp = 900;
  d.bram36 = 545;
  d.lut = 218600;
  d.ff = 437200;
  d.technology_nm = 28;
  d.default_freq_mhz = 176.0;
  return d;
}

FpgaDevice Vc709() {
  FpgaDevice d;
  d.name = "VC709";
  d.dsp = 3600;
  d.bram36 = 1470;
  d.lut = 433200;
  d.ff = 866400;
  d.technology_nm = 28;
  d.default_freq_mhz = 150.0;
  return d;
}

FpgaDevice Vus440() {
  FpgaDevice d;
  d.name = "VUS440";
  d.dsp = 2880;
  d.bram36 = 2520;
  d.lut = 2532960;
  d.ff = 5065920;
  d.technology_nm = 20;
  d.default_freq_mhz = 200.0;
  return d;
}

std::vector<PublishedRow> PublishedComparators() {
  std::vector<PublishedRow> rows;
  rows.push_back({"F-C3D [13]", "C3D", "ZC706", 176.0, "16-bit fixed", 28,
                  9.7, 71.0, 810, 542.5});
  rows.push_back({"Template [18]", "C3D", "VC709", 150.0, "16-bit fixed", 28,
                  25.0, 430.7, 1536, 89.4});
  rows.push_back({"Template [18]", "C3D", "VUS440", 200.0, "16-bit fixed", 20,
                  26.0, 784.7, 1536, 49.1});
  rows.push_back({"GPU", "R(2+1)D", "GTX 1080 Ti", 1481.0, "32-bit float", 16,
                  230.0, 3256.9, 0, 25.5});
  rows.push_back({"CPU", "R(2+1)D", "E5-1650 v4", 3600.0, "32-bit float", 14,
                  0.0, 68.1, 0, 1220.0});
  return rows;
}

}  // namespace hwp3d::fpga
