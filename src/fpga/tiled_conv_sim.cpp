#include "fpga/tiled_conv_sim.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/shape.h"

namespace hwp3d::fpga {

namespace {

// Output extent of a valid convolution.
int64_t OutExtent(int64_t in, int64_t k, int64_t s) {
  return (in - k) / s + 1;
}

}  // namespace

TiledConvResult TiledConvSim::Run(const TensorQ& weights, const TensorQ& input,
                                  std::array<int64_t, 3> stride,
                                  const core::BlockMask* mask,
                                  const PostOps& post,
                                  std::string_view label) const {
  obs::TraceScope span("sim/conv");
  if (span.active() && !label.empty()) {
    span.SetName("sim/" + std::string(label));
  }
  HWP_SHAPE_CHECK_MSG(weights.rank() == 5, "weights must be rank-5");
  HWP_SHAPE_CHECK_MSG(input.rank() == 4, "input must be rank-4 [N][D][R][C]");
  const int64_t M = weights.dim(0), N = weights.dim(1);
  const int64_t Kd = weights.dim(2), Kr = weights.dim(3), Kc = weights.dim(4);
  const auto [Sd, Sr, Sc] = stride;
  HWP_SHAPE_CHECK_MSG(input.dim(0) == N, "input channel mismatch: "
                                             << input.dim(0) << " vs " << N);
  const int64_t Di = input.dim(1), Ri = input.dim(2), Ci = input.dim(3);
  const int64_t D = OutExtent(Di, Kd, Sd);
  const int64_t R = OutExtent(Ri, Kr, Sr);
  const int64_t C = OutExtent(Ci, Kc, Sc);
  HWP_SHAPE_CHECK_MSG(D > 0 && R > 0 && C > 0, "empty output");

  const int64_t blocks_m = CeilDiv(M, t_.Tm);
  const int64_t blocks_n = CeilDiv(N, t_.Tn);
  if (mask != nullptr) {
    HWP_CHECK_MSG(mask->blocks_m == blocks_m && mask->blocks_n == blocks_n,
                  "block mask grid mismatch");
  }
  if (post.has_affine) {
    HWP_SHAPE_CHECK_MSG(post.scale.numel() == M && post.shift.numel() == M,
                        "affine params must be [M]");
  }
  if (post.shortcut != nullptr) {
    HWP_SHAPE_CHECK_MSG(post.shortcut->rank() == 4 &&
                            post.shortcut->dim(0) == M &&
                            post.shortcut->dim(1) == D &&
                            post.shortcut->dim(2) == R &&
                            post.shortcut->dim(3) == C,
                        "shortcut shape mismatch");
  }

  TiledConvResult result;
  result.output = TensorQ(Shape{M, D, R, C});
  TensorQ& out = result.output;

  // Wide accumulators standing in for the output buffer O_buf: one per
  // element of the current output tile, kept at DSP-accumulator width
  // until post-processing.
  std::vector<FixedAccum> o_buf(
      static_cast<size_t>(t_.Tm * t_.Td * t_.Tr * t_.Tc));
  const auto obuf_at = [&](int64_t tm, int64_t td, int64_t tr,
                           int64_t tc) -> FixedAccum& {
    return o_buf[static_cast<size_t>(
        ((tm * t_.Td + td) * t_.Tr + tr) * t_.Tc + tc)];
  };

  // Per-tile cycle terms shared with PerfModel: the weight-load time
  // (Eq. 19) is extent-independent; the rest depend on the effective
  // (possibly partial) tile extents and are computed per spatial tile.
  const int64_t k_vol = Kd * Kr * Kc;
  const int64_t t_wgt = CeilDiv(t_.Tm * t_.Tn * k_vol, p_.p_wgt);
  int64_t last_t_out = 0;

  // Outer tile loops over output (d, r, c) and output-channel blocks m —
  // the loop nest of Algorithm 2.
  for (int64_t d0 = 0; d0 < D; d0 += t_.Td) {
    const int64_t td_n = std::min(t_.Td, D - d0);
    for (int64_t r0 = 0; r0 < R; r0 += t_.Tr) {
      const int64_t tr_n = std::min(t_.Tr, R - r0);
      for (int64_t c0 = 0; c0 < C; c0 += t_.Tc) {
        const int64_t tc_n = std::min(t_.Tc, C - c0);
        // Effective per-tile latencies (Eqs. 20-22) for this tile.
        const int64_t in_d = (td_n - 1) * Sd + Kd;
        const int64_t in_r = (tr_n - 1) * Sr + Kr;
        const int64_t in_c = (tc_n - 1) * Sc + Kc;
        const int64_t t_in = CeilDiv(t_.Tn * in_d * in_r * in_c, p_.p_in);
        const int64_t t_out = CeilDiv(t_.Tm * td_n * tr_n * tc_n, p_.p_out);
        const int64_t t_comp = k_vol * td_n * tr_n * tc_n;
        last_t_out = t_out;
        for (int64_t bm = 0; bm < blocks_m; ++bm) {
          const int64_t m0 = bm * t_.Tm;
          const int64_t tm_n = std::min(t_.Tm, M - m0);
          ++result.stats.tile_iterations;
          int64_t row_enabled = 0;
          for (auto& acc : o_buf) acc.Reset();

          for (int64_t bn = 0; bn < blocks_n; ++bn) {
            // Block-enable: skip load + compute of pruned blocks.
            if (mask != nullptr && !mask->at(bm, bn)) {
              ++result.stats.blocks_skipped;
              continue;
            }
            ++result.stats.blocks_loaded;
            ++row_enabled;
            const int64_t n0 = bn * t_.Tn;
            const int64_t tn_n = std::min(t_.Tn, N - n0);

            // Compute(): kernel loops outside, pipelined tile loops, and
            // the Tm x Tn MAC array innermost (loops L2/L3 unrolled in
            // hardware; sequential here but numerically identical thanks
            // to the wide accumulator).
            for (int64_t kd = 0; kd < Kd; ++kd)
              for (int64_t kr = 0; kr < Kr; ++kr)
                for (int64_t kc = 0; kc < Kc; ++kc)
                  for (int64_t td = 0; td < td_n; ++td) {
                    const int64_t id = (d0 + td) * Sd + kd;
                    for (int64_t tr = 0; tr < tr_n; ++tr) {
                      const int64_t ir = (r0 + tr) * Sr + kr;
                      for (int64_t tc = 0; tc < tc_n; ++tc) {
                        const int64_t ic = (c0 + tc) * Sc + kc;
                        for (int64_t tm = 0; tm < tm_n; ++tm)
                          for (int64_t tn = 0; tn < tn_n; ++tn) {
                            obuf_at(tm, td, tr, tc)
                                .MulAdd(weights(m0 + tm, n0 + tn, kd, kr, kc),
                                        input(n0 + tn, id, ir, ic));
                            ++result.stats.macs_executed;
                          }
                      }
                    }
                  }
          }

          // Cycle accounting for this output-block row, mirroring the
          // analytic model (Eq. 24 via RowCycleBreakdown).
          result.stats.stall.Accumulate(
              RowCycleBreakdown(p_, t_wgt, t_in, t_comp, t_out, row_enabled));

          // Post-processing unit: affine -> shortcut -> ReLU, then store.
          for (int64_t tm = 0; tm < tm_n; ++tm) {
            const int64_t m = m0 + tm;
            for (int64_t td = 0; td < td_n; ++td)
              for (int64_t tr = 0; tr < tr_n; ++tr)
                for (int64_t tc = 0; tc < tc_n; ++tc) {
                  Fixed16 v = obuf_at(tm, td, tr, tc).ToFixed16();
                  if (post.has_affine) {
                    v = v * post.scale[m] + post.shift[m];
                  }
                  if (post.shortcut != nullptr) {
                    v = v + (*post.shortcut)(m, d0 + td, r0 + tr, c0 + tc);
                  }
                  if (post.relu && v < Fixed16::FromFloat(0.0f)) {
                    v = Fixed16::FromFloat(0.0f);
                  }
                  out(m, d0 + td, r0 + tr, c0 + tc) = v;
                }
          }
        }
      }
    }
  }

  // Final store drain (Eq. 25), charged to the output stage.
  result.stats.stall.out += last_t_out;

  // Cross-check cycles with the analytic model on an equivalent layer.
  models::ConvLayerSpec spec;
  spec.M = M;
  spec.N = N;
  spec.Kd = Kd;
  spec.Kr = Kr;
  spec.Kc = Kc;
  spec.Sd = Sd;
  spec.Sr = Sr;
  spec.Sc = Sc;
  spec.D = D;
  spec.R = R;
  spec.C = C;
  PerfModel pm(t_, p_);
  result.stats.modeled_cycles = pm.LayerCycles(spec, mask).cycles;

  // Observability: one span + per-layer counters per Run (outside the
  // hot loops, so the disabled-tracing cost is a single atomic load).
  const TiledConvStats& s = result.stats;
  if (span.active()) {
    if (!label.empty()) span.AddArg("layer", std::string(label));
    span.AddArg("macs", s.macs_executed);
    span.AddArg("blocks_loaded", s.blocks_loaded);
    span.AddArg("blocks_skipped", s.blocks_skipped);
    span.AddArg("modeled_cycles", s.modeled_cycles);
    span.AddArg("stall_wgt", s.stall.wgt);
    span.AddArg("stall_in", s.stall.in);
    span.AddArg("stall_comp", s.stall.comp);
    span.AddArg("stall_out", s.stall.out);
  }
  auto& reg = obs::MetricsRegistry::Get();
  obs::LabelSet labels;
  if (!label.empty()) labels = {{"layer", std::string(label)}};
  reg.GetCounter("sim.runs", labels).Add(1);
  reg.GetCounter("sim.macs_executed", labels).Add(s.macs_executed);
  reg.GetCounter("sim.blocks_loaded", labels).Add(s.blocks_loaded);
  reg.GetCounter("sim.blocks_skipped", labels).Add(s.blocks_skipped);
  reg.GetCounter("sim.modeled_cycles", labels).Add(s.modeled_cycles);
  reg.GetCounter("sim.stall.wgt_cycles", labels).Add(s.stall.wgt);
  reg.GetCounter("sim.stall.in_cycles", labels).Add(s.stall.in);
  reg.GetCounter("sim.stall.comp_cycles", labels).Add(s.stall.comp);
  reg.GetCounter("sim.stall.out_cycles", labels).Add(s.stall.out);
  return result;
}

TensorQ ReferenceConv3dFixed(const TensorQ& weights, const TensorQ& input,
                             std::array<int64_t, 3> stride) {
  const int64_t M = weights.dim(0), N = weights.dim(1);
  const int64_t Kd = weights.dim(2), Kr = weights.dim(3), Kc = weights.dim(4);
  const auto [Sd, Sr, Sc] = stride;
  const int64_t D = OutExtent(input.dim(1), Kd, Sd);
  const int64_t R = OutExtent(input.dim(2), Kr, Sr);
  const int64_t C = OutExtent(input.dim(3), Kc, Sc);
  TensorQ out(Shape{M, D, R, C});
  for (int64_t m = 0; m < M; ++m)
    for (int64_t d = 0; d < D; ++d)
      for (int64_t r = 0; r < R; ++r)
        for (int64_t c = 0; c < C; ++c) {
          FixedAccum acc;
          for (int64_t n = 0; n < N; ++n)
            for (int64_t kd = 0; kd < Kd; ++kd)
              for (int64_t kr = 0; kr < Kr; ++kr)
                for (int64_t kc = 0; kc < Kc; ++kc)
                  acc.MulAdd(weights(m, n, kd, kr, kc),
                             input(n, d * Sd + kd, r * Sr + kr, c * Sc + kc));
          out(m, d, r, c) = acc.ToFixed16();
        }
  return out;
}

TensorQ PadInput(const TensorQ& input, std::array<int64_t, 3> pad) {
  HWP_SHAPE_CHECK_MSG(input.rank() == 4, "PadInput expects [N][D][R][C]");
  const auto [Pd, Pr, Pc] = pad;
  const int64_t N = input.dim(0), D = input.dim(1), R = input.dim(2),
                C = input.dim(3);
  TensorQ out(Shape{N, D + 2 * Pd, R + 2 * Pr, C + 2 * Pc});
  for (int64_t n = 0; n < N; ++n)
    for (int64_t d = 0; d < D; ++d)
      for (int64_t r = 0; r < R; ++r)
        for (int64_t c = 0; c < C; ++c)
          out(n, d + Pd, r + Pr, c + Pc) = input(n, d, r, c);
  return out;
}

TensorQ MaxPool3dFixed(const TensorQ& input, std::array<int64_t, 3> kernel,
                       std::array<int64_t, 3> stride) {
  HWP_SHAPE_CHECK_MSG(input.rank() == 4, "MaxPool3dFixed expects [N][D][R][C]");
  const auto [Kd, Kr, Kc] = kernel;
  const auto [Sd, Sr, Sc] = stride;
  const int64_t N = input.dim(0);
  const int64_t D = OutExtent(input.dim(1), Kd, Sd);
  const int64_t R = OutExtent(input.dim(2), Kr, Sr);
  const int64_t C = OutExtent(input.dim(3), Kc, Sc);
  TensorQ out(Shape{N, D, R, C});
  for (int64_t n = 0; n < N; ++n)
    for (int64_t d = 0; d < D; ++d)
      for (int64_t r = 0; r < R; ++r)
        for (int64_t c = 0; c < C; ++c) {
          Fixed16 best = Fixed16::FromRaw(Fixed16::kRawMin);
          for (int64_t kd = 0; kd < Kd; ++kd)
            for (int64_t kr = 0; kr < Kr; ++kr)
              for (int64_t kc = 0; kc < Kc; ++kc) {
                const Fixed16 v =
                    input(n, d * Sd + kd, r * Sr + kr, c * Sc + kc);
                if (v > best) best = v;
              }
          out(n, d, r, c) = best;
        }
  return out;
}

}  // namespace hwp3d::fpga
