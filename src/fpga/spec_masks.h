// Block-mask synthesis for analytic (full-size) network specs.
//
// The full-size R(2+1)D has no trained weights in this repo, but the
// latency and Table II numbers only depend on WHICH blocks survive, not
// their values. We therefore materialize each prunable layer with random
// weights and run the real projection (Eq. 13) on it — the same code path
// a trained model would take — yielding masks with exactly
// ceil((1-eta) * B) surviving blocks, including the edge-block effects
// that make achieved pruning rates deviate slightly from 1/(1-eta).
#pragma once

#include <vector>

#include "core/block_partition.h"
#include "models/network_spec.h"

namespace hwp3d::fpga {

struct SpecMasks {
  // Block config the masks were generated for; they only apply to a
  // PerfModel with the same (Tm, Tn).
  core::BlockConfig block;
  // One mask per spec layer; layers with eta == 0 get a full mask.
  std::vector<core::BlockMask> storage;
  // Pointer view for PerfModel::NetworkCycles (nullptr for full masks so
  // unpruned layers take the dense fast path).
  std::vector<const core::BlockMask*> ptrs;

  // Parameters and MACs surviving under the masks.
  double kept_params = 0.0;
  double kept_macs = 0.0;
};

SpecMasks GenerateSpecMasks(const models::NetworkSpec& spec,
                            core::BlockConfig block, uint64_t seed = 42);

}  // namespace hwp3d::fpga
