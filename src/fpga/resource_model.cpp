#include "fpga/resource_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "tensor/shape.h"

namespace hwp3d::fpga {

namespace {
// BRAM18 primitives needed for one partition of `elems` n_bit-wide words.
int64_t Bram18ForPartition(int64_t elems, int64_t n_bit) {
  const int64_t bits = elems * n_bit;
  return std::max<int64_t>(1, CeilDiv(bits, 18 * 1024));
}
}  // namespace

BufferSizes ResourceModel::ComputeBuffers(
    const Tiling& t,
    const std::vector<const models::NetworkSpec*>& networks) const {
  HWP_CHECK_MSG(!networks.empty(), "need at least one network spec");
  BufferSizes b;
  for (const auto* net : networks) {
    for (const auto& l : net->layers) {
      const int64_t k_size = l.Kd * l.Kr * l.Kc;
      // Input tile covers the receptive field of an output tile (Eq. 17).
      const int64_t i_size = ((t.Td - 1) * l.Sd + l.Kd) *
                             ((t.Tr - 1) * l.Sr + l.Kr) *
                             ((t.Tc - 1) * l.Sc + l.Kc);
      b.K_size = std::max(b.K_size, k_size);
      b.I_size = std::max(b.I_size, i_size);
    }
  }
  // Double buffering: factor 2 on every buffer (Eqs. 14-16).
  b.B_out = 2 * t.Tm * t.Td * t.Tr * t.Tc;
  b.B_in = 2 * t.Tn * b.I_size;
  b.B_wgt = 2 * t.Tm * t.Tn * b.K_size;
  return b;
}

ResourceUsage ResourceModel::Estimate(
    const Tiling& t,
    const std::vector<const models::NetworkSpec*>& networks,
    const FpgaDevice* device) const {
  ResourceUsage u;
  u.buffers = ComputeBuffers(t, networks);

  // Eq. 18 aggregate bound.
  const int64_t total_elems =
      u.buffers.B_out + u.buffers.B_in + u.buffers.B_wgt;
  u.bram36_eq18 = CeilDiv(total_elems * cal_.n_bit, 36 * 1024);

  // Partitioned estimate: unrolled loop dims force array partitioning.
  //  W_buf[Tm][Tn][K_size]: both m and n partitioned -> 2*Tm*Tn arrays.
  //  I_buf[Tn][I_size]:     n partitioned            -> 2*Tn arrays.
  //  O_buf[Tm][Td*Tr*Tc]:   m partitioned            -> 2*Tm arrays.
  int64_t bram18 = 0;
  bram18 += 2 * t.Tm * t.Tn * Bram18ForPartition(u.buffers.K_size, cal_.n_bit);
  bram18 += 2 * t.Tn * Bram18ForPartition(u.buffers.I_size, cal_.n_bit);
  bram18 += 2 * t.Tm *
            Bram18ForPartition(t.Td * t.Tr * t.Tc, cal_.n_bit);
  u.bram18_partitioned = bram18;
  u.bram36_partitioned =
      static_cast<double>(bram18) / 2.0 + cal_.misc_bram36;
  if (device != nullptr) {
    u.bram36_partitioned =
        std::min(u.bram36_partitioned, static_cast<double>(device->bram36));
    u.bram18_partitioned =
        std::min(u.bram18_partitioned, 2 * device->bram36);
  }

  const int64_t macs = t.Tm * t.Tn;
  u.dsp = macs + cal_.dsp_overhead_base + cal_.dsp_overhead_per_tn * t.Tn;
  u.lut = static_cast<int64_t>(std::llround(cal_.lut_per_mac * macs));
  u.ff = static_cast<int64_t>(
      std::llround(cal_.ff_base + cal_.ff_per_mac * macs));
  return u;
}

bool ResourceModel::Feasible(const ResourceUsage& usage,
                             const FpgaDevice& device) const {
  return usage.bram36_eq18 <= device.bram36 && usage.dsp <= device.dsp &&
         usage.lut <= device.lut && usage.ff <= device.ff;
}

}  // namespace hwp3d::fpga
