#include "nn/activations.h"

namespace hwp3d::nn {

TensorF ReLU::Forward(const TensorF& x, bool train) {
  TensorF y(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
  if (train) cached_input_ = x;
  return y;
}

TensorF ReLU::Backward(const TensorF& dy) {
  const TensorF& x = cached_input_;
  HWP_CHECK_MSG(!x.empty(), name_ << ": Backward before Forward(train=true)");
  HWP_SHAPE_CHECK_MSG(dy.shape() == x.shape(),
                      name_ << ": grad shape mismatch");
  TensorF dx(x.shape());
  for (int64_t i = 0; i < x.numel(); ++i)
    dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
  return dx;
}

}  // namespace hwp3d::nn
