// Minibatch training / evaluation loop.
//
// The ADMM pruner plugs into the loop through the `post_backward` hook,
// which runs after gradients are accumulated and before the optimizer
// step — that is where the proximal term rho*(W - Z + V) is added (W-step)
// and where masked retraining zeroes gradients of pruned weights.
#pragma once

#include <functional>
#include <vector>

#include "common/rng.h"
#include "nn/loss.h"
#include "nn/module.h"
#include "nn/optimizer.h"

namespace hwp3d::nn {

// One minibatch of video clips [B][C][D][H][W] with integer labels.
struct Batch {
  TensorF clips;
  std::vector<int> labels;
};

struct EpochStats {
  float mean_loss = 0.0f;
  double accuracy = 0.0;  // in [0,1]
  int64_t samples = 0;
};

struct TrainOptions {
  float label_smoothing = 0.0f;
  // Invoked after Backward, before the optimizer step.
  std::function<void()> post_backward;
  // Invoked after the optimizer step (e.g. weight re-masking).
  std::function<void()> post_step;
};

// Runs one pass over `batches`, updating the model through `opt`.
EpochStats TrainEpoch(Module& model, Sgd& opt,
                      const std::vector<Batch>& batches,
                      const TrainOptions& options = {});

// Forward-only evaluation (train=false everywhere).
EpochStats Evaluate(Module& model, const std::vector<Batch>& batches);

}  // namespace hwp3d::nn
