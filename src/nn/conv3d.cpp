#include "nn/conv3d.h"

#include "common/parallel.h"
#include "kernels/conv3d_gemm.h"
#include "kernels/engine.h"
#include "obs/trace.h"
#include "tensor/init.h"

namespace hwp3d::nn {
namespace {

kernels::Conv3dGeom MakeGeom(const Conv3dConfig& cfg, const TensorF& x,
                             int64_t out_d, int64_t out_h, int64_t out_w) {
  kernels::Conv3dGeom g;
  g.batch = x.dim(0);
  g.in_c = cfg.in_channels;
  g.out_c = cfg.out_channels;
  g.in_d = x.dim(2);
  g.in_h = x.dim(3);
  g.in_w = x.dim(4);
  g.k_d = cfg.kernel[0];
  g.k_h = cfg.kernel[1];
  g.k_w = cfg.kernel[2];
  g.s_d = cfg.stride[0];
  g.s_h = cfg.stride[1];
  g.s_w = cfg.stride[2];
  g.p_d = cfg.padding[0];
  g.p_h = cfg.padding[1];
  g.p_w = cfg.padding[2];
  g.out_d = out_d;
  g.out_h = out_h;
  g.out_w = out_w;
  return g;
}

}  // namespace

Conv3d::Conv3d(Conv3dConfig cfg, Rng& rng, std::string name)
    : cfg_(cfg),
      name_(std::move(name)),
      weight_(name_ + ".weight",
              Shape{cfg.out_channels, cfg.in_channels, cfg.kernel[0],
                    cfg.kernel[1], cfg.kernel[2]}),
      bias_(name_ + ".bias", Shape{cfg.out_channels}) {
  HWP_CHECK_MSG(cfg.in_channels > 0 && cfg.out_channels > 0,
                "Conv3d needs positive channel counts");
  for (int a = 0; a < 3; ++a) {
    HWP_CHECK_MSG(cfg.kernel[static_cast<size_t>(a)] > 0 &&
                      cfg.stride[static_cast<size_t>(a)] > 0 &&
                      cfg.padding[static_cast<size_t>(a)] >= 0,
                  "Conv3d invalid kernel/stride/padding on axis " << a);
  }
  const int64_t fan_in =
      cfg.in_channels * cfg.kernel[0] * cfg.kernel[1] * cfg.kernel[2];
  FillKaiming(weight_.value, rng, fan_in);
  bias_.value.Fill(0.0f);
}

TensorF Conv3d::Forward(const TensorF& x, bool train) {
  HWP_SHAPE_CHECK_MSG(x.rank() == 5, name_ << ": input must be rank-5, got "
                                           << x.shape().ToString());
  HWP_SHAPE_CHECK_MSG(x.dim(1) == cfg_.in_channels,
                      name_ << ": expected " << cfg_.in_channels
                            << " input channels, got " << x.dim(1));
  const int64_t B = x.dim(0), N = cfg_.in_channels, M = cfg_.out_channels;
  const int64_t Di = x.dim(2), Hi = x.dim(3), Wi = x.dim(4);
  const auto [Kd, Kh, Kw] = cfg_.kernel;
  const auto [Sd, Sh, Sw] = cfg_.stride;
  const auto [Pd, Ph, Pw] = cfg_.padding;
  const int64_t Do = OutExtent(Di, Kd, Sd, Pd);
  const int64_t Ho = OutExtent(Hi, Kh, Sh, Ph);
  const int64_t Wo = OutExtent(Wi, Kw, Sw, Pw);
  HWP_SHAPE_CHECK_MSG(Do > 0 && Ho > 0 && Wo > 0,
                      name_ << ": empty output for input "
                            << x.shape().ToString());

  TensorF y(Shape{B, M, Do, Ho, Wo});
  const TensorF& w = weight_.value;
  const TensorF& bias = bias_.value;
  const bool has_bias = cfg_.bias;

  const kernels::Engine engine = kernels::CurrentEngine();
  obs::TraceScope span("nn/conv3d_forward");
  if (span.active()) {
    span.SetName("nn/" + name_ + "/forward");
    span.AddArg("engine", kernels::EngineName(engine));
  }

  if (engine == kernels::Engine::kGemm) {
    kernels::Conv3dForwardGemm(MakeGeom(cfg_, x, Do, Ho, Wo), x.data(),
                               w.data(), has_bias ? bias.data() : nullptr,
                               y.data());
  } else {
    // Naive reference: direct 7-deep loop, double accumulation.
    ParallelFor(0, B * M, [&](int64_t bm) {
      const int64_t b = bm / M;
      const int64_t m = bm % M;
      for (int64_t od = 0; od < Do; ++od) {
        for (int64_t oh = 0; oh < Ho; ++oh) {
          for (int64_t ow = 0; ow < Wo; ++ow) {
            double acc = has_bias ? bias[m] : 0.0;
            for (int64_t n = 0; n < N; ++n) {
              for (int64_t kd = 0; kd < Kd; ++kd) {
                const int64_t id = od * Sd + kd - Pd;
                if (id < 0 || id >= Di) continue;
                for (int64_t kh = 0; kh < Kh; ++kh) {
                  const int64_t ih = oh * Sh + kh - Ph;
                  if (ih < 0 || ih >= Hi) continue;
                  for (int64_t kw = 0; kw < Kw; ++kw) {
                    const int64_t iw = ow * Sw + kw - Pw;
                    if (iw < 0 || iw >= Wi) continue;
                    acc += static_cast<double>(w(m, n, kd, kh, kw)) *
                           x(b, n, id, ih, iw);
                  }
                }
              }
            }
            y(b, m, od, oh, ow) = static_cast<float>(acc);
          }
        }
      }
    });
  }

  if (train) cached_input_ = x;
  return y;
}

TensorF Conv3d::Backward(const TensorF& dy) {
  const TensorF& x = cached_input_;
  HWP_CHECK_MSG(!x.empty(), name_ << ": Backward before Forward(train=true)");
  const int64_t B = x.dim(0), N = cfg_.in_channels, M = cfg_.out_channels;
  const int64_t Di = x.dim(2), Hi = x.dim(3), Wi = x.dim(4);
  const auto [Kd, Kh, Kw] = cfg_.kernel;
  const auto [Sd, Sh, Sw] = cfg_.stride;
  const auto [Pd, Ph, Pw] = cfg_.padding;
  const int64_t Do = dy.dim(2), Ho = dy.dim(3), Wo = dy.dim(4);
  HWP_SHAPE_CHECK_MSG(dy.dim(0) == B && dy.dim(1) == M,
                      name_ << ": bad grad shape " << dy.shape().ToString());

  const TensorF& w = weight_.value;
  TensorF& dw = weight_.grad;
  TensorF dx(x.shape());

  const kernels::Engine engine = kernels::CurrentEngine();
  obs::TraceScope span("nn/conv3d_backward");
  if (span.active()) {
    span.SetName("nn/" + name_ + "/backward");
    span.AddArg("engine", kernels::EngineName(engine));
  }

  if (engine == kernels::Engine::kGemm) {
    kernels::Conv3dBackwardGemm(MakeGeom(cfg_, x, Do, Ho, Wo), x.data(),
                                w.data(), dy.data(), dw.data(), dx.data());
  } else {
    // dW: parallel over output channel m — each m owns a disjoint slice of dW.
    ParallelFor(0, M, [&](int64_t m) {
      for (int64_t n = 0; n < N; ++n) {
        for (int64_t kd = 0; kd < Kd; ++kd) {
          for (int64_t kh = 0; kh < Kh; ++kh) {
            for (int64_t kw = 0; kw < Kw; ++kw) {
              double acc = 0.0;
              for (int64_t b = 0; b < B; ++b) {
                for (int64_t od = 0; od < Do; ++od) {
                  const int64_t id = od * Sd + kd - Pd;
                  if (id < 0 || id >= Di) continue;
                  for (int64_t oh = 0; oh < Ho; ++oh) {
                    const int64_t ih = oh * Sh + kh - Ph;
                    if (ih < 0 || ih >= Hi) continue;
                    for (int64_t ow = 0; ow < Wo; ++ow) {
                      const int64_t iw = ow * Sw + kw - Pw;
                      if (iw < 0 || iw >= Wi) continue;
                      acc += static_cast<double>(dy(b, m, od, oh, ow)) *
                             x(b, n, id, ih, iw);
                    }
                  }
                }
              }
              dw(m, n, kd, kh, kw) += static_cast<float>(acc);
            }
          }
        }
      }
    });

    // dX: parallel over batch — each b owns a disjoint slice of dx.
    ParallelFor(0, B, [&](int64_t b) {
      for (int64_t m = 0; m < M; ++m) {
        for (int64_t od = 0; od < Do; ++od) {
          for (int64_t oh = 0; oh < Ho; ++oh) {
            for (int64_t ow = 0; ow < Wo; ++ow) {
              const float g = dy(b, m, od, oh, ow);
              if (g == 0.0f) continue;
              for (int64_t n = 0; n < N; ++n) {
                for (int64_t kd = 0; kd < Kd; ++kd) {
                  const int64_t id = od * Sd + kd - Pd;
                  if (id < 0 || id >= Di) continue;
                  for (int64_t kh = 0; kh < Kh; ++kh) {
                    const int64_t ih = oh * Sh + kh - Ph;
                    if (ih < 0 || ih >= Hi) continue;
                    for (int64_t kw = 0; kw < Kw; ++kw) {
                      const int64_t iw = ow * Sw + kw - Pw;
                      if (iw < 0 || iw >= Wi) continue;
                      dx(b, n, id, ih, iw) += g * w(m, n, kd, kh, kw);
                    }
                  }
                }
              }
            }
          }
        }
      }
    });
  }

  if (cfg_.bias) {
    // Bias gradient: parallel over m — each m reduces its own dy rows.
    TensorF& db = bias_.grad;
    const float* dyp = dy.data();
    const int64_t plane = Do * Ho * Wo;
    ParallelFor(0, M, [&](int64_t m) {
      double acc = 0.0;
      for (int64_t b = 0; b < B; ++b) {
        const float* row = dyp + (b * M + m) * plane;
        for (int64_t p = 0; p < plane; ++p) acc += row[p];
      }
      db[m] += static_cast<float>(acc);
    });
  }

  return dx;
}

void Conv3d::CollectParams(std::vector<Param*>& out) {
  out.push_back(&weight_);
  if (cfg_.bias) out.push_back(&bias_);
}

}  // namespace hwp3d::nn
