#include "nn/pool3d.h"

#include <limits>

namespace hwp3d::nn {

namespace {
int64_t PoolOut(int64_t in, int64_t k, int64_t s) { return (in - k) / s + 1; }
}  // namespace

MaxPool3d::MaxPool3d(Pool3dConfig cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)) {}

TensorF MaxPool3d::Forward(const TensorF& x, bool train) {
  HWP_SHAPE_CHECK_MSG(x.rank() == 5, name_ << ": input must be rank-5");
  const int64_t B = x.dim(0), C = x.dim(1);
  const int64_t Di = x.dim(2), Hi = x.dim(3), Wi = x.dim(4);
  const auto [Kd, Kh, Kw] = cfg_.kernel;
  const auto [Sd, Sh, Sw] = cfg_.stride;
  const int64_t Do = PoolOut(Di, Kd, Sd), Ho = PoolOut(Hi, Kh, Sh),
                Wo = PoolOut(Wi, Kw, Sw);
  HWP_SHAPE_CHECK_MSG(Do > 0 && Ho > 0 && Wo > 0,
                      name_ << ": pooling window larger than input");

  TensorF y(Shape{B, C, Do, Ho, Wo});
  argmax_.assign(static_cast<size_t>(y.numel()), -1);
  int64_t out_i = 0;
  for (int64_t b = 0; b < B; ++b)
    for (int64_t c = 0; c < C; ++c)
      for (int64_t od = 0; od < Do; ++od)
        for (int64_t oh = 0; oh < Ho; ++oh)
          for (int64_t ow = 0; ow < Wo; ++ow, ++out_i) {
            float best = -std::numeric_limits<float>::infinity();
            int64_t best_idx = -1;
            for (int64_t kd = 0; kd < Kd; ++kd)
              for (int64_t kh = 0; kh < Kh; ++kh)
                for (int64_t kw = 0; kw < Kw; ++kw) {
                  const int64_t id = od * Sd + kd, ih = oh * Sh + kh,
                                iw = ow * Sw + kw;
                  const float v = x(b, c, id, ih, iw);
                  if (v > best) {
                    best = v;
                    best_idx =
                        (((b * C + c) * Di + id) * Hi + ih) * Wi + iw;
                  }
                }
            y[out_i] = best;
            argmax_[static_cast<size_t>(out_i)] = best_idx;
          }

  if (train) {
    cached_input_ = x;
    out_shape_ = y.shape();
  }
  return y;
}

TensorF MaxPool3d::Backward(const TensorF& dy) {
  HWP_CHECK_MSG(!cached_input_.empty(),
                name_ << ": Backward before Forward(train=true)");
  HWP_SHAPE_CHECK_MSG(dy.shape() == out_shape_, name_ << ": bad grad shape");
  TensorF dx(cached_input_.shape());
  for (int64_t i = 0; i < dy.numel(); ++i) {
    dx[argmax_[static_cast<size_t>(i)]] += dy[i];
  }
  return dx;
}

AvgPool3d::AvgPool3d(Pool3dConfig cfg, std::string name)
    : cfg_(cfg), name_(std::move(name)) {}

TensorF AvgPool3d::Forward(const TensorF& x, bool train) {
  HWP_SHAPE_CHECK_MSG(x.rank() == 5, name_ << ": input must be rank-5");
  const int64_t B = x.dim(0), C = x.dim(1);
  const int64_t Di = x.dim(2), Hi = x.dim(3), Wi = x.dim(4);
  const auto [Kd, Kh, Kw] = cfg_.kernel;
  const auto [Sd, Sh, Sw] = cfg_.stride;
  const int64_t Do = PoolOut(Di, Kd, Sd), Ho = PoolOut(Hi, Kh, Sh),
                Wo = PoolOut(Wi, Kw, Sw);
  HWP_SHAPE_CHECK_MSG(Do > 0 && Ho > 0 && Wo > 0,
                      name_ << ": pooling window larger than input");
  const float inv = 1.0f / static_cast<float>(Kd * Kh * Kw);

  TensorF y(Shape{B, C, Do, Ho, Wo});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t c = 0; c < C; ++c)
      for (int64_t od = 0; od < Do; ++od)
        for (int64_t oh = 0; oh < Ho; ++oh)
          for (int64_t ow = 0; ow < Wo; ++ow) {
            double acc = 0.0;
            for (int64_t kd = 0; kd < Kd; ++kd)
              for (int64_t kh = 0; kh < Kh; ++kh)
                for (int64_t kw = 0; kw < Kw; ++kw)
                  acc += x(b, c, od * Sd + kd, oh * Sh + kh, ow * Sw + kw);
            y(b, c, od, oh, ow) = static_cast<float>(acc) * inv;
          }

  if (train) in_shape_ = x.shape();
  return y;
}

TensorF AvgPool3d::Backward(const TensorF& dy) {
  HWP_CHECK_MSG(in_shape_.rank() == 5,
                name_ << ": Backward before Forward(train=true)");
  const auto [Kd, Kh, Kw] = cfg_.kernel;
  const auto [Sd, Sh, Sw] = cfg_.stride;
  const float inv = 1.0f / static_cast<float>(Kd * Kh * Kw);
  TensorF dx(in_shape_);
  const int64_t B = dy.dim(0), C = dy.dim(1);
  const int64_t Do = dy.dim(2), Ho = dy.dim(3), Wo = dy.dim(4);
  for (int64_t b = 0; b < B; ++b)
    for (int64_t c = 0; c < C; ++c)
      for (int64_t od = 0; od < Do; ++od)
        for (int64_t oh = 0; oh < Ho; ++oh)
          for (int64_t ow = 0; ow < Wo; ++ow) {
            const float g = dy(b, c, od, oh, ow) * inv;
            for (int64_t kd = 0; kd < Kd; ++kd)
              for (int64_t kh = 0; kh < Kh; ++kh)
                for (int64_t kw = 0; kw < Kw; ++kw)
                  dx(b, c, od * Sd + kd, oh * Sh + kh, ow * Sw + kw) += g;
          }
  return dx;
}

TensorF GlobalAvgPool3d::Forward(const TensorF& x, bool train) {
  HWP_SHAPE_CHECK_MSG(x.rank() == 5, name_ << ": input must be rank-5");
  const int64_t B = x.dim(0), C = x.dim(1);
  const int64_t D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const float inv = 1.0f / static_cast<float>(D * H * W);
  TensorF y(Shape{B, C});
  for (int64_t b = 0; b < B; ++b)
    for (int64_t c = 0; c < C; ++c) {
      double acc = 0.0;
      for (int64_t d = 0; d < D; ++d)
        for (int64_t h = 0; h < H; ++h)
          for (int64_t w = 0; w < W; ++w) acc += x(b, c, d, h, w);
      y(b, c) = static_cast<float>(acc) * inv;
    }
  if (train) in_shape_ = x.shape();
  return y;
}

TensorF GlobalAvgPool3d::Backward(const TensorF& dy) {
  HWP_CHECK_MSG(in_shape_.rank() == 5,
                name_ << ": Backward before Forward(train=true)");
  const int64_t B = in_shape_[0], C = in_shape_[1];
  const int64_t D = in_shape_[2], H = in_shape_[3], W = in_shape_[4];
  const float inv = 1.0f / static_cast<float>(D * H * W);
  TensorF dx(in_shape_);
  for (int64_t b = 0; b < B; ++b)
    for (int64_t c = 0; c < C; ++c) {
      const float g = dy(b, c) * inv;
      for (int64_t d = 0; d < D; ++d)
        for (int64_t h = 0; h < H; ++h)
          for (int64_t w = 0; w < W; ++w) dx(b, c, d, h, w) = g;
    }
  return dx;
}

}  // namespace hwp3d::nn
