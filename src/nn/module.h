// Module: the layer abstraction of the training framework.
//
// Activations flow as rank-5 tensors [B][C][D][H][W] through the 3D CNN
// trunk, become [B][C] after global pooling, and [B][num_classes] at the
// head. Each module caches what it needs in Forward(train=true) so that
// Backward can be called exactly once afterwards.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/tensor.h"

namespace hwp3d::nn {

// Non-trainable state a module needs for inference (e.g. BatchNorm
// running statistics). Saved alongside Params by nn::checkpoint so a
// loaded model folds BN identically to the model that was saved.
struct NamedBuffer {
  std::string name;
  TensorF* tensor = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;

  // Computes the output. When `train` is false the module must not
  // mutate training state (e.g. BatchNorm running statistics) and need
  // not cache activations.
  virtual TensorF Forward(const TensorF& x, bool train) = 0;

  // Given dL/dy, accumulates parameter gradients and returns dL/dx.
  // Only valid after a Forward(..., train=true) call.
  virtual TensorF Backward(const TensorF& dy) = 0;

  // Appends pointers to this module's trainable parameters.
  virtual void CollectParams(std::vector<Param*>& out) { (void)out; }

  // Appends this module's non-trainable inference state, in the same
  // deterministic order as CollectParams. Default: none.
  virtual void CollectBuffers(std::vector<NamedBuffer>& out) { (void)out; }

  virtual std::string name() const = 0;

  std::vector<Param*> Params() {
    std::vector<Param*> out;
    CollectParams(out);
    return out;
  }

  std::vector<NamedBuffer> Buffers() {
    std::vector<NamedBuffer> out;
    CollectBuffers(out);
    return out;
  }

  void ZeroGrad() {
    for (Param* p : Params()) p->ZeroGrad();
  }
};

// Runs children in order; Backward in reverse order.
class Sequential : public Module {
 public:
  explicit Sequential(std::string name = "sequential")
      : name_(std::move(name)) {}

  // Appends a child and returns a raw observer pointer to it.
  template <typename M, typename... Args>
  M* Emplace(Args&&... args) {
    auto child = std::make_unique<M>(std::forward<Args>(args)...);
    M* raw = child.get();
    children_.push_back(std::move(child));
    return raw;
  }

  void Append(std::unique_ptr<Module> m) { children_.push_back(std::move(m)); }

  TensorF Forward(const TensorF& x, bool train) override {
    TensorF cur = x;
    for (auto& child : children_) cur = child->Forward(cur, train);
    return cur;
  }

  TensorF Backward(const TensorF& dy) override {
    TensorF cur = dy;
    for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
      cur = (*it)->Backward(cur);
    }
    return cur;
  }

  void CollectParams(std::vector<Param*>& out) override {
    for (auto& child : children_) child->CollectParams(out);
  }

  void CollectBuffers(std::vector<NamedBuffer>& out) override {
    for (auto& child : children_) child->CollectBuffers(out);
  }

  std::string name() const override { return name_; }

  size_t size() const { return children_.size(); }
  Module* child(size_t i) { return children_.at(i).get(); }

 private:
  std::string name_;
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace hwp3d::nn
