#include "nn/optimizer.h"

#include "common/error.h"

namespace hwp3d::nn {

Sgd::Sgd(std::vector<Param*> params, SgdConfig cfg)
    : params_(std::move(params)), cfg_(cfg) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) {
    HWP_CHECK_MSG(p != nullptr, "null param handed to Sgd");
    velocity_.emplace_back(p->value.shape(), 0.0f);
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    TensorF& v = velocity_[i];
    const int64_t n = p.value.numel();
    for (int64_t j = 0; j < n; ++j) {
      float g = p.grad[j];
      if (cfg_.weight_decay != 0.0f) g += cfg_.weight_decay * p.value[j];
      v[j] = cfg_.momentum * v[j] + g;
      p.value[j] -= cfg_.lr * v[j];
    }
  }
}

}  // namespace hwp3d::nn
