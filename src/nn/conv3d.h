// Conv3d: 3D convolution with per-dimension kernel/stride/padding.
//
// Weight layout is the paper's 5-D tensor W[M][N][Kd][Kr][Kc] (output
// channels, input channels, temporal depth, height, width). This layout is
// shared verbatim with the pruning core (blockwise partition over M x N)
// and the FPGA tile simulator, so a pruned nn::Conv3d weight can be handed
// to the accelerator without any transposition.
#pragma once

#include <array>

#include "common/rng.h"
#include "nn/module.h"

namespace hwp3d::nn {

struct Conv3dConfig {
  int64_t in_channels = 0;   // N
  int64_t out_channels = 0;  // M
  std::array<int64_t, 3> kernel = {1, 1, 1};   // Kd, Kr, Kc
  std::array<int64_t, 3> stride = {1, 1, 1};   // Sd, Sr, Sc
  std::array<int64_t, 3> padding = {0, 0, 0};  // Pd, Pr, Pc
  bool bias = true;
};

class Conv3d : public Module {
 public:
  Conv3d(Conv3dConfig cfg, Rng& rng, std::string name = "conv3d");

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }

  const Conv3dConfig& config() const { return cfg_; }
  Param& weight() { return weight_; }
  Param* bias() { return cfg_.bias ? &bias_ : nullptr; }

  // Output spatial extents for a given input extent along one axis.
  static int64_t OutExtent(int64_t in, int64_t k, int64_t s, int64_t p) {
    return (in + 2 * p - k) / s + 1;
  }

 private:
  Conv3dConfig cfg_;
  std::string name_;
  Param weight_;  // [M][N][Kd][Kr][Kc]
  Param bias_;    // [M]
  TensorF cached_input_;
};

}  // namespace hwp3d::nn
