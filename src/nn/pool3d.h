// 3D pooling layers: max, average, and global spatio-temporal average.
#pragma once

#include <array>

#include "nn/module.h"

namespace hwp3d::nn {

struct Pool3dConfig {
  std::array<int64_t, 3> kernel = {2, 2, 2};
  std::array<int64_t, 3> stride = {2, 2, 2};
};

class MaxPool3d : public Module {
 public:
  explicit MaxPool3d(Pool3dConfig cfg, std::string name = "maxpool");

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  std::string name() const override { return name_; }

 private:
  Pool3dConfig cfg_;
  std::string name_;
  TensorF cached_input_;
  // Linear index into the input of the max element per output cell.
  std::vector<int64_t> argmax_;
  Shape out_shape_;
};

class AvgPool3d : public Module {
 public:
  explicit AvgPool3d(Pool3dConfig cfg, std::string name = "avgpool");

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  std::string name() const override { return name_; }

 private:
  Pool3dConfig cfg_;
  std::string name_;
  Shape in_shape_;
};

// Averages over (D, H, W): [B][C][D][H][W] -> [B][C].
class GlobalAvgPool3d : public Module {
 public:
  explicit GlobalAvgPool3d(std::string name = "gap") : name_(std::move(name)) {}

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape in_shape_;
};

}  // namespace hwp3d::nn
