#include "nn/linear.h"

#include <cstring>

#include "common/parallel.h"
#include "kernels/engine.h"
#include "kernels/sgemm.h"
#include "obs/trace.h"
#include "tensor/init.h"

namespace hwp3d::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      name_(std::move(name)),
      weight_(name_ + ".weight", Shape{out_features, in_features}),
      bias_(name_ + ".bias", Shape{out_features}) {
  HWP_CHECK_MSG(in_features > 0 && out_features > 0,
                "Linear needs positive feature counts");
  FillXavier(weight_.value, rng, in_features, out_features);
  bias_.value.Fill(0.0f);
}

TensorF Linear::Forward(const TensorF& x, bool train) {
  HWP_SHAPE_CHECK_MSG(x.rank() == 2 && x.dim(1) == in_features_,
                      name_ << ": bad input " << x.shape().ToString());
  const int64_t B = x.dim(0);
  TensorF y(Shape{B, out_features_});
  HWP_TRACE_SCOPE("nn/linear_forward");
  if (kernels::CurrentEngine() == kernels::Engine::kGemm) {
    // Seed every row with the bias, then y += x · Wᵀ.
    for (int64_t b = 0; b < B; ++b) {
      std::memcpy(y.data() + b * out_features_, bias_.value.data(),
                  sizeof(float) * static_cast<size_t>(out_features_));
    }
    kernels::Sgemm(/*trans_a=*/false, /*trans_b=*/true, B, out_features_,
                   in_features_, x.data(), in_features_, weight_.value.data(),
                   in_features_, y.data(), out_features_, /*accumulate=*/true);
  } else {
    for (int64_t b = 0; b < B; ++b)
      for (int64_t o = 0; o < out_features_; ++o) {
        double acc = bias_.value[o];
        for (int64_t i = 0; i < in_features_; ++i)
          acc += static_cast<double>(weight_.value(o, i)) * x(b, i);
        y(b, o) = static_cast<float>(acc);
      }
  }
  if (train) cached_input_ = x;
  return y;
}

TensorF Linear::Backward(const TensorF& dy) {
  const TensorF& x = cached_input_;
  HWP_CHECK_MSG(!x.empty(), name_ << ": Backward before Forward(train=true)");
  const int64_t B = x.dim(0);
  HWP_SHAPE_CHECK_MSG(dy.rank() == 2 && dy.dim(0) == B &&
                          dy.dim(1) == out_features_,
                      name_ << ": bad grad shape " << dy.shape().ToString());
  HWP_TRACE_SCOPE("nn/linear_backward");
  TensorF dx(x.shape());
  if (kernels::CurrentEngine() == kernels::Engine::kGemm) {
    // db: parallel column reduction of dy.
    const float* dyp = dy.data();
    float* db = bias_.grad.data();
    ParallelFor(0, out_features_, [&](int64_t o) {
      double acc = 0.0;
      for (int64_t b = 0; b < B; ++b) acc += dyp[b * out_features_ + o];
      db[o] += static_cast<float>(acc);
    });
    // dW[out×in] += dyᵀ[out×B] · x[B×in]
    kernels::Sgemm(/*trans_a=*/true, /*trans_b=*/false, out_features_,
                   in_features_, B, dy.data(), out_features_, x.data(),
                   in_features_, weight_.grad.data(), in_features_,
                   /*accumulate=*/true);
    // dx[B×in] = dy[B×out] · W[out×in]
    kernels::Sgemm(/*trans_a=*/false, /*trans_b=*/false, B, in_features_,
                   out_features_, dy.data(), out_features_,
                   weight_.value.data(), in_features_, dx.data(), in_features_,
                   /*accumulate=*/false);
  } else {
    for (int64_t o = 0; o < out_features_; ++o) {
      double db = 0.0;
      for (int64_t b = 0; b < B; ++b) db += dy(b, o);
      bias_.grad[o] += static_cast<float>(db);
      for (int64_t i = 0; i < in_features_; ++i) {
        double dw = 0.0;
        for (int64_t b = 0; b < B; ++b)
          dw += static_cast<double>(dy(b, o)) * x(b, i);
        weight_.grad(o, i) += static_cast<float>(dw);
      }
    }
    for (int64_t b = 0; b < B; ++b)
      for (int64_t i = 0; i < in_features_; ++i) {
        double acc = 0.0;
        for (int64_t o = 0; o < out_features_; ++o)
          acc += static_cast<double>(dy(b, o)) * weight_.value(o, i);
        dx(b, i) = static_cast<float>(acc);
      }
  }
  return dx;
}

void Linear::CollectParams(std::vector<Param*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

}  // namespace hwp3d::nn
