// Whole-model checkpointing: saves/loads every Param of a Module (in
// CollectParams order) plus its inference buffers (BatchNorm running
// statistics, in CollectBuffers order) to a single binary file, so a
// pruned/retrained model can be stored and later compiled onto the
// accelerator without retraining — BN folding reproduces exactly.
//
// Format: magic "HWPC", u32 version, u64 param count, each param as a
// name-length-prefixed string + tensor (see tensor/serialize); version
// >= 2 appends u64 buffer count + the buffers in the same encoding.
// Version 1 files (params only) still load; buffers keep their
// in-memory values.
//
// Both calls return Status instead of throwing: a missing file is
// kNotFound, a malformed or mismatched file is kDataLoss /
// kInvalidArgument, with messages naming the offending param.
#pragma once

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace hwp3d::nn {

Status SaveCheckpoint(const std::string& path, Module& model);

// Loads into an identically-structured model: every param/buffer must
// match by name and shape, in order.
Status LoadCheckpoint(const std::string& path, Module& model);

}  // namespace hwp3d::nn
