// Whole-model checkpointing: saves/loads every Param of a Module (in
// CollectParams order) to a single binary file, so a pruned/retrained
// model can be stored and later compiled onto the accelerator without
// retraining. Format: magic "HWPC", u32 version, u64 count, then each
// param as a name-length-prefixed string + tensor (see tensor/serialize).
#pragma once

#include <string>

#include "nn/module.h"

namespace hwp3d::nn {

void SaveCheckpoint(const std::string& path, Module& model);

// Loads into an identically-structured model: every param must match by
// name and shape, in order. Throws Error on any mismatch.
void LoadCheckpoint(const std::string& path, Module& model);

}  // namespace hwp3d::nn
