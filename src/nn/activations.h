// Element-wise activation layers.
#pragma once

#include "nn/module.h"

namespace hwp3d::nn {

// Rectified linear unit. Works on tensors of any rank.
class ReLU : public Module {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  TensorF cached_input_;
};

}  // namespace hwp3d::nn
