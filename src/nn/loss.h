// Softmax cross-entropy loss with optional label smoothing.
//
// The paper uses label smoothing during ADMM training ("bag of tricks"
// [25]); smoothing factor 0 recovers plain cross-entropy.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace hwp3d::nn {

struct LossResult {
  float loss = 0.0f;       // mean over the batch
  TensorF grad;            // dL/dlogits, [B][K]
  int64_t correct = 0;     // argmax(logits) == label count
};

// logits: [B][K]; labels: B entries in [0, K). `smoothing` ε distributes
// ε uniformly over all K classes and puts 1-ε+ε/K on the true class.
LossResult SoftmaxCrossEntropy(const TensorF& logits,
                               const std::vector<int>& labels,
                               float smoothing = 0.0f);

// Row-wise softmax of [B][K] logits (numerically stabilized).
TensorF Softmax(const TensorF& logits);

}  // namespace hwp3d::nn
