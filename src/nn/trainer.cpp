#include "nn/trainer.h"

namespace hwp3d::nn {

EpochStats TrainEpoch(Module& model, Sgd& opt,
                      const std::vector<Batch>& batches,
                      const TrainOptions& options) {
  EpochStats stats;
  double loss_sum = 0.0;
  int64_t correct = 0;
  for (const Batch& batch : batches) {
    opt.ZeroGrad();
    model.ZeroGrad();
    const TensorF logits = model.Forward(batch.clips, /*train=*/true);
    const LossResult loss =
        SoftmaxCrossEntropy(logits, batch.labels, options.label_smoothing);
    model.Backward(loss.grad);
    if (options.post_backward) options.post_backward();
    opt.Step();
    if (options.post_step) options.post_step();

    const int64_t bsz = batch.clips.dim(0);
    loss_sum += static_cast<double>(loss.loss) * bsz;
    correct += loss.correct;
    stats.samples += bsz;
  }
  if (stats.samples > 0) {
    stats.mean_loss = static_cast<float>(loss_sum / stats.samples);
    stats.accuracy = static_cast<double>(correct) / stats.samples;
  }
  return stats;
}

EpochStats Evaluate(Module& model, const std::vector<Batch>& batches) {
  EpochStats stats;
  double loss_sum = 0.0;
  int64_t correct = 0;
  for (const Batch& batch : batches) {
    const TensorF logits = model.Forward(batch.clips, /*train=*/false);
    const LossResult loss = SoftmaxCrossEntropy(logits, batch.labels, 0.0f);
    const int64_t bsz = batch.clips.dim(0);
    loss_sum += static_cast<double>(loss.loss) * bsz;
    correct += loss.correct;
    stats.samples += bsz;
  }
  if (stats.samples > 0) {
    stats.mean_loss = static_cast<float>(loss_sum / stats.samples);
    stats.accuracy = static_cast<double>(correct) / stats.samples;
  }
  return stats;
}

}  // namespace hwp3d::nn
