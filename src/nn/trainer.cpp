#include "nn/trainer.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwp3d::nn {

EpochStats TrainEpoch(Module& model, Sgd& opt,
                      const std::vector<Batch>& batches,
                      const TrainOptions& options) {
  HWP_TRACE_SCOPE("nn/TrainEpoch");
  EpochStats stats;
  double loss_sum = 0.0;
  int64_t correct = 0;
  for (const Batch& batch : batches) {
    HWP_TRACE_SCOPE("nn/batch");
    opt.ZeroGrad();
    model.ZeroGrad();
    const TensorF logits = model.Forward(batch.clips, /*train=*/true);
    const LossResult loss =
        SoftmaxCrossEntropy(logits, batch.labels, options.label_smoothing);
    model.Backward(loss.grad);
    if (options.post_backward) options.post_backward();
    opt.Step();
    if (options.post_step) options.post_step();

    const int64_t bsz = batch.clips.dim(0);
    loss_sum += static_cast<double>(loss.loss) * bsz;
    correct += loss.correct;
    stats.samples += bsz;
  }
  if (stats.samples > 0) {
    stats.mean_loss = static_cast<float>(loss_sum / stats.samples);
    stats.accuracy = static_cast<double>(correct) / stats.samples;
  }
  auto& reg = obs::MetricsRegistry::Get();
  reg.GetCounter("train.epochs").Add(1);
  reg.GetCounter("train.samples").Add(stats.samples);
  reg.GetGauge("train.loss").Set(stats.mean_loss);
  reg.GetGauge("train.accuracy").Set(stats.accuracy);
  obs::Tracer::Get().Counter("train.loss", stats.mean_loss);
  obs::Tracer::Get().Counter("train.accuracy", stats.accuracy);
  return stats;
}

EpochStats Evaluate(Module& model, const std::vector<Batch>& batches) {
  HWP_TRACE_SCOPE("nn/Evaluate");
  EpochStats stats;
  double loss_sum = 0.0;
  int64_t correct = 0;
  for (const Batch& batch : batches) {
    const TensorF logits = model.Forward(batch.clips, /*train=*/false);
    const LossResult loss = SoftmaxCrossEntropy(logits, batch.labels, 0.0f);
    const int64_t bsz = batch.clips.dim(0);
    loss_sum += static_cast<double>(loss.loss) * bsz;
    correct += loss.correct;
    stats.samples += bsz;
  }
  if (stats.samples > 0) {
    stats.mean_loss = static_cast<float>(loss_sum / stats.samples);
    stats.accuracy = static_cast<double>(correct) / stats.samples;
  }
  auto& reg = obs::MetricsRegistry::Get();
  reg.GetCounter("eval.runs").Add(1);
  reg.GetCounter("eval.samples").Add(stats.samples);
  reg.GetGauge("eval.loss").Set(stats.mean_loss);
  reg.GetGauge("eval.accuracy").Set(stats.accuracy);
  return stats;
}

}  // namespace hwp3d::nn
