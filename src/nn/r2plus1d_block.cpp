#include "nn/r2plus1d_block.h"

#include "obs/trace.h"
#include "tensor/tensor_ops.h"

namespace hwp3d::nn {

int64_t R2Plus1dMidChannels(int64_t in_channels, int64_t out_channels,
                            int64_t temporal_k, int64_t spatial_k) {
  const int64_t d2 = spatial_k * spatial_k;
  const int64_t numer = temporal_k * d2 * in_channels * out_channels;
  const int64_t denom = d2 * in_channels + temporal_k * out_channels;
  HWP_CHECK_MSG(denom > 0, "invalid (2+1)D factorization parameters");
  const int64_t mid = numer / denom;
  return mid > 0 ? mid : 1;
}

Conv2Plus1d::Conv2Plus1d(Conv2Plus1dConfig cfg, Rng& rng, std::string name)
    : name_(std::move(name)) {
  HWP_CHECK_MSG(cfg.in_channels > 0 && cfg.out_channels > 0,
                name_ << ": channels must be positive");
  mid_channels_ =
      cfg.mid_channels > 0
          ? cfg.mid_channels
          : R2Plus1dMidChannels(cfg.in_channels, cfg.out_channels,
                                cfg.temporal_kernel, cfg.spatial_kernel);

  Conv3dConfig sp;
  sp.in_channels = cfg.in_channels;
  sp.out_channels = mid_channels_;
  sp.kernel = {1, cfg.spatial_kernel, cfg.spatial_kernel};
  sp.stride = {1, cfg.spatial_stride, cfg.spatial_stride};
  sp.padding = {0, cfg.spatial_kernel / 2, cfg.spatial_kernel / 2};
  sp.bias = false;  // followed by BN
  spatial_ = std::make_unique<Conv3d>(sp, rng, name_ + ".spatial");

  bn_mid_ = std::make_unique<BatchNorm3d>(mid_channels_, name_ + ".bn_mid");
  relu_mid_ = std::make_unique<ReLU>(name_ + ".relu_mid");

  Conv3dConfig tp;
  tp.in_channels = mid_channels_;
  tp.out_channels = cfg.out_channels;
  tp.kernel = {cfg.temporal_kernel, 1, 1};
  tp.stride = {cfg.temporal_stride, 1, 1};
  tp.padding = {cfg.temporal_kernel / 2, 0, 0};
  tp.bias = false;
  temporal_ = std::make_unique<Conv3d>(tp, rng, name_ + ".temporal");
}

TensorF Conv2Plus1d::Forward(const TensorF& x, bool train) {
  HWP_TRACE_SCOPE("nn/conv2plus1d_forward");
  TensorF h = spatial_->Forward(x, train);
  h = bn_mid_->Forward(h, train);
  h = relu_mid_->Forward(h, train);
  return temporal_->Forward(h, train);
}

TensorF Conv2Plus1d::Backward(const TensorF& dy) {
  HWP_TRACE_SCOPE("nn/conv2plus1d_backward");
  TensorF g = temporal_->Backward(dy);
  g = relu_mid_->Backward(g);
  g = bn_mid_->Backward(g);
  return spatial_->Backward(g);
}

void Conv2Plus1d::CollectParams(std::vector<Param*>& out) {
  spatial_->CollectParams(out);
  bn_mid_->CollectParams(out);
  temporal_->CollectParams(out);
}

void Conv2Plus1d::CollectBuffers(std::vector<NamedBuffer>& out) {
  spatial_->CollectBuffers(out);
  bn_mid_->CollectBuffers(out);
  temporal_->CollectBuffers(out);
}

ResidualBlock::ResidualBlock(ResidualBlockConfig cfg, Rng& rng,
                             std::string name)
    : cfg_(cfg), name_(std::move(name)) {
  Conv2Plus1dConfig c1;
  c1.in_channels = cfg.in_channels;
  c1.out_channels = cfg.out_channels;
  c1.spatial_kernel = cfg.spatial_kernel;
  c1.temporal_kernel = cfg.temporal_kernel;
  c1.spatial_stride = cfg.spatial_stride;
  c1.temporal_stride = cfg.temporal_stride;
  conv1_ = std::make_unique<Conv2Plus1d>(c1, rng, name_ + ".conv1");
  bn1_ = std::make_unique<BatchNorm3d>(cfg.out_channels, name_ + ".bn1");
  relu1_ = std::make_unique<ReLU>(name_ + ".relu1");

  Conv2Plus1dConfig c2 = c1;
  c2.in_channels = cfg.out_channels;
  c2.spatial_stride = 1;
  c2.temporal_stride = 1;
  conv2_ = std::make_unique<Conv2Plus1d>(c2, rng, name_ + ".conv2");
  bn2_ = std::make_unique<BatchNorm3d>(cfg.out_channels, name_ + ".bn2");

  const bool needs_projection = cfg.in_channels != cfg.out_channels ||
                                cfg.spatial_stride != 1 ||
                                cfg.temporal_stride != 1;
  if (needs_projection) {
    Conv3dConfig sc;
    sc.in_channels = cfg.in_channels;
    sc.out_channels = cfg.out_channels;
    sc.kernel = {1, 1, 1};
    sc.stride = {cfg.temporal_stride, cfg.spatial_stride, cfg.spatial_stride};
    sc.padding = {0, 0, 0};
    sc.bias = false;
    shortcut_conv_ = std::make_unique<Conv3d>(sc, rng, name_ + ".shortcut");
    shortcut_bn_ =
        std::make_unique<BatchNorm3d>(cfg.out_channels, name_ + ".shortcut_bn");
  }
}

TensorF ResidualBlock::Forward(const TensorF& x, bool train) {
  HWP_TRACE_SCOPE("nn/residual_block_forward");
  TensorF h = conv1_->Forward(x, train);
  h = bn1_->Forward(h, train);
  h = relu1_->Forward(h, train);
  h = conv2_->Forward(h, train);
  h = bn2_->Forward(h, train);

  TensorF sc = x;
  if (shortcut_conv_ != nullptr) {
    sc = shortcut_conv_->Forward(x, train);
    sc = shortcut_bn_->Forward(sc, train);
  }
  HWP_SHAPE_CHECK_MSG(h.shape() == sc.shape(),
                      name_ << ": residual shape mismatch "
                            << h.shape().ToString() << " vs "
                            << sc.shape().ToString());
  TensorF sum = Add(h, sc);
  // Final ReLU.
  TensorF y(sum.shape());
  for (int64_t i = 0; i < sum.numel(); ++i)
    y[i] = sum[i] > 0.0f ? sum[i] : 0.0f;
  if (train) cached_sum_ = sum;
  return y;
}

TensorF ResidualBlock::Backward(const TensorF& dy) {
  HWP_TRACE_SCOPE("nn/residual_block_backward");
  HWP_CHECK_MSG(!cached_sum_.empty(),
                name_ << ": Backward before Forward(train=true)");
  // Through the final ReLU.
  TensorF g(dy.shape());
  for (int64_t i = 0; i < dy.numel(); ++i)
    g[i] = cached_sum_[i] > 0.0f ? dy[i] : 0.0f;

  // Main path.
  TensorF gm = bn2_->Backward(g);
  gm = conv2_->Backward(gm);
  gm = relu1_->Backward(gm);
  gm = bn1_->Backward(gm);
  gm = conv1_->Backward(gm);

  // Shortcut path.
  TensorF gs = g;
  if (shortcut_conv_ != nullptr) {
    gs = shortcut_bn_->Backward(gs);
    gs = shortcut_conv_->Backward(gs);
  }
  return Add(gm, gs);
}

void ResidualBlock::CollectParams(std::vector<Param*>& out) {
  conv1_->CollectParams(out);
  bn1_->CollectParams(out);
  conv2_->CollectParams(out);
  bn2_->CollectParams(out);
  if (shortcut_conv_ != nullptr) {
    shortcut_conv_->CollectParams(out);
    shortcut_bn_->CollectParams(out);
  }
}

void ResidualBlock::CollectBuffers(std::vector<NamedBuffer>& out) {
  conv1_->CollectBuffers(out);
  bn1_->CollectBuffers(out);
  conv2_->CollectBuffers(out);
  bn2_->CollectBuffers(out);
  if (shortcut_conv_ != nullptr) {
    shortcut_conv_->CollectBuffers(out);
    shortcut_bn_->CollectBuffers(out);
  }
}

}  // namespace hwp3d::nn
