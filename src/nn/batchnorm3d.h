// BatchNorm3d: per-channel normalization over (B, D, H, W).
//
// R(2+1)D interleaves batch normalization between the spatial and temporal
// convolutions of every factorized block; on the accelerator BN folds into
// the post-processing unit (scale + shift per channel).
#pragma once

#include "nn/module.h"

namespace hwp3d::nn {

class BatchNorm3d : public Module {
 public:
  BatchNorm3d(int64_t channels, std::string name = "bn",
              float eps = 1e-5f, float momentum = 0.1f);

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  void CollectParams(std::vector<Param*>& out) override;
  void CollectBuffers(std::vector<NamedBuffer>& out) override;
  std::string name() const override { return name_; }

  int64_t channels() const { return channels_; }
  Param& gamma() { return gamma_; }
  Param& beta() { return beta_; }
  const TensorF& running_mean() const { return running_mean_; }
  const TensorF& running_var() const { return running_var_; }

  // Folded inference-time affine transform y = scale*x + shift, as
  // materialized into the FPGA post-processing unit.
  void FoldedAffine(TensorF& scale, TensorF& shift) const;

 private:
  int64_t channels_;
  std::string name_;
  float eps_;
  float momentum_;
  Param gamma_;  // [C]
  Param beta_;   // [C]
  TensorF running_mean_;
  TensorF running_var_;

  // Cached for backward.
  TensorF cached_input_;
  TensorF batch_mean_;
  TensorF batch_inv_std_;
};

}  // namespace hwp3d::nn
