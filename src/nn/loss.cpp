#include "nn/loss.h"

#include <cmath>

#include "common/error.h"

namespace hwp3d::nn {

TensorF Softmax(const TensorF& logits) {
  HWP_SHAPE_CHECK_MSG(logits.rank() == 2, "Softmax expects [B][K]");
  const int64_t B = logits.dim(0), K = logits.dim(1);
  TensorF p(logits.shape());
  for (int64_t b = 0; b < B; ++b) {
    float mx = logits(b, 0);
    for (int64_t k = 1; k < K; ++k) mx = std::max(mx, logits(b, k));
    double denom = 0.0;
    for (int64_t k = 0; k < K; ++k) {
      const double e = std::exp(static_cast<double>(logits(b, k)) - mx);
      p(b, k) = static_cast<float>(e);
      denom += e;
    }
    for (int64_t k = 0; k < K; ++k)
      p(b, k) = static_cast<float>(p(b, k) / denom);
  }
  return p;
}

LossResult SoftmaxCrossEntropy(const TensorF& logits,
                               const std::vector<int>& labels,
                               float smoothing) {
  HWP_SHAPE_CHECK_MSG(logits.rank() == 2, "loss expects [B][K] logits");
  const int64_t B = logits.dim(0), K = logits.dim(1);
  HWP_CHECK_MSG(static_cast<int64_t>(labels.size()) == B,
                "labels size " << labels.size() << " vs batch " << B);
  HWP_CHECK_MSG(smoothing >= 0.0f && smoothing < 1.0f,
                "smoothing must be in [0,1)");

  LossResult out;
  out.grad = TensorF(logits.shape());
  const TensorF p = Softmax(logits);
  const float off_target = smoothing / static_cast<float>(K);
  const float on_target = 1.0f - smoothing + off_target;

  double total = 0.0;
  for (int64_t b = 0; b < B; ++b) {
    const int y = labels[static_cast<size_t>(b)];
    HWP_CHECK_MSG(y >= 0 && y < K, "label " << y << " out of range");
    // loss = -sum_k t_k log p_k with t the smoothed target distribution.
    for (int64_t k = 0; k < K; ++k) {
      const float t = (k == y) ? on_target : off_target;
      const double logp =
          std::log(std::max(static_cast<double>(p(b, k)), 1e-12));
      total -= t * logp;
      out.grad(b, k) = (p(b, k) - t) / static_cast<float>(B);
    }
    int64_t am = 0;
    for (int64_t k = 1; k < K; ++k)
      if (logits(b, k) > logits(b, am)) am = k;
    if (am == y) ++out.correct;
  }
  out.loss = static_cast<float>(total / B);
  return out;
}

}  // namespace hwp3d::nn
