// R(2+1)D building blocks.
//
// A (2+1)D convolution factorizes a t x d x d 3D convolution into a
// 1 x d x d spatial convolution into `mid` channels followed by a
// t x 1 x 1 temporal convolution, with BN + ReLU in between (Tran et al.,
// CVPR'18, as adopted by the paper's Table I). The mid-channel count
// follows the parameter-matching formula
//     mid = floor(t d^2 N M / (d^2 N + t M)).
#pragma once

#include <memory>

#include "nn/activations.h"
#include "nn/batchnorm3d.h"
#include "nn/conv3d.h"
#include "nn/module.h"

namespace hwp3d::nn {

// Parameter-matching mid-channel count for a (2+1)D factorization of a
// t x d x d kernel from N input to M output channels.
int64_t R2Plus1dMidChannels(int64_t in_channels, int64_t out_channels,
                            int64_t temporal_k, int64_t spatial_k);

struct Conv2Plus1dConfig {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t spatial_kernel = 3;    // d
  int64_t temporal_kernel = 3;   // t
  // Strides applied to the factorized pair: the spatial conv carries the
  // spatial stride, the temporal conv the temporal stride.
  int64_t spatial_stride = 1;
  int64_t temporal_stride = 1;
  // 0 = use the parameter-matching formula.
  int64_t mid_channels = 0;
};

// spatial conv -> BN -> ReLU -> temporal conv.
class Conv2Plus1d : public Module {
 public:
  Conv2Plus1d(Conv2Plus1dConfig cfg, Rng& rng, std::string name = "conv2p1");

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  void CollectParams(std::vector<Param*>& out) override;
  void CollectBuffers(std::vector<NamedBuffer>& out) override;
  std::string name() const override { return name_; }

  Conv3d& spatial() { return *spatial_; }
  Conv3d& temporal() { return *temporal_; }
  BatchNorm3d& bn_mid() { return *bn_mid_; }
  int64_t mid_channels() const { return mid_channels_; }

 private:
  std::string name_;
  int64_t mid_channels_;
  std::unique_ptr<Conv3d> spatial_;
  std::unique_ptr<BatchNorm3d> bn_mid_;
  std::unique_ptr<ReLU> relu_mid_;
  std::unique_ptr<Conv3d> temporal_;
};

struct ResidualBlockConfig {
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  // Stride of the first (2+1)D conv; used by the first block of conv3_x..
  // conv5_x to halve D/R/C.
  int64_t spatial_stride = 1;
  int64_t temporal_stride = 1;
  int64_t spatial_kernel = 3;
  int64_t temporal_kernel = 3;
};

// Standard two-conv residual block with (2+1)D convolutions:
//   y = ReLU( BN(conv2(ReLU(BN(conv1(x))))) + shortcut(x) )
// The shortcut is identity when shapes match, otherwise a strided 1x1x1
// convolution + BN (the "shortcut with 2 layers" the paper counts).
class ResidualBlock : public Module {
 public:
  ResidualBlock(ResidualBlockConfig cfg, Rng& rng,
                std::string name = "resblock");

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  void CollectParams(std::vector<Param*>& out) override;
  void CollectBuffers(std::vector<NamedBuffer>& out) override;
  std::string name() const override { return name_; }

  bool has_projection() const { return shortcut_conv_ != nullptr; }
  Conv2Plus1d& conv1() { return *conv1_; }
  Conv2Plus1d& conv2() { return *conv2_; }
  BatchNorm3d& bn1() { return *bn1_; }
  BatchNorm3d& bn2() { return *bn2_; }
  Conv3d* shortcut_conv() { return shortcut_conv_.get(); }
  BatchNorm3d* shortcut_bn() { return shortcut_bn_.get(); }
  const ResidualBlockConfig& config() const { return cfg_; }

 private:
  ResidualBlockConfig cfg_;
  std::string name_;
  std::unique_ptr<Conv2Plus1d> conv1_;
  std::unique_ptr<BatchNorm3d> bn1_;
  std::unique_ptr<ReLU> relu1_;
  std::unique_ptr<Conv2Plus1d> conv2_;
  std::unique_ptr<BatchNorm3d> bn2_;
  std::unique_ptr<Conv3d> shortcut_conv_;  // null => identity shortcut
  std::unique_ptr<BatchNorm3d> shortcut_bn_;

  // Cached for backward of the final add + ReLU.
  TensorF cached_sum_;
};

}  // namespace hwp3d::nn
