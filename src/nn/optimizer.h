// SGD with momentum and weight decay, plus learning-rate schedules.
//
// The paper trains with SGD (lr 5e-3 unpruned, 5e-4 for ADMM/retraining),
// warmup and cosine annealing during masked retraining.
#pragma once

#include <cmath>
#include <unordered_map>
#include <vector>

#include "nn/param.h"

namespace hwp3d::nn {

struct SgdConfig {
  float lr = 1e-2f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
};

class Sgd {
 public:
  Sgd(std::vector<Param*> params, SgdConfig cfg);

  // One update step using each param's accumulated gradient.
  void Step();

  void set_lr(float lr) { cfg_.lr = lr; }
  float lr() const { return cfg_.lr; }

  void ZeroGrad() {
    for (Param* p : params_) p->ZeroGrad();
  }

 private:
  std::vector<Param*> params_;
  SgdConfig cfg_;
  std::vector<TensorF> velocity_;
};

// Learning-rate schedule interface: maps a global step/epoch to an lr.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float LrAt(int epoch) const = 0;
};

// Constant lr.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float LrAt(int) const override { return lr_; }

 private:
  float lr_;
};

// Multiplies by `gamma` every `step_size` epochs.
class StepLr : public LrSchedule {
 public:
  StepLr(float base_lr, int step_size, float gamma)
      : base_(base_lr), step_(step_size), gamma_(gamma) {}
  float LrAt(int epoch) const override {
    return base_ * std::pow(gamma_, static_cast<float>(epoch / step_));
  }

 private:
  float base_;
  int step_;
  float gamma_;
};

// Linear warmup for `warmup_epochs`, then cosine decay to `min_lr` at
// `total_epochs` — the paper's masked-retraining schedule.
class WarmupCosineLr : public LrSchedule {
 public:
  WarmupCosineLr(float base_lr, int warmup_epochs, int total_epochs,
                 float min_lr = 0.0f)
      : base_(base_lr),
        warmup_(warmup_epochs),
        total_(total_epochs),
        min_(min_lr) {}

  float LrAt(int epoch) const override {
    if (warmup_ > 0 && epoch < warmup_) {
      return base_ * static_cast<float>(epoch + 1) /
             static_cast<float>(warmup_);
    }
    const float progress =
        total_ > warmup_
            ? static_cast<float>(epoch - warmup_) /
                  static_cast<float>(total_ - warmup_)
            : 1.0f;
    const float clipped = std::min(1.0f, std::max(0.0f, progress));
    return min_ + 0.5f * (base_ - min_) *
                      (1.0f + std::cos(clipped * 3.14159265358979f));
  }

 private:
  float base_;
  int warmup_;
  int total_;
  float min_;
};

}  // namespace hwp3d::nn
