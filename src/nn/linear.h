// Linear (fully-connected) layer: y = x W^T + b, x is [B][in].
#pragma once

#include "common/rng.h"
#include "nn/module.h"

namespace hwp3d::nn {

class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         std::string name = "fc");

  TensorF Forward(const TensorF& x, bool train) override;
  TensorF Backward(const TensorF& dy) override;
  void CollectParams(std::vector<Param*>& out) override;
  std::string name() const override { return name_; }

  Param& weight() { return weight_; }  // [out][in]
  Param& bias() { return bias_; }      // [out]

 private:
  int64_t in_features_;
  int64_t out_features_;
  std::string name_;
  Param weight_;
  Param bias_;
  TensorF cached_input_;
};

}  // namespace hwp3d::nn
