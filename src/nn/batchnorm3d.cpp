#include "nn/batchnorm3d.h"

#include <cmath>

namespace hwp3d::nn {

BatchNorm3d::BatchNorm3d(int64_t channels, std::string name, float eps,
                         float momentum)
    : channels_(channels),
      name_(std::move(name)),
      eps_(eps),
      momentum_(momentum),
      gamma_(name_ + ".gamma", Shape{channels}),
      beta_(name_ + ".beta", Shape{channels}),
      running_mean_(Shape{channels}, 0.0f),
      running_var_(Shape{channels}, 1.0f) {
  HWP_CHECK_MSG(channels > 0, "BatchNorm3d needs positive channel count");
  gamma_.value.Fill(1.0f);
  beta_.value.Fill(0.0f);
}

TensorF BatchNorm3d::Forward(const TensorF& x, bool train) {
  HWP_SHAPE_CHECK_MSG(x.rank() == 5 && x.dim(1) == channels_,
                      name_ << ": bad input " << x.shape().ToString());
  const int64_t B = x.dim(0), C = channels_;
  const int64_t D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const int64_t per_channel = B * D * H * W;

  TensorF mean(Shape{C});
  TensorF inv_std(Shape{C});
  if (train) {
    for (int64_t c = 0; c < C; ++c) {
      double s = 0.0;
      for (int64_t b = 0; b < B; ++b)
        for (int64_t d = 0; d < D; ++d)
          for (int64_t h = 0; h < H; ++h)
            for (int64_t w = 0; w < W; ++w) s += x(b, c, d, h, w);
      mean[c] = static_cast<float>(s / per_channel);
    }
    for (int64_t c = 0; c < C; ++c) {
      double s = 0.0;
      for (int64_t b = 0; b < B; ++b)
        for (int64_t d = 0; d < D; ++d)
          for (int64_t h = 0; h < H; ++h)
            for (int64_t w = 0; w < W; ++w) {
              const double dev = x(b, c, d, h, w) - mean[c];
              s += dev * dev;
            }
      const float var = static_cast<float>(s / per_channel);
      inv_std[c] = 1.0f / std::sqrt(var + eps_);
      running_mean_[c] =
          (1.0f - momentum_) * running_mean_[c] + momentum_ * mean[c];
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * var;
    }
  } else {
    for (int64_t c = 0; c < C; ++c) {
      mean[c] = running_mean_[c];
      inv_std[c] = 1.0f / std::sqrt(running_var_[c] + eps_);
    }
  }

  TensorF y(x.shape());
  for (int64_t b = 0; b < B; ++b)
    for (int64_t c = 0; c < C; ++c) {
      const float g = gamma_.value[c], bt = beta_.value[c];
      const float mu = mean[c], is = inv_std[c];
      for (int64_t d = 0; d < D; ++d)
        for (int64_t h = 0; h < H; ++h)
          for (int64_t w = 0; w < W; ++w)
            y(b, c, d, h, w) = g * (x(b, c, d, h, w) - mu) * is + bt;
    }

  if (train) {
    cached_input_ = x;
    batch_mean_ = mean;
    batch_inv_std_ = inv_std;
  }
  return y;
}

TensorF BatchNorm3d::Backward(const TensorF& dy) {
  const TensorF& x = cached_input_;
  HWP_CHECK_MSG(!x.empty(), name_ << ": Backward before Forward(train=true)");
  const int64_t B = x.dim(0), C = channels_;
  const int64_t D = x.dim(2), H = x.dim(3), W = x.dim(4);
  const double n = static_cast<double>(B * D * H * W);

  TensorF dx(x.shape());
  for (int64_t c = 0; c < C; ++c) {
    const float mu = batch_mean_[c];
    const float is = batch_inv_std_[c];
    const float g = gamma_.value[c];
    // Reductions: sum dy, sum dy*xhat.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (int64_t b = 0; b < B; ++b)
      for (int64_t d = 0; d < D; ++d)
        for (int64_t h = 0; h < H; ++h)
          for (int64_t w = 0; w < W; ++w) {
            const float xhat = (x(b, c, d, h, w) - mu) * is;
            const float gy = dy(b, c, d, h, w);
            sum_dy += gy;
            sum_dy_xhat += static_cast<double>(gy) * xhat;
          }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    // dx = (g*is/n) * (n*dy - sum_dy - xhat * sum_dy_xhat)
    const double k = static_cast<double>(g) * is / n;
    for (int64_t b = 0; b < B; ++b)
      for (int64_t d = 0; d < D; ++d)
        for (int64_t h = 0; h < H; ++h)
          for (int64_t w = 0; w < W; ++w) {
            const float xhat = (x(b, c, d, h, w) - mu) * is;
            dx(b, c, d, h, w) = static_cast<float>(
                k * (n * dy(b, c, d, h, w) - sum_dy - xhat * sum_dy_xhat));
          }
  }
  return dx;
}

void BatchNorm3d::CollectParams(std::vector<Param*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm3d::CollectBuffers(std::vector<NamedBuffer>& out) {
  out.push_back({name_ + ".running_mean", &running_mean_});
  out.push_back({name_ + ".running_var", &running_var_});
}

void BatchNorm3d::FoldedAffine(TensorF& scale, TensorF& shift) const {
  scale = TensorF(Shape{channels_});
  shift = TensorF(Shape{channels_});
  for (int64_t c = 0; c < channels_; ++c) {
    const float is = 1.0f / std::sqrt(running_var_[c] + eps_);
    scale[c] = gamma_.value[c] * is;
    shift[c] = beta_.value[c] - gamma_.value[c] * running_mean_[c] * is;
  }
}

}  // namespace hwp3d::nn
