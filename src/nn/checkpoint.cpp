#include "nn/checkpoint.h"

#include <cstring>
#include <fstream>

#include "common/error.h"
#include "tensor/serialize.h"

namespace hwp3d::nn {
namespace {

constexpr char kMagic[4] = {'H', 'W', 'P', 'C'};
constexpr uint32_t kVersion = 1;

void WriteString(std::ostream& os, const std::string& s) {
  const uint32_t len = static_cast<uint32_t>(s.size());
  os.write(reinterpret_cast<const char*>(&len), sizeof(len));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string ReadString(std::istream& is) {
  uint32_t len = 0;
  is.read(reinterpret_cast<char*>(&len), sizeof(len));
  HWP_CHECK_MSG(static_cast<bool>(is) && len < (1u << 20),
                "corrupt checkpoint string");
  std::string s(len, '\0');
  is.read(s.data(), len);
  HWP_CHECK_MSG(static_cast<bool>(is), "truncated checkpoint string");
  return s;
}

}  // namespace

void SaveCheckpoint(const std::string& path, Module& model) {
  std::ofstream os(path, std::ios::binary);
  HWP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  os.write(kMagic, 4);
  os.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const auto params = model.Params();
  const uint64_t count = params.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (Param* p : params) {
    WriteString(os, p->name);
    WriteTensor(os, p->value);
  }
  HWP_CHECK_MSG(static_cast<bool>(os), "checkpoint write failed");
}

void LoadCheckpoint(const std::string& path, Module& model) {
  std::ifstream is(path, std::ios::binary);
  HWP_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  char magic[4];
  is.read(magic, 4);
  HWP_CHECK_MSG(static_cast<bool>(is) && std::memcmp(magic, kMagic, 4) == 0,
                "bad checkpoint magic in " << path);
  uint32_t version = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  HWP_CHECK_MSG(version == kVersion, "unsupported checkpoint version");
  uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  const auto params = model.Params();
  HWP_CHECK_MSG(count == params.size(),
                "checkpoint has " << count << " params, model expects "
                                  << params.size());
  for (Param* p : params) {
    const std::string name = ReadString(is);
    HWP_CHECK_MSG(name == p->name, "checkpoint param '"
                                       << name << "' does not match model '"
                                       << p->name << "'");
    TensorF value = ReadTensor(is);
    HWP_SHAPE_CHECK_MSG(value.shape() == p->value.shape(),
                        p->name << ": checkpoint shape "
                                << value.shape().ToString() << " vs model "
                                << p->value.shape().ToString());
    p->value = std::move(value);
  }
}

}  // namespace hwp3d::nn
