#include "nn/checkpoint.h"

#include <cstring>
#include <fstream>

#include "common/error.h"
#include "common/fault_injection.h"
#include "common/strings.h"
#include "tensor/serialize.h"

namespace hwp3d::nn {
namespace {

constexpr char kMagic[4] = {'H', 'W', 'P', 'C'};
// v1: params only; v2 appends the inference buffers (BN running stats).
constexpr uint32_t kVersion = 2;

void WriteString(std::ostream& os, const std::string& s) {
  const uint32_t len = static_cast<uint32_t>(s.size());
  os.write(reinterpret_cast<const char*>(&len), sizeof(len));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

Status ReadString(std::istream& is, const std::string& path,
                  std::string& out) {
  uint32_t len = 0;
  is.read(reinterpret_cast<char*>(&len), sizeof(len));
  if (!is || len >= (1u << 20)) {
    return DataLossError("corrupt string in checkpoint " + path);
  }
  out.assign(len, '\0');
  is.read(out.data(), len);
  if (!is) return DataLossError("truncated string in checkpoint " + path);
  return Status::Ok();
}

// Reads one named tensor and stores it into `dst` after checking name
// and shape against the model's expectation.
Status LoadNamedTensor(std::istream& is, const std::string& path,
                       const std::string& expected_name, TensorF& dst,
                       const char* what) {
  std::string name;
  HWP_RETURN_IF_ERROR(ReadString(is, path, name));
  if (name != expected_name) {
    return InvalidArgumentError(StrFormat(
        "checkpoint %s '%s' does not match model '%s' (in %s)", what,
        name.c_str(), expected_name.c_str(), path.c_str()));
  }
  TensorF value;
  try {
    value = ReadTensor(is);
  } catch (const Error& e) {
    return DataLossError(StrFormat("while reading %s '%s' from %s: %s", what,
                                   expected_name.c_str(), path.c_str(),
                                   e.what()));
  }
  if (!(value.shape() == dst.shape())) {
    return InvalidArgumentError(StrFormat(
        "%s '%s': checkpoint shape %s vs model %s", what,
        expected_name.c_str(), value.shape().ToString().c_str(),
        dst.shape().ToString().c_str()));
  }
  dst = std::move(value);
  return Status::Ok();
}

}  // namespace

Status SaveCheckpoint(const std::string& path, Module& model) {
  if (FaultInjector::Get().Trip("ckpt.save")) {
    return UnavailableError("injected fault: ckpt.save (" + path + ")");
  }
  std::ofstream os(path, std::ios::binary);
  if (!os.is_open()) {
    return NotFoundError("cannot open " + path + " for writing");
  }
  os.write(kMagic, 4);
  os.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  const auto params = model.Params();
  const uint64_t count = params.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (Param* p : params) {
    WriteString(os, p->name);
    WriteTensor(os, p->value);
  }
  const auto buffers = model.Buffers();
  const uint64_t buffer_count = buffers.size();
  os.write(reinterpret_cast<const char*>(&buffer_count),
           sizeof(buffer_count));
  for (const NamedBuffer& b : buffers) {
    WriteString(os, b.name);
    WriteTensor(os, *b.tensor);
  }
  if (!os) return DataLossError("checkpoint write failed: " + path);
  return Status::Ok();
}

Status LoadCheckpoint(const std::string& path, Module& model) {
  if (FaultInjector::Get().Trip("ckpt.load")) {
    return UnavailableError("injected fault: ckpt.load (" + path + ")");
  }
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    return NotFoundError("cannot open checkpoint " + path +
                         " for reading (no such file?)");
  }
  char magic[4];
  is.read(magic, 4);
  if (!is || std::memcmp(magic, kMagic, 4) != 0) {
    return DataLossError("bad checkpoint magic in " + path +
                         " (not an HWPC file)");
  }
  uint32_t version = 0;
  is.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!is || version < 1 || version > kVersion) {
    return InvalidArgumentError(
        StrFormat("unsupported checkpoint version %u in %s (this build "
                  "reads 1..%u)",
                  version, path.c_str(), kVersion));
  }
  uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  const auto params = model.Params();
  if (!is || count != params.size()) {
    return InvalidArgumentError(StrFormat(
        "checkpoint %s has %llu params, model '%s' expects %zu",
        path.c_str(), static_cast<unsigned long long>(count),
        model.name().c_str(), params.size()));
  }
  for (Param* p : params) {
    HWP_RETURN_IF_ERROR(LoadNamedTensor(is, path, p->name, p->value,
                                        "param"));
  }
  if (version < 2) return Status::Ok();  // v1: no buffer section
  uint64_t buffer_count = 0;
  is.read(reinterpret_cast<char*>(&buffer_count), sizeof(buffer_count));
  const auto buffers = model.Buffers();
  if (!is || buffer_count != buffers.size()) {
    return InvalidArgumentError(StrFormat(
        "checkpoint %s has %llu buffers, model '%s' expects %zu",
        path.c_str(), static_cast<unsigned long long>(buffer_count),
        model.name().c_str(), buffers.size()));
  }
  for (const NamedBuffer& b : buffers) {
    HWP_RETURN_IF_ERROR(LoadNamedTensor(is, path, b.name, *b.tensor,
                                        "buffer"));
  }
  return Status::Ok();
}

}  // namespace hwp3d::nn
