// Param: a learnable tensor with its gradient accumulator.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace hwp3d::nn {

// One trainable parameter. `grad` always has the same shape as `value`
// and is accumulated by Module::Backward; optimizers consume and the
// caller clears it via ZeroGrad.
struct Param {
  std::string name;
  TensorF value;
  TensorF grad;

  Param() = default;
  Param(std::string n, Shape shape)
      : name(std::move(n)), value(shape), grad(shape) {}

  void ZeroGrad() { grad.Fill(0.0f); }
};

}  // namespace hwp3d::nn
