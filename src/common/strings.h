// Small string/formatting helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace hwp3d {

// Formats like printf into a std::string.
std::string StrFormat(const char* fmt, ...);

// Joins items with a separator: Join({1,2,3}, "x") == "1x2x3".
std::string Join(const std::vector<int64_t>& items, const std::string& sep);

// Human-readable quantities: 1234567 -> "1.23M", 2048 -> "2.05K".
std::string HumanCount(double value);

// Bytes with binary units: 1536 -> "1.50 KiB".
std::string HumanBytes(double bytes);

}  // namespace hwp3d
