// ParallelFor: chunked parallel loop over the persistent ThreadPool.
//
// Historically this spawned fresh std::threads per call and type-erased
// the body through a heap-allocating std::function; it is now a thin
// template (no std::function, no per-call threads) over
// hwp3d::ThreadPool — see kernels/thread_pool.h for the execution
// guarantees (exactly-once, exception rethrow on the caller, serial
// fallback for small ranges / HWP_THREADS=1, serial inline nesting).
#pragma once

#include <cstdint>
#include <utility>

#include "kernels/thread_pool.h"

namespace hwp3d {

// Invokes body(i) for i in [begin, end) across the process-wide pool.
// `threads == 1` forces serial in-order execution; other values are a
// legacy hint (the pool size is fixed by HWP_THREADS at startup).
template <typename Body>
inline void ParallelFor(int64_t begin, int64_t end, Body&& body,
                        int threads = 0) {
  ThreadPool::Get().For(begin, end, std::forward<Body>(body), threads);
}

}  // namespace hwp3d
