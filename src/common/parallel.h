// ParallelFor: static range partitioning over std::thread.
//
// Used by the convolution kernels to parallelize over independent output
// slices. Exceptions thrown by the body are rethrown on the caller thread.
#pragma once

#include <algorithm>
#include <cstdint>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace hwp3d {

// Invokes body(i) for i in [begin, end) across up to `threads` workers.
// Falls back to serial execution for small ranges.
inline void ParallelFor(int64_t begin, int64_t end,
                        const std::function<void(int64_t)>& body,
                        int threads = 0) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  const int workers =
      static_cast<int>(std::min<int64_t>(threads, n));
  if (workers <= 1) {
    for (int64_t i = begin; i < end; ++i) body(i);
    return;
  }
  std::vector<std::thread> pool;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(workers));
  const int64_t chunk = (n + workers - 1) / workers;
  for (int w = 0; w < workers; ++w) {
    const int64_t lo = begin + w * chunk;
    const int64_t hi = std::min(end, lo + chunk);
    pool.emplace_back([&, w, lo, hi]() {
      try {
        for (int64_t i = lo; i < hi; ++i) body(i);
      } catch (...) {
        errors[static_cast<size_t>(w)] = std::current_exception();
      }
    });
  }
  for (auto& t : pool) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace hwp3d
