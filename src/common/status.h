// Status / StatusOr<T>: recoverable-error returns for the public API.
//
// The library historically signalled misuse by throwing hwp3d::Error.
// Facade-level entry points (serving, checkpoint I/O, model compilation)
// instead return a Status — callers decide whether a missing checkpoint
// or a full request queue is fatal, without try/catch at every call
// site. Internal invariants keep using HWP_CHECK/HWP_DCHECK.
//
//   Status s = nn::LoadCheckpoint(path, model);
//   if (!s.ok()) { HWP_LOG(Error) << s.ToString(); return s; }
//
//   StatusOr<InferenceResult> r = session->Submit(clip);
//   if (r.ok()) Use(r->label);
#pragma once

#include <new>
#include <string>
#include <string_view>
#include <utility>

#include "common/error.h"

namespace hwp3d {

// Subset of the canonical google/absl status space that this library
// actually produces; keep values stable — they appear in logs/JSON.
enum class StatusCode : int {
  kOk = 0,
  kCancelled = 1,
  kInvalidArgument = 3,
  kDeadlineExceeded = 4,
  kNotFound = 5,
  kResourceExhausted = 8,
  kFailedPrecondition = 9,
  kUnavailable = 14,
  kDataLoss = 15,
  kInternal = 13,
};

std::string_view StatusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "RESOURCE_EXHAUSTED: queue full (capacity 64)" / "OK".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status CancelledError(std::string msg) {
  return {StatusCode::kCancelled, std::move(msg)};
}
inline Status InvalidArgumentError(std::string msg) {
  return {StatusCode::kInvalidArgument, std::move(msg)};
}
inline Status DeadlineExceededError(std::string msg) {
  return {StatusCode::kDeadlineExceeded, std::move(msg)};
}
inline Status NotFoundError(std::string msg) {
  return {StatusCode::kNotFound, std::move(msg)};
}
inline Status ResourceExhaustedError(std::string msg) {
  return {StatusCode::kResourceExhausted, std::move(msg)};
}
inline Status FailedPreconditionError(std::string msg) {
  return {StatusCode::kFailedPrecondition, std::move(msg)};
}
inline Status UnavailableError(std::string msg) {
  return {StatusCode::kUnavailable, std::move(msg)};
}
inline Status DataLossError(std::string msg) {
  return {StatusCode::kDataLoss, std::move(msg)};
}
inline Status InternalError(std::string msg) {
  return {StatusCode::kInternal, std::move(msg)};
}

// Either a value or a non-OK Status. Accessing value() on an error
// throws hwp3d::Error (programming mistake, same contract as HWP_CHECK).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    HWP_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }
  StatusOr(T value) : has_value_(true) {  // NOLINT
    new (&value_) T(std::move(value));
  }

  StatusOr(StatusOr&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>)
      : status_(std::move(other.status_)), has_value_(other.has_value_) {
    if (has_value_) new (&value_) T(std::move(other.value_));
  }
  StatusOr& operator=(StatusOr&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      Destroy();
      status_ = std::move(other.status_);
      has_value_ = other.has_value_;
      if (has_value_) new (&value_) T(std::move(other.value_));
    }
    return *this;
  }
  StatusOr(const StatusOr& other)
      : status_(other.status_), has_value_(other.has_value_) {
    if (has_value_) new (&value_) T(other.value_);
  }
  StatusOr& operator=(const StatusOr& other) {
    if (this != &other) *this = StatusOr(other);
    return *this;
  }
  ~StatusOr() { Destroy(); }

  bool ok() const { return has_value_; }
  const Status& status() const { return status_; }

  T& value() & {
    CheckHasValue();
    return value_;
  }
  const T& value() const& {
    CheckHasValue();
    return value_;
  }
  T&& value() && {
    CheckHasValue();
    return std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckHasValue() const {
    HWP_CHECK_MSG(has_value_,
                  "StatusOr::value() on error: " << status_.ToString());
  }
  void Destroy() {
    if (has_value_) value_.~T();
    has_value_ = false;
  }

  Status status_;
  bool has_value_ = false;
  union {
    T value_;
  };
};

}  // namespace hwp3d

// Propagates a non-OK Status to the caller.
#define HWP_RETURN_IF_ERROR(expr)                  \
  do {                                             \
    ::hwp3d::Status hwp_status_ = (expr);          \
    if (!hwp_status_.ok()) return hwp_status_;     \
  } while (0)
