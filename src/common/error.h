// Error handling primitives for the hwprune3d library.
//
// The library throws `hwp3d::Error` (derived from std::runtime_error) for
// all recoverable misuse (shape mismatches, invalid configurations, ...).
// HWP_CHECK is used at public API boundaries; HWP_DCHECK guards internal
// invariants and compiles away in release builds when NDEBUG is set.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace hwp3d {

// Base exception for all library errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// Thrown when tensor shapes are incompatible with the requested operation.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

// Thrown when a configuration (tiling parameters, pruning ratios, device
// limits, ...) is invalid or infeasible.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {

// Accumulates a message for a failed check and throws on destruction of
// the temporary stream; used by the HWP_CHECK macros below.
template <typename E>
[[noreturn]] inline void ThrowCheckFailure(const char* cond, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw E(os.str());
}

}  // namespace detail
}  // namespace hwp3d

#define HWP_CHECK_MSG(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream hwp_os_;                                       \
      hwp_os_ << msg;                                                   \
      ::hwp3d::detail::ThrowCheckFailure<::hwp3d::Error>(               \
          #cond, __FILE__, __LINE__, hwp_os_.str());                    \
    }                                                                   \
  } while (0)

#define HWP_CHECK(cond) HWP_CHECK_MSG(cond, "")

#define HWP_SHAPE_CHECK_MSG(cond, msg)                                  \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream hwp_os_;                                       \
      hwp_os_ << msg;                                                   \
      ::hwp3d::detail::ThrowCheckFailure<::hwp3d::ShapeError>(          \
          #cond, __FILE__, __LINE__, hwp_os_.str());                    \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define HWP_DCHECK(cond) ((void)0)
#else
#define HWP_DCHECK(cond) HWP_CHECK(cond)
#endif
