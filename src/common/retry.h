// Deadline-aware retry policy: exponential backoff with deterministic
// jitter, hard-capped by the request deadline.
//
//   RetryPolicy retry({.max_attempts = 3});
//   for (int attempt = 0;; ++attempt) {
//     Status s = TryOnce();
//     if (s.ok() || !RetryPolicy::IsRetryable(s)) return s;
//     auto backoff = retry.NextBackoffUs(attempt, NowUs(), deadline_us);
//     if (!backoff) return s;   // out of attempts or past the deadline
//     SleepUs(*backoff);
//   }
//
// The policy never schedules a retry whose backoff would land past the
// absolute deadline — a request that cannot possibly finish in time
// fails fast with the last transient status instead of sleeping into a
// guaranteed kDeadlineExceeded. Jitter is a pure function of
// (seed, attempt), so retry schedules are reproducible.
#pragma once

#include <cstdint>
#include <optional>

#include "common/status.h"

namespace hwp3d {

struct RetryConfig {
  int max_attempts = 3;           // total tries, including the first
  int64_t initial_backoff_us = 200;
  double multiplier = 2.0;
  int64_t max_backoff_us = 5'000;
  double jitter = 0.2;            // +/- fraction of the base backoff
};

class RetryPolicy {
 public:
  explicit RetryPolicy(RetryConfig config, uint64_t seed = 0x5eed);

  // Backoff to sleep before attempt `attempt + 1` (attempts are
  // 0-based), or nullopt when no retry should happen: attempts
  // exhausted, or `now_us + backoff` would pass `deadline_us`
  // (deadline 0 = none). Always >= 1 us when engaged.
  std::optional<int64_t> NextBackoffUs(int attempt, double now_us,
                                       double deadline_us) const;

  // Transient codes worth retrying; everything else is a real answer.
  static bool IsRetryable(const Status& s) {
    return s.code() == StatusCode::kUnavailable ||
           s.code() == StatusCode::kResourceExhausted;
  }

  const RetryConfig& config() const { return config_; }

 private:
  RetryConfig config_;
  uint64_t seed_;
};

}  // namespace hwp3d
