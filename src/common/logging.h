// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Usage:  HWP_LOG(Info) << "trained epoch " << e << " acc=" << acc;
// The global level defaults to Info and can be raised to silence output
// in tests/benchmarks via SetLogLevel(LogLevel::Warning).
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace hwp3d {

enum class LogLevel : int { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

// Sets the minimum level that is actually emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace detail {

// One log statement: buffers the message and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace hwp3d

#define HWP_LOG(severity)                                           \
  ::hwp3d::detail::LogMessage(::hwp3d::LogLevel::severity, __FILE__, __LINE__)
