// Minimal leveled logger. Thread-safe; writes to stderr by default.
//
// Usage:  HWP_LOG(Info) << "trained epoch " << e << " acc=" << acc;
//
// Each line carries an ISO-8601 UTC timestamp, the level, a dense
// thread id, and the source location:
//   [2026-08-07T12:34:56.789Z INFO t1 trainer.cpp:42] trained epoch ...
//
// The global level defaults to Info; it can be set programmatically via
// SetLogLevel or, before the first log statement, via the HWP_LOG_LEVEL
// environment variable (debug|info|warning|error|off, or 0-4).
//
// Output goes through a pluggable sink (SetLogSink) so tests can
// capture log lines; ResetLogSink restores the stderr sink.
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace hwp3d {

enum class LogLevel : int { Debug = 0, Info = 1, Warning = 2, Error = 3, Off = 4 };

// Sets the minimum level that is actually emitted (overrides
// HWP_LOG_LEVEL from then on).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug"/"info"/"warning"/"warn"/"error"/"off" (case-insensitive)
// or a numeric level; nullopt if unrecognized.
std::optional<LogLevel> ParseLogLevel(std::string_view text);

// Receives one fully formatted log line (no trailing newline).
using LogSink = std::function<void(LogLevel, const std::string& line)>;

// Replaces the output sink; the sink is called serialized (never
// concurrently). Pass nullptr or call ResetLogSink for the default
// stderr sink.
void SetLogSink(LogSink sink);
void ResetLogSink();

namespace detail {

// One log statement: buffers the message and flushes it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace hwp3d

#define HWP_LOG(severity)                                           \
  ::hwp3d::detail::LogMessage(::hwp3d::LogLevel::severity, __FILE__, __LINE__)
