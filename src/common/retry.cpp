#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace hwp3d {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

RetryPolicy::RetryPolicy(RetryConfig config, uint64_t seed)
    : config_(config), seed_(seed) {}

std::optional<int64_t> RetryPolicy::NextBackoffUs(int attempt, double now_us,
                                                  double deadline_us) const {
  if (attempt + 1 >= config_.max_attempts) return std::nullopt;
  double base = static_cast<double>(config_.initial_backoff_us) *
                std::pow(config_.multiplier, attempt);
  base = std::min(base, static_cast<double>(config_.max_backoff_us));
  if (config_.jitter > 0.0) {
    // Uniform in [-jitter, +jitter], a pure function of (seed, attempt).
    const double u =
        static_cast<double>(
            SplitMix64(seed_ ^ static_cast<uint64_t>(attempt)) >> 11) *
        0x1.0p-53;
    base *= 1.0 + config_.jitter * (2.0 * u - 1.0);
  }
  const int64_t backoff = std::max<int64_t>(1, std::llround(base));
  if (deadline_us > 0.0 &&
      now_us + static_cast<double>(backoff) >= deadline_us) {
    return std::nullopt;  // the retry could not finish in time anyway
  }
  return backoff;
}

}  // namespace hwp3d
