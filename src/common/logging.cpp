#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace hwp3d {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::once_flag g_env_once;
std::mutex g_emit_mutex;
LogSink g_sink;  // guarded by g_emit_mutex; empty = stderr

// HWP_LOG_LEVEL is applied once, lazily, before the first level read —
// an explicit SetLogLevel always wins afterwards.
void ApplyEnvLevelOnce() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("HWP_LOG_LEVEL");
    if (env == nullptr) return;
    if (const auto parsed = ParseLogLevel(env)) {
      g_level.store(static_cast<int>(*parsed));
    }
  });
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warning: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

// ISO-8601 UTC with milliseconds: 2026-08-07T12:34:56.789Z
std::string Timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

uint32_t ThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  ApplyEnvLevelOnce();  // consume the env var so it cannot override us
  g_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  ApplyEnvLevelOnce();
  return static_cast<LogLevel>(g_level.load());
}

std::optional<LogLevel> ParseLogLevel(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text) {
    lower += static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  }
  if (lower == "debug" || lower == "0") return LogLevel::Debug;
  if (lower == "info" || lower == "1") return LogLevel::Info;
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::Warning;
  }
  if (lower == "error" || lower == "3") return LogLevel::Error;
  if (lower == "off" || lower == "none" || lower == "4") return LogLevel::Off;
  return std::nullopt;
}

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  g_sink = std::move(sink);
}

void ResetLogSink() { SetLogSink(nullptr); }

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               static_cast<int>(GetLogLevel())),
      level_(level) {
  if (enabled_) {
    stream_ << "[" << Timestamp() << " " << LevelName(level_) << " t"
            << ThreadId() << " " << Basename(file) << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  const std::string line = stream_.str();
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (g_sink) {
    g_sink(level_, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace detail
}  // namespace hwp3d
