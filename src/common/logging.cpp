#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace hwp3d {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::Info)};
std::mutex g_emit_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warning: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level_) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace detail
}  // namespace hwp3d
