#include "common/status.h"

namespace hwp3d {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hwp3d
