#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace hwp3d {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<int64_t>& items, const std::string& sep) {
  std::ostringstream os;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) os << sep;
    os << items[i];
  }
  return os.str();
}

std::string HumanCount(double value) {
  const char* suffix = "";
  if (value >= 1e9) {
    value /= 1e9;
    suffix = "G";
  } else if (value >= 1e6) {
    value /= 1e6;
    suffix = "M";
  } else if (value >= 1e3) {
    value /= 1e3;
    suffix = "K";
  }
  return StrFormat("%.2f%s", value, suffix);
}

std::string HumanBytes(double bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 3) {
    bytes /= 1024.0;
    ++u;
  }
  return StrFormat("%.2f %s", bytes, units[u]);
}

}  // namespace hwp3d
