#include "common/fault_injection.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace hwp3d {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// FNV-1a: stable across platforms/standard libraries, unlike std::hash.
uint64_t HashName(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Uniform in [0, 1), fully determined by (seed, point name, trial).
double Hash01(uint64_t seed, uint64_t name_hash, uint64_t trial) {
  const uint64_t h = SplitMix64(seed ^ SplitMix64(name_hash ^ SplitMix64(trial)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector::FaultInjector() {
  if (const char* seed_env = std::getenv("HWP_FAULTS_SEED")) {
    char* end = nullptr;
    const unsigned long long s = std::strtoull(seed_env, &end, 10);
    if (end != seed_env && *end == '\0') seed_ = static_cast<uint64_t>(s);
  }
  if (const char* spec = std::getenv("HWP_FAULTS")) {
    Status parsed = Configure(spec);
    if (!parsed.ok()) {
      HWP_LOG(Warning) << "ignoring HWP_FAULTS: " << parsed.ToString();
    }
  }
}

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Enable(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lk(mu_);
  points_[point] = Point{spec, 0, 0};
  num_points_.store(static_cast<int>(points_.size()),
                    std::memory_order_relaxed);
}

void FaultInjector::Arm(const std::string& point, int64_t count,
                        int64_t delay_us) {
  Enable(point, FaultSpec{1.0, count, delay_us});
}

void FaultInjector::Disable(const std::string& point) {
  std::lock_guard<std::mutex> lk(mu_);
  points_.erase(point);
  num_points_.store(static_cast<int>(points_.size()),
                    std::memory_order_relaxed);
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lk(mu_);
  points_.clear();
  num_points_.store(0, std::memory_order_relaxed);
}

void FaultInjector::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lk(mu_);
  seed_ = seed;
  for (auto& [name, point] : points_) {
    point.trials = 0;
    point.injected = 0;
  }
}

bool FaultInjector::Trip(std::string_view point) {
  if (!active()) return false;
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  Point& p = it->second;
  if (p.spec.max_injections >= 0 && p.injected >= p.spec.max_injections) {
    return false;
  }
  const int64_t trial = p.trials++;
  const bool fire =
      p.spec.probability >= 1.0 ||
      (p.spec.probability > 0.0 &&
       Hash01(seed_, HashName(point), static_cast<uint64_t>(trial)) <
           p.spec.probability);
  if (fire) ++p.injected;
  return fire;
}

int64_t FaultInjector::delay_us(std::string_view point) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.spec.delay_us;
}

int64_t FaultInjector::injected(std::string_view point) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.injected;
}

int64_t FaultInjector::total_injected() const {
  std::lock_guard<std::mutex> lk(mu_);
  int64_t total = 0;
  for (const auto& [name, point] : points_) total += point.injected;
  return total;
}

Status FaultInjector::Configure(std::string_view spec) {
  // Parse everything first so a malformed entry rejects the whole spec.
  std::map<std::string, FaultSpec> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return InvalidArgumentError(StrFormat(
          "fault spec entry '%.*s' is not name=PROB[xCOUNT][dDELAY_US]",
          static_cast<int>(entry.size()), entry.data()));
    }
    const std::string name(entry.substr(0, eq));
    const std::string rest(entry.substr(eq + 1));
    FaultSpec fs;
    const char* cursor = rest.c_str();
    char* end = nullptr;
    fs.probability = std::strtod(cursor, &end);
    if (end == cursor || fs.probability < 0.0 || fs.probability > 1.0) {
      return InvalidArgumentError(StrFormat(
          "fault point '%s': probability '%s' must be a number in [0, 1]",
          name.c_str(), rest.c_str()));
    }
    cursor = end;
    while (*cursor == 'x' || *cursor == 'd') {
      const char kind = *cursor++;
      const long long v = std::strtoll(cursor, &end, 10);
      if (end == cursor || v < 0) {
        return InvalidArgumentError(StrFormat(
            "fault point '%s': bad %s suffix in '%s'", name.c_str(),
            kind == 'x' ? "count (x)" : "delay (d)", rest.c_str()));
      }
      if (kind == 'x') {
        fs.max_injections = v;
      } else {
        fs.delay_us = v;
      }
      cursor = end;
    }
    if (*cursor != '\0') {
      return InvalidArgumentError(StrFormat(
          "fault point '%s': trailing garbage '%s'", name.c_str(), cursor));
    }
    parsed[name] = fs;
  }
  for (const auto& [name, fs] : parsed) Enable(name, fs);
  return Status::Ok();
}

}  // namespace hwp3d
