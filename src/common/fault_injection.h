// Deterministic fault-injection registry.
//
// Production code marks places where the outside world can fail —
// replica inference, queue admission, checkpoint I/O — with a named
// *fault point*:
//
//   if (FaultInjector::Get().Trip("serve.replica_infer")) {
//     return UnavailableError("injected fault: serve.replica_infer");
//   }
//
// When the point is not configured, Trip() is one relaxed atomic load
// and returns false — the registry costs nothing in a healthy process.
// Faults are enabled programmatically (tests) or via the HWP_FAULTS
// environment variable (benchmarks, manual chaos runs):
//
//   HWP_FAULTS="serve.replica_infer=0.1"          10% failure rate
//   HWP_FAULTS="serve.replica_wedge=1x1d200000"   fire once, 200ms stall
//   HWP_FAULTS="ckpt.save=1x2,serve.queue_admit=0.05"
//
// Spec grammar per point: `name=PROB[xCOUNT][dDELAY_US]` where PROB is
// the per-trial firing probability in [0, 1], COUNT caps the total
// number of fires (default unlimited), and DELAY_US attaches a stall
// duration that wedge-style call sites read back via delay_us().
//
// Determinism: trial n of a point fires iff hash(seed, name, n) < PROB,
// with a per-point trial counter. The hash is a fixed FNV-1a/SplitMix64
// mix, so the same seed and trial count reproduce the same fire
// pattern on every run — and because trials are numbered by an atomic
// counter, the *number* of fires over N trials is identical regardless
// of thread interleaving. The seed comes from HWP_FAULTS_SEED or
// SetSeed().
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "common/status.h"

namespace hwp3d {

struct FaultSpec {
  double probability = 0.0;     // per-trial chance of firing, in [0, 1]
  int64_t max_injections = -1;  // total fires allowed; -1 = unlimited
  int64_t delay_us = 0;         // stall length for wedge-style points
};

class FaultInjector {
 public:
  // Process-global injector; parses HWP_FAULTS / HWP_FAULTS_SEED on
  // first access.
  static FaultInjector& Get();

  // Registers (or replaces) a fault point.
  void Enable(const std::string& point, FaultSpec spec);
  // Shorthand used by tests: fire unconditionally for exactly `count`
  // trials, optionally carrying a wedge delay.
  void Arm(const std::string& point, int64_t count, int64_t delay_us = 0);
  void Disable(const std::string& point);
  // Drops every point and resets all trial/fire counters (tests).
  void Reset();
  // Reseeds the hash; also resets trial counters so a reseeded run
  // reproduces from trial 0.
  void SetSeed(uint64_t seed);

  // Rolls the dice for one trial at `point`. Returns true when the
  // fault fires (and counts it). Thread-safe; false for unknown points.
  bool Trip(std::string_view point);

  // Configured stall for the point (0 when none / unknown).
  int64_t delay_us(std::string_view point) const;
  // Fires so far at the point / across all points.
  int64_t injected(std::string_view point) const;
  int64_t total_injected() const;
  // True when at least one point is configured (fast pre-check).
  bool active() const {
    return num_points_.load(std::memory_order_relaxed) > 0;
  }

  // Parses an HWP_FAULTS-style spec list and enables every point in
  // it. Malformed entries make the whole call fail without side
  // effects on the valid points already registered.
  Status Configure(std::string_view spec);

 private:
  FaultInjector();

  struct Point {
    FaultSpec spec;
    int64_t trials = 0;
    int64_t injected = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Point, std::less<>> points_;
  std::atomic<int> num_points_{0};
  uint64_t seed_ = 0x5eed;
};

}  // namespace hwp3d
