// Deterministic random number generation.
//
// All stochastic components (weight init, data synthesis, SGD shuffling)
// take an explicit Rng so experiments are reproducible bit-for-bit across
// runs with the same seed.
#pragma once

#include <cstdint>
#include <random>

namespace hwp3d {

// Thin wrapper over std::mt19937_64 with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  // Uniform in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Standard normal scaled by stddev.
  double Normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Bernoulli trial.
  bool Flip(double p = 0.5) {
    return std::bernoulli_distribution(p)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace hwp3d
