// Concurrent batched-inference server over the compiled accelerator
// simulator.
//
//   requests ──Push──▶ RequestQueue ──PopBatch──▶ dispatcher thread
//                                                      │
//                                        ThreadPool::For(0, replicas)
//                                          replica 0 │ replica 1 │ ...
//                                          (one TiledConvSim each)
//
// One dispatcher thread pops batches (flushing at max_batch or
// max_delay_us) and fans each batch out across N replicas of the
// compiled model on the process-wide hwp3d::ThreadPool: replica r runs
// batch items r, r+N, r+2N, ... so a batch of B clips costs ceil(B/N)
// serial clip times. Every replica is a copy of the same immutable
// CompiledTinyR2Plus1d, so predictions are bitwise identical for any
// replica count and identical to calling Infer() directly.
//
// Admission control: the bounded queue rejects with kResourceExhausted
// instead of blocking producers. Requests carry optional absolute
// deadlines; a request whose deadline passed while queued is completed
// with kDeadlineExceeded without touching a replica. Shutdown(drain)
// stops admission and completes every already-accepted request.
//
// Metrics: serve.accepted/rejected/deadline_exceeded/completed/batches
// counters, serve.queue_depth gauge, serve.batch_size and
// serve.latency_us histograms; trace span "serve/batch" per dispatch.
#pragma once

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "fpga/model_compiler.h"
#include "serve/request_queue.h"

namespace hwp3d::serve {

struct ServerConfig {
  int replicas = 1;
  int max_batch = 8;
  int64_t max_delay_us = 2000;    // flush timer from oldest request
  size_t queue_capacity = 64;
  int64_t default_deadline_us = 0;  // relative, applied at Submit; 0 = none
};

struct ServerStats {
  int64_t accepted = 0;
  int64_t rejected = 0;           // admission failures (queue full)
  int64_t deadline_exceeded = 0;
  int64_t completed = 0;
  int64_t batches = 0;
  int64_t queue_depth = 0;        // at the time of the Stats() call
  double mean_batch_size = 0.0;
  // End-to-end (enqueue -> completion) latency percentiles over every
  // completed request, in milliseconds.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

class InferenceServer {
 public:
  // Takes its own replicas: `config.replicas` copies of `model`.
  InferenceServer(const fpga::CompiledTinyR2Plus1d& model,
                  ServerConfig config);
  ~InferenceServer();  // graceful drain

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Admits one clip; the future resolves when a replica has run it (or
  // with kDeadlineExceeded / kCancelled). `deadline_us` is relative to
  // now; 0 uses config.default_deadline_us. Admission failure is
  // reported through the future for a uniform error path.
  std::future<StatusOr<InferenceResult>> SubmitAsync(
      TensorF clip, int64_t deadline_us = 0);

  // Blocking convenience wrapper around SubmitAsync.
  StatusOr<InferenceResult> Submit(const TensorF& clip,
                                   int64_t deadline_us = 0);

  // Stops admission, waits for every accepted request to complete, and
  // joins the dispatcher. Idempotent.
  void Shutdown();

  ServerStats Stats() const;
  const ServerConfig& config() const { return config_; }

 private:
  void DispatchLoop();
  void RunBatch(std::vector<Request>& batch);

  ServerConfig config_;
  std::vector<fpga::CompiledTinyR2Plus1d> replicas_;
  RequestQueue queue_;
  std::thread dispatcher_;
  std::mutex shutdown_mu_;  // serializes the dispatcher join

  // Aggregate counters; latencies_ feeds the Stats() percentiles.
  mutable std::mutex stats_mu_;
  ServerStats totals_;
  std::vector<double> latencies_us_;
};

// Sorted-copy percentile helper (q in [0,1]); exposed for the bench.
double PercentileUs(std::vector<double> latencies_us, double q);

}  // namespace hwp3d::serve
