// Concurrent batched-inference server over the compiled accelerator
// simulator, hardened for faulty replicas.
//
//   requests ──Push──▶ RequestQueue ──PopBatch──▶ dispatcher thread
//                                                      │
//                                        ThreadPool::For over healthy set
//                                          lane 0 │ lane 1 │ ...   ◀─┐
//                                          (one TiledConvSim each)   │
//                                                 watchdog thread ───┘
//
// One dispatcher thread pops batches (flushing at max_batch or
// max_delay_us) and fans each batch out across the *healthy* replicas
// of the compiled model on the process-wide hwp3d::ThreadPool: with L
// healthy replicas, lane k runs batch items k, k+L, k+2L, ... Every
// replica is a copy of the same immutable CompiledTinyR2Plus1d, so
// predictions are bitwise identical for any replica count — which is
// what makes quarantine-and-re-stripe a safe degradation.
//
// Fault tolerance:
//  * Transient replica failures (fault points `serve.replica_infer` /
//    `serve.replica_infer.r<k>`) are retried per `config.retry` —
//    exponential backoff + deterministic jitter, never sleeping past
//    the request deadline. Items that exhaust their lane's retries get
//    one rescue pass on the current healthy set before failing
//    truthfully with the transient status.
//  * Every attempt outcome feeds ReplicaHealth; `quarantine_after`
//    consecutive failures quarantine the replica (never the last one)
//    and subsequent batches re-stripe across the survivors.
//  * A watchdog thread (enabled by `watchdog_timeout_us > 0`) detects
//    a batch stuck longer than the timeout — e.g. a wedged replica —
//    and fails its outstanding requests with kDeadlineExceeded so
//    waiters and Shutdown() are never hostage to one bad replica call.
//  * Deadlines are enforced both at batch dispatch and again per item
//    immediately before the replica call, so a request that expires
//    mid-batch returns kDeadlineExceeded instead of a stale OK.
//
// Admission control: the bounded queue rejects with kResourceExhausted
// instead of blocking producers; the fault point `serve.queue_admit`
// can inject admission failures. Shutdown(drain) stops admission and
// completes every already-accepted request.
//
// Metrics: serve.accepted/rejected/deadline_exceeded/completed/batches
// plus serve.retries/faults_injected/replicas_quarantined/
// watchdog_fired counters, serve.queue_depth and serve.healthy_replicas
// gauges, serve.batch_size and serve.latency_us histograms; trace span
// "serve/batch" per dispatch.
#pragma once

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/retry.h"
#include "fpga/model_compiler.h"
#include "serve/replica_health.h"
#include "serve/request_queue.h"

namespace hwp3d::serve {

struct ServerConfig {
  int replicas = 1;
  int max_batch = 8;
  int64_t max_delay_us = 2000;    // flush timer from oldest request
  size_t queue_capacity = 64;
  int64_t default_deadline_us = 0;  // relative, applied at Submit; 0 = none
  RetryConfig retry;                // transient replica-failure retries
  int quarantine_after = 3;         // consecutive failures -> quarantine
  int64_t watchdog_timeout_us = 0;  // stuck-batch kill switch; 0 = off
};

struct ServerStats {
  int64_t accepted = 0;
  int64_t rejected = 0;           // admission failures (queue full)
  int64_t deadline_exceeded = 0;
  int64_t completed = 0;
  int64_t batches = 0;
  int64_t retries = 0;            // backoff-then-retry attempts
  int64_t faults_injected = 0;    // fault-point trips observed in serve
  int64_t watchdog_fired = 0;     // stuck batches killed
  int64_t replicas_quarantined = 0;  // currently quarantined
  int64_t healthy_replicas = 0;
  int64_t queue_depth = 0;        // at the time of the Stats() call
  double mean_batch_size = 0.0;
  // End-to-end (enqueue -> completion) latency percentiles over every
  // completed request, in milliseconds.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

class InferenceServer {
 public:
  // Takes its own replicas: `config.replicas` copies of `model`.
  InferenceServer(const fpga::CompiledTinyR2Plus1d& model,
                  ServerConfig config);
  ~InferenceServer();  // graceful drain

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Admits one clip; the future resolves when a replica has run it (or
  // with kDeadlineExceeded / kUnavailable / kCancelled). `deadline_us`
  // is relative to now; 0 uses config.default_deadline_us. Admission
  // failure is reported through the future for a uniform error path.
  std::future<StatusOr<InferenceResult>> SubmitAsync(
      TensorF clip, int64_t deadline_us = 0);

  // Blocking convenience wrapper around SubmitAsync.
  StatusOr<InferenceResult> Submit(const TensorF& clip,
                                   int64_t deadline_us = 0);

  // Stops admission, waits for every accepted request to complete, and
  // joins the dispatcher + watchdog. Idempotent.
  void Shutdown();

  ServerStats Stats() const;
  const ServerConfig& config() const { return config_; }

 private:
  // A queued request plus a claim flag so exactly one of {replica lane,
  // rescue pass, queued-deadline check, watchdog} resolves the promise.
  struct Pending {
    explicit Pending(Request&& r) : req(std::move(r)) {}
    Request req;
    std::atomic<bool> claimed{false};
    // True for the first caller; the winner must then resolve req.promise.
    bool Claim() { return !claimed.exchange(true); }
  };

  // The batch currently fanned out on the replicas, as seen by the
  // watchdog. Valid only while registered (guarded by watch_mu_).
  struct WatchTarget {
    double start_us = 0.0;
    std::vector<Pending*>* live = nullptr;
    std::atomic<bool>* cancelled = nullptr;
  };

  void DispatchLoop();
  void RunBatch(std::vector<Request>& batch);
  // Runs one request on `replica` with per-item deadline enforcement
  // and transient-failure retries. Resolves the promise on success /
  // terminal error; returns the transient status (promise untouched)
  // when retries on this replica are exhausted.
  Status RunOne(Pending& pending, int replica, double start_us,
                int batch_size, const std::atomic<bool>& cancelled);
  void WatchdogLoop();
  void NoteQuarantine(int replica);

  ServerConfig config_;
  RetryPolicy retry_;
  std::vector<fpga::CompiledTinyR2Plus1d> replicas_;
  std::vector<std::string> replica_fault_points_;  // serve.replica_infer.r<k>
  ReplicaHealth health_;
  RequestQueue queue_;
  std::thread dispatcher_;
  std::mutex shutdown_mu_;  // serializes the dispatcher/watchdog join

  std::thread watchdog_;
  std::mutex watch_mu_;
  std::condition_variable watch_cv_;
  bool watchdog_stop_ = false;
  std::optional<WatchTarget> watch_;

  // Aggregate counters; latencies_ feeds the Stats() percentiles.
  mutable std::mutex stats_mu_;
  ServerStats totals_;
  std::vector<double> latencies_us_;
};

// Sorted-copy percentile helper (q in [0,1]); exposed for the bench.
double PercentileUs(std::vector<double> latencies_us, double q);

}  // namespace hwp3d::serve
