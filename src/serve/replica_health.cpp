#include "serve/replica_health.h"

#include "common/error.h"

namespace hwp3d::serve {

ReplicaHealth::ReplicaHealth(int replicas, int quarantine_after)
    : quarantine_after_(quarantine_after),
      states_(static_cast<size_t>(replicas)),
      healthy_(replicas) {
  HWP_CHECK_MSG(replicas >= 1, "ReplicaHealth needs at least one replica");
  HWP_CHECK_MSG(quarantine_after >= 1, "quarantine_after must be >= 1");
}

void ReplicaHealth::RecordSuccess(int replica) {
  std::lock_guard<std::mutex> lk(mu_);
  states_[static_cast<size_t>(replica)].consecutive_failures = 0;
}

bool ReplicaHealth::RecordFailure(int replica) {
  std::lock_guard<std::mutex> lk(mu_);
  State& s = states_[static_cast<size_t>(replica)];
  if (s.quarantined) return false;
  ++s.consecutive_failures;
  if (s.consecutive_failures < quarantine_after_) return false;
  if (healthy_ <= 1) return false;  // never quarantine the last replica
  s.quarantined = true;
  --healthy_;
  return true;
}

bool ReplicaHealth::healthy(int replica) const {
  std::lock_guard<std::mutex> lk(mu_);
  return !states_[static_cast<size_t>(replica)].quarantined;
}

std::vector<int> ReplicaHealth::HealthySet() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<int> set;
  set.reserve(static_cast<size_t>(healthy_));
  for (size_t r = 0; r < states_.size(); ++r) {
    if (!states_[r].quarantined) set.push_back(static_cast<int>(r));
  }
  return set;
}

int ReplicaHealth::healthy_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return healthy_;
}

int ReplicaHealth::quarantined_count() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(states_.size()) - healthy_;
}

void ReplicaHealth::Reinstate(int replica) {
  std::lock_guard<std::mutex> lk(mu_);
  State& s = states_[static_cast<size_t>(replica)];
  s.consecutive_failures = 0;
  if (s.quarantined) {
    s.quarantined = false;
    ++healthy_;
  }
}

}  // namespace hwp3d::serve
