#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>

#include "common/error.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/strings.h"
#include "kernels/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwp3d::serve {

namespace {

struct ServeMetrics {
  obs::Counter& accepted;
  obs::Counter& rejected;
  obs::Counter& deadline_exceeded;
  obs::Counter& completed;
  obs::Counter& batches;
  obs::Counter& retries;
  obs::Counter& faults_injected;
  obs::Counter& replicas_quarantined;
  obs::Counter& watchdog_fired;
  obs::Gauge& queue_depth;
  obs::Gauge& healthy_replicas;
  obs::Gauge& executor;  // 1 = fast compiled executor, 0 = simulator
  obs::Histogram& batch_size;
  obs::Histogram& latency_us;

  static ServeMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Get();
    static ServeMetrics m{reg.GetCounter("serve.accepted"),
                          reg.GetCounter("serve.rejected"),
                          reg.GetCounter("serve.deadline_exceeded"),
                          reg.GetCounter("serve.completed"),
                          reg.GetCounter("serve.batches"),
                          reg.GetCounter("serve.retries"),
                          reg.GetCounter("serve.faults_injected"),
                          reg.GetCounter("serve.replicas_quarantined"),
                          reg.GetCounter("serve.watchdog_fired"),
                          reg.GetGauge("serve.queue_depth"),
                          reg.GetGauge("serve.healthy_replicas"),
                          reg.GetGauge("serve.executor"),
                          reg.GetHistogram("serve.batch_size"),
                          reg.GetHistogram("serve.latency_us")};
    return m;
  }
};

int ArgMax(const TensorF& logits) {
  int best = 0;
  for (int64_t k = 1; k < logits.numel(); ++k) {
    if (logits[k] > logits[best]) best = static_cast<int>(k);
  }
  return best;
}

void SleepUs(int64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

constexpr const char* kFaultReplicaInfer = "serve.replica_infer";
constexpr const char* kFaultReplicaWedge = "serve.replica_wedge";
constexpr const char* kFaultQueueAdmit = "serve.queue_admit";

}  // namespace

double PercentileUs(std::vector<double> latencies_us, double q) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const double pos = q * static_cast<double>(latencies_us.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, latencies_us.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return latencies_us[lo] * (1.0 - frac) + latencies_us[hi] * frac;
}

InferenceServer::InferenceServer(const fpga::CompiledTinyR2Plus1d& model,
                                 ServerConfig config)
    : config_(config),
      retry_(config.retry),
      health_(std::max(config.replicas, 1),
              std::max(config.quarantine_after, 1)),
      queue_(config.queue_capacity) {
  HWP_CHECK_MSG(config_.replicas >= 1,
                "InferenceServer needs at least one replica");
  HWP_CHECK_MSG(config_.max_batch >= 1, "max_batch must be >= 1");
  HWP_CHECK_MSG(config_.queue_capacity >= 1, "queue_capacity must be >= 1");
  HWP_CHECK_MSG(config_.quarantine_after >= 1,
                "quarantine_after must be >= 1");
  HWP_CHECK_MSG(config_.retry.max_attempts >= 1,
                "retry.max_attempts must be >= 1");
  HWP_CHECK_MSG(config_.watchdog_timeout_us >= 0,
                "watchdog_timeout_us must be >= 0 (0 disables)");
  replicas_.reserve(static_cast<size_t>(config_.replicas));
  replica_fault_points_.reserve(static_cast<size_t>(config_.replicas));
  for (int r = 0; r < config_.replicas; ++r) {
    replicas_.push_back(model);
    replica_fault_points_.push_back(
        StrFormat("%s.r%d", kFaultReplicaInfer, r));
  }
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    totals_.healthy_replicas = config_.replicas;
  }
  ServeMetrics::Get().healthy_replicas.Set(
      static_cast<double>(config_.replicas));
  ServeMetrics::Get().executor.Set(
      model.executor() == fpga::ExecMode::kFast ? 1.0 : 0.0);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
  if (config_.watchdog_timeout_us > 0) {
    watchdog_ = std::thread([this] { WatchdogLoop(); });
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::future<StatusOr<InferenceResult>> InferenceServer::SubmitAsync(
    TensorF clip, int64_t deadline_us) {
  auto& m = ServeMetrics::Get();
  if (FaultInjector::Get().Trip(kFaultQueueAdmit)) {
    m.faults_injected.Add(1);
    m.rejected.Add(1);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++totals_.faults_injected;
      ++totals_.rejected;
    }
    std::promise<StatusOr<InferenceResult>> failed;
    failed.set_value(UnavailableError(
        StrFormat("injected fault: %s", kFaultQueueAdmit)));
    return failed.get_future();
  }
  Request req;
  req.clip = std::move(clip);
  req.enqueue_us = obs::NowUs();
  const int64_t rel =
      deadline_us > 0 ? deadline_us : config_.default_deadline_us;
  req.deadline_us = rel > 0 ? req.enqueue_us + static_cast<double>(rel) : 0.0;
  std::future<StatusOr<InferenceResult>> future =
      req.promise.get_future();

  Status admitted = queue_.Push(std::move(req));
  if (!admitted.ok()) {
    m.rejected.Add(1);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++totals_.rejected;
    }
    // The request object (with its promise) died with the failed Push;
    // report through a fresh promise for a uniform future-based path.
    std::promise<StatusOr<InferenceResult>> failed;
    failed.set_value(std::move(admitted));
    return failed.get_future();
  }
  m.accepted.Add(1);
  m.queue_depth.Set(static_cast<double>(queue_.size()));
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++totals_.accepted;
  }
  return future;
}

StatusOr<InferenceResult> InferenceServer::Submit(const TensorF& clip,
                                                  int64_t deadline_us) {
  return SubmitAsync(clip, deadline_us).get();
}

void InferenceServer::Shutdown() {
  queue_.Close();
  // Serialize the joins so concurrent Shutdown() calls (user + dtor)
  // are safe; the dispatcher drains the queue before PopBatch returns
  // empty. The watchdog outlives the dispatcher on purpose: it must be
  // able to kill a batch wedged during the drain.
  std::lock_guard<std::mutex> lk(shutdown_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
  {
    std::lock_guard<std::mutex> wlk(watch_mu_);
    watchdog_stop_ = true;
  }
  watch_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

void InferenceServer::DispatchLoop() {
  for (;;) {
    std::vector<Request> batch =
        queue_.PopBatch(config_.max_batch, config_.max_delay_us);
    if (batch.empty()) return;  // closed and drained
    RunBatch(batch);
    ServeMetrics::Get().queue_depth.Set(static_cast<double>(queue_.size()));
  }
}

void InferenceServer::NoteQuarantine(int replica) {
  auto& m = ServeMetrics::Get();
  m.replicas_quarantined.Add(1);
  m.healthy_replicas.Set(static_cast<double>(health_.healthy_count()));
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    totals_.replicas_quarantined = health_.quarantined_count();
    totals_.healthy_replicas = health_.healthy_count();
  }
  HWP_LOG(Warning) << "replica " << replica << " quarantined after "
                   << config_.quarantine_after
                   << " consecutive failures; serving degrades to "
                   << health_.healthy_count() << "/" << config_.replicas
                   << " replicas";
}

Status InferenceServer::RunOne(Pending& pending, int replica,
                               double start_us, int batch_size,
                               const std::atomic<bool>& cancelled) {
  auto& m = ServeMetrics::Get();
  auto& inj = FaultInjector::Get();
  Request& req = pending.req;
  Status transient = Status::Ok();
  for (int attempt = 0;; ++attempt) {
    if (cancelled.load(std::memory_order_acquire)) {
      // The watchdog owns (or already resolved) this promise.
      return CancelledError("batch cancelled by watchdog");
    }
    // Per-item deadline enforcement: a request that expired while
    // earlier batch items ran must not consume a replica and must not
    // report a stale OK long past its deadline.
    const double now_us = obs::NowUs();
    if (req.deadline_us > 0.0 && now_us > req.deadline_us) {
      Status expired = DeadlineExceededError(StrFormat(
          "request expired %.0f us past its %.0f us deadline "
          "(mid-batch check)",
          now_us - req.deadline_us, req.deadline_us - req.enqueue_us));
      if (pending.Claim()) {
        m.deadline_exceeded.Add(1);
        {
          std::lock_guard<std::mutex> lk(stats_mu_);
          ++totals_.deadline_exceeded;
        }
        req.promise.set_value(std::move(expired));
      }
      return DeadlineExceededError("expired mid-batch");
    }
    if (inj.Trip(kFaultReplicaWedge)) {
      // Simulated wedged replica: stall, then continue normally. The
      // watchdog (when armed) kills the batch out from under us.
      m.faults_injected.Add(1);
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++totals_.faults_injected;
      }
      SleepUs(inj.delay_us(kFaultReplicaWedge));
      if (cancelled.load(std::memory_order_acquire)) {
        return CancelledError("batch cancelled by watchdog");
      }
    }
    const bool injected_failure =
        inj.Trip(kFaultReplicaInfer) ||
        inj.Trip(replica_fault_points_[static_cast<size_t>(replica)]);
    if (!injected_failure) {
      InferenceResult result;
      result.queue_us = start_us - req.enqueue_us;
      result.batch_size = batch_size;
      result.replica = replica;
      try {
        result.logits = replicas_[static_cast<size_t>(replica)].Infer(
            req.clip, &result.stats);
      } catch (const Error& e) {
        // A malformed request is a terminal per-request error, never a
        // replica fault: no retry, no health penalty, and it must not
        // take the dispatcher (and every queued request) down.
        if (pending.Claim()) {
          req.promise.set_value(InvalidArgumentError(
              StrFormat("inference failed: %s", e.what())));
        }
        return InvalidArgumentError("malformed request");
      }
      health_.RecordSuccess(replica);
      result.label = ArgMax(result.logits);
      result.total_us = obs::NowUs() - req.enqueue_us;
      const double latency_us = result.total_us;
      // Claim first, then stats, then the promise: a waiter that saw
      // the future resolve must find its request reflected in Stats(),
      // and a concurrent watchdog kill must not double-resolve.
      if (pending.Claim()) {
        m.completed.Add(1);
        m.latency_us.Observe(latency_us);
        {
          std::lock_guard<std::mutex> lk(stats_mu_);
          ++totals_.completed;
          latencies_us_.push_back(latency_us);
        }
        req.promise.set_value(std::move(result));
      }
      return Status::Ok();
    }
    // Injected transient failure.
    m.faults_injected.Add(1);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++totals_.faults_injected;
    }
    transient = UnavailableError(StrFormat(
        "injected fault: %s (replica %d, attempt %d)", kFaultReplicaInfer,
        replica, attempt));
    if (health_.RecordFailure(replica)) NoteQuarantine(replica);
    const std::optional<int64_t> backoff =
        retry_.NextBackoffUs(attempt, obs::NowUs(), req.deadline_us);
    if (!backoff) return transient;  // caller may rescue or fail truthfully
    m.retries.Add(1);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++totals_.retries;
    }
    SleepUs(*backoff);
  }
}

void InferenceServer::RunBatch(std::vector<Request>& batch) {
  auto& m = ServeMetrics::Get();
  obs::TraceScope span("serve/batch");

  // Stable-address wrappers so the watchdog and the replica lanes can
  // race for each promise through an atomic claim.
  std::deque<Pending> owned;
  for (Request& req : batch) owned.emplace_back(std::move(req));

  // Expire requests whose deadline passed while they queued.
  const double start_us = obs::NowUs();
  std::vector<Pending*> live;
  for (Pending& p : owned) {
    if (p.req.deadline_us > 0.0 && start_us > p.req.deadline_us) {
      if (p.Claim()) {
        m.deadline_exceeded.Add(1);
        {
          std::lock_guard<std::mutex> lk(stats_mu_);
          ++totals_.deadline_exceeded;
        }
        p.req.promise.set_value(DeadlineExceededError(StrFormat(
            "request queued for %.0f us, past its %.0f us deadline",
            start_us - p.req.enqueue_us,
            p.req.deadline_us - p.req.enqueue_us)));
      }
    } else {
      live.push_back(&p);
    }
  }
  if (live.empty()) return;

  // Record batch-level stats up front: promises below must only resolve
  // after every counter a waiter could observe through Stats() is final.
  m.batches.Add(1);
  m.batch_size.Observe(static_cast<double>(live.size()));
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++totals_.batches;
  }

  // Re-stripe over the healthy replica set: with lanes H[0..L), lane k
  // serves items k, k+L, ... Each healthy replica is exclusive to one
  // lane, so no two threads share a TiledConvSim.
  const std::vector<int> lanes = health_.HealthySet();
  const int L = std::min<int>(static_cast<int>(lanes.size()),
                              static_cast<int>(live.size()));
  std::atomic<bool> cancelled{false};
  if (config_.watchdog_timeout_us > 0) {
    std::lock_guard<std::mutex> lk(watch_mu_);
    watch_ = WatchTarget{start_us, &live, &cancelled};
  }

  // Items whose lane exhausted its retries; they get one rescue pass on
  // a (possibly different, still-healthy) replica before failing.
  std::mutex rescue_mu;
  std::vector<Pending*> rescue;

  ThreadPool::Get().For(0, L, [&](int64_t k) {
    const int replica = lanes[static_cast<size_t>(k)];
    for (size_t i = static_cast<size_t>(k); i < live.size();
         i += static_cast<size_t>(L)) {
      if (cancelled.load(std::memory_order_acquire)) return;
      Status s = RunOne(*live[i], replica, start_us,
                        static_cast<int>(live.size()), cancelled);
      if (RetryPolicy::IsRetryable(s)) {
        std::lock_guard<std::mutex> lk(rescue_mu);
        rescue.push_back(live[i]);
      }
    }
  });

  // Rescue pass, serial on the dispatcher: the lane's replica may have
  // been the problem (and may be quarantined by now), so give each
  // survivor one more run on the current healthy set's first replica.
  for (Pending* pending : rescue) {
    if (cancelled.load(std::memory_order_acquire)) break;
    if (pending->claimed.load(std::memory_order_acquire)) continue;
    const std::vector<int> healthy = health_.HealthySet();
    Status s = RunOne(*pending, healthy.front(), start_us,
                      static_cast<int>(live.size()), cancelled);
    if (RetryPolicy::IsRetryable(s) && pending->Claim()) {
      // Still transiently failing after retries on two replica picks:
      // fail truthfully with the transient status.
      pending->req.promise.set_value(std::move(s));
    }
  }

  if (config_.watchdog_timeout_us > 0) {
    std::lock_guard<std::mutex> lk(watch_mu_);
    watch_.reset();
  }

  if (span.active()) {
    span.AddArg("batch_size", static_cast<int64_t>(live.size()));
    span.AddArg("replicas", static_cast<int64_t>(L));
  }
}

void InferenceServer::WatchdogLoop() {
  auto& m = ServeMetrics::Get();
  const int64_t timeout_us = config_.watchdog_timeout_us;
  const auto poll = std::chrono::microseconds(
      std::clamp<int64_t>(timeout_us / 4, 1'000, 50'000));
  std::unique_lock<std::mutex> lk(watch_mu_);
  while (!watchdog_stop_) {
    watch_cv_.wait_for(lk, poll, [&] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    if (!watch_) continue;
    if (obs::NowUs() - watch_->start_us <
        static_cast<double>(timeout_us)) {
      continue;
    }
    // The batch is stuck (wedged replica call, pathological stall):
    // cancel the lanes cooperatively and fail every outstanding request
    // so waiters — and a pending Shutdown() — stop depending on it.
    watch_->cancelled->store(true, std::memory_order_release);
    int64_t killed = 0;
    for (Pending* p : *watch_->live) {
      if (!p->Claim()) continue;
      ++killed;
      p->req.promise.set_value(DeadlineExceededError(StrFormat(
          "watchdog: batch stuck for more than %lld us; request failed "
          "without a result",
          static_cast<long long>(timeout_us))));
    }
    m.watchdog_fired.Add(1);
    m.deadline_exceeded.Add(killed);
    {
      std::lock_guard<std::mutex> slk(stats_mu_);
      ++totals_.watchdog_fired;
      totals_.deadline_exceeded += killed;
    }
    HWP_LOG(Warning) << "serve watchdog fired: batch exceeded "
                     << timeout_us << " us; failed " << killed
                     << " outstanding request(s)";
    watch_.reset();  // one firing per registered batch
  }
}

ServerStats InferenceServer::Stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ServerStats s = totals_;
  s.queue_depth = static_cast<int64_t>(queue_.size());
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.completed) / static_cast<double>(s.batches)
          : 0.0;
  s.p50_ms = PercentileUs(latencies_us_, 0.50) / 1000.0;
  s.p95_ms = PercentileUs(latencies_us_, 0.95) / 1000.0;
  s.p99_ms = PercentileUs(latencies_us_, 0.99) / 1000.0;
  return s;
}

}  // namespace hwp3d::serve
