#include "serve/server.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"
#include "kernels/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwp3d::serve {

namespace {

struct ServeMetrics {
  obs::Counter& accepted;
  obs::Counter& rejected;
  obs::Counter& deadline_exceeded;
  obs::Counter& completed;
  obs::Counter& batches;
  obs::Gauge& queue_depth;
  obs::Histogram& batch_size;
  obs::Histogram& latency_us;

  static ServeMetrics& Get() {
    auto& reg = obs::MetricsRegistry::Get();
    static ServeMetrics m{reg.GetCounter("serve.accepted"),
                          reg.GetCounter("serve.rejected"),
                          reg.GetCounter("serve.deadline_exceeded"),
                          reg.GetCounter("serve.completed"),
                          reg.GetCounter("serve.batches"),
                          reg.GetGauge("serve.queue_depth"),
                          reg.GetHistogram("serve.batch_size"),
                          reg.GetHistogram("serve.latency_us")};
    return m;
  }
};

int ArgMax(const TensorF& logits) {
  int best = 0;
  for (int64_t k = 1; k < logits.numel(); ++k) {
    if (logits[k] > logits[best]) best = static_cast<int>(k);
  }
  return best;
}

}  // namespace

double PercentileUs(std::vector<double> latencies_us, double q) {
  if (latencies_us.empty()) return 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  const double pos = q * static_cast<double>(latencies_us.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, latencies_us.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return latencies_us[lo] * (1.0 - frac) + latencies_us[hi] * frac;
}

InferenceServer::InferenceServer(const fpga::CompiledTinyR2Plus1d& model,
                                 ServerConfig config)
    : config_(config), queue_(config.queue_capacity) {
  HWP_CHECK_MSG(config_.replicas >= 1,
                "InferenceServer needs at least one replica");
  HWP_CHECK_MSG(config_.max_batch >= 1, "max_batch must be >= 1");
  HWP_CHECK_MSG(config_.queue_capacity >= 1, "queue_capacity must be >= 1");
  replicas_.reserve(static_cast<size_t>(config_.replicas));
  for (int r = 0; r < config_.replicas; ++r) replicas_.push_back(model);
  dispatcher_ = std::thread([this] { DispatchLoop(); });
}

InferenceServer::~InferenceServer() { Shutdown(); }

std::future<StatusOr<InferenceResult>> InferenceServer::SubmitAsync(
    TensorF clip, int64_t deadline_us) {
  auto& m = ServeMetrics::Get();
  Request req;
  req.clip = std::move(clip);
  req.enqueue_us = obs::NowUs();
  const int64_t rel =
      deadline_us > 0 ? deadline_us : config_.default_deadline_us;
  req.deadline_us = rel > 0 ? req.enqueue_us + static_cast<double>(rel) : 0.0;
  std::future<StatusOr<InferenceResult>> future =
      req.promise.get_future();

  Status admitted = queue_.Push(std::move(req));
  if (!admitted.ok()) {
    m.rejected.Add(1);
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      ++totals_.rejected;
    }
    // The request object (with its promise) died with the failed Push;
    // report through a fresh promise for a uniform future-based path.
    std::promise<StatusOr<InferenceResult>> failed;
    failed.set_value(std::move(admitted));
    return failed.get_future();
  }
  m.accepted.Add(1);
  m.queue_depth.Set(static_cast<double>(queue_.size()));
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++totals_.accepted;
  }
  return future;
}

StatusOr<InferenceResult> InferenceServer::Submit(const TensorF& clip,
                                                  int64_t deadline_us) {
  return SubmitAsync(clip, deadline_us).get();
}

void InferenceServer::Shutdown() {
  queue_.Close();
  // Serialize the join so concurrent Shutdown() calls (user + dtor) are
  // safe; the dispatcher drains the queue before PopBatch returns empty.
  std::lock_guard<std::mutex> lk(shutdown_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

void InferenceServer::DispatchLoop() {
  for (;;) {
    std::vector<Request> batch =
        queue_.PopBatch(config_.max_batch, config_.max_delay_us);
    if (batch.empty()) return;  // closed and drained
    RunBatch(batch);
    ServeMetrics::Get().queue_depth.Set(static_cast<double>(queue_.size()));
  }
}

void InferenceServer::RunBatch(std::vector<Request>& batch) {
  auto& m = ServeMetrics::Get();
  obs::TraceScope span("serve/batch");

  // Expire requests whose deadline passed while they queued.
  const double start_us = obs::NowUs();
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (Request& req : batch) {
    if (req.deadline_us > 0.0 && start_us > req.deadline_us) {
      m.deadline_exceeded.Add(1);
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++totals_.deadline_exceeded;
      }
      req.promise.set_value(DeadlineExceededError(StrFormat(
          "request queued for %.0f us, past its %.0f us deadline",
          start_us - req.enqueue_us, req.deadline_us - req.enqueue_us)));
    } else {
      live.push_back(&req);
    }
  }
  if (live.empty()) return;

  // Record batch-level stats up front: promises below must only resolve
  // after every counter a waiter could observe through Stats() is final.
  m.batches.Add(1);
  m.batch_size.Observe(static_cast<double>(live.size()));
  {
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++totals_.batches;
  }

  // Fan the batch out across the replicas on the process-wide pool:
  // replica r serves items r, r+R, r+2R, ... Each replica is exclusive
  // to one For-index, so no two threads share a TiledConvSim.
  const int R = std::min<int>(config_.replicas,
                              static_cast<int>(live.size()));
  ThreadPool::Get().For(0, R, [&](int64_t r) {
    for (size_t i = static_cast<size_t>(r); i < live.size();
         i += static_cast<size_t>(R)) {
      Request& req = *live[i];
      InferenceResult result;
      result.queue_us = start_us - req.enqueue_us;
      result.batch_size = static_cast<int>(live.size());
      result.replica = static_cast<int>(r);
      try {
        result.logits = replicas_[static_cast<size_t>(r)].Infer(
            req.clip, &result.stats);
      } catch (const Error& e) {
        // A malformed request must not take the dispatcher (and with it
        // every queued request) down.
        req.promise.set_value(InvalidArgumentError(
            StrFormat("inference failed: %s", e.what())));
        continue;
      }
      result.label = ArgMax(result.logits);
      result.total_us = obs::NowUs() - req.enqueue_us;
      const double latency_us = result.total_us;
      // Stats first, then the promise: a waiter that saw the future
      // resolve must find its request reflected in Stats().
      m.completed.Add(1);
      m.latency_us.Observe(latency_us);
      {
        std::lock_guard<std::mutex> lk(stats_mu_);
        ++totals_.completed;
        latencies_us_.push_back(latency_us);
      }
      req.promise.set_value(std::move(result));
    }
  });

  if (span.active()) {
    span.AddArg("batch_size", static_cast<int64_t>(live.size()));
    span.AddArg("replicas", static_cast<int64_t>(R));
  }
}

ServerStats InferenceServer::Stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ServerStats s = totals_;
  s.queue_depth = static_cast<int64_t>(queue_.size());
  s.mean_batch_size =
      s.batches > 0
          ? static_cast<double>(s.completed) / static_cast<double>(s.batches)
          : 0.0;
  s.p50_ms = PercentileUs(latencies_us_, 0.50) / 1000.0;
  s.p95_ms = PercentileUs(latencies_us_, 0.95) / 1000.0;
  s.p99_ms = PercentileUs(latencies_us_, 0.99) / 1000.0;
  return s;
}

}  // namespace hwp3d::serve
