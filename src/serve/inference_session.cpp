#include "serve/inference_session.h"

#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "core/admm.h"
#include "core/block_partition.h"
#include "nn/checkpoint.h"
#include "nn/trainer.h"
#include "obs/trace.h"

namespace hwp3d {

namespace {

// A block is considered pruned iff every one of its weights is exactly
// zero — the invariant HardPrune/ReapplyMasks maintain, so a pruned
// checkpoint round-trips to the same masks it was trained with.
core::BlockMask DeriveZeroBlockMask(const TensorF& w,
                                    const core::BlockPartition& part) {
  core::BlockMask mask = part.FullMask();
  const std::vector<double> sq_norms = part.BlockSqNorms(w);
  for (int64_t b = 0; b < mask.num_blocks(); ++b) {
    if (sq_norms[static_cast<size_t>(b)] == 0.0) mask.enabled[b] = 0;
  }
  return mask;
}

}  // namespace

// --- Builder setters --------------------------------------------------

InferenceSession::Builder& InferenceSession::Builder::ModelConfig(
    const models::TinyR2Plus1dConfig& cfg) {
  model_cfg_ = cfg;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::DataConfig(
    const data::SyntheticVideoConfig& cfg) {
  data_cfg_ = cfg;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::Seed(uint64_t seed) {
  seed_ = seed;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::TrainEpochs(int epochs) {
  train_epochs_ = epochs;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::TrainLr(float lr) {
  train_lr_ = lr;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::TrainData(
    int batch_count, int batch_size) {
  train_batch_count_ = batch_count;
  batch_size_ = batch_size;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::EvalData(
    int batch_count) {
  eval_batch_count_ = batch_count;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::FromCheckpoint(
    std::string path) {
  checkpoint_ = std::move(path);
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::PruneToSparsity(
    double eta) {
  prune_ = true;
  sparsity_ = eta;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::AdmmRhoSchedule(
    std::vector<double> rhos) {
  rho_schedule_ = std::move(rhos);
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::AdmmEpochsPerRound(
    int epochs) {
  admm_epochs_per_round_ = epochs;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::RetrainEpochs(
    int epochs) {
  retrain_epochs_ = epochs;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::UseZeroBlockMasks(
    bool enable) {
  zero_block_masks_ = enable;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::Tiling(
    const fpga::Tiling& tiling) {
  tiling_ = tiling;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::Ports(
    const fpga::Ports& ports) {
  ports_ = ports;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::Executor(
    fpga::ExecMode mode) {
  executor_ = mode;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::Replicas(int n) {
  server_.replicas = n;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::MaxBatch(int n) {
  server_.max_batch = n;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::MaxDelayUs(int64_t us) {
  server_.max_delay_us = us;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::QueueCapacity(size_t n) {
  server_.queue_capacity = n;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::DefaultDeadlineUs(
    int64_t us) {
  server_.default_deadline_us = us;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::Retry(
    const RetryConfig& retry) {
  server_.retry = retry;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::QuarantineAfter(int k) {
  server_.quarantine_after = k;
  return *this;
}
InferenceSession::Builder& InferenceSession::Builder::WatchdogTimeoutUs(
    int64_t us) {
  server_.watchdog_timeout_us = us;
  return *this;
}

// --- Build ------------------------------------------------------------

StatusOr<std::unique_ptr<InferenceSession>>
InferenceSession::Builder::Build() {
  HWP_TRACE_SCOPE("session/build");

  if (server_.replicas < 1) {
    return InvalidArgumentError(
        StrFormat("Replicas(%d): need at least 1", server_.replicas));
  }
  if (server_.max_batch < 1) {
    return InvalidArgumentError(
        StrFormat("MaxBatch(%d): need at least 1", server_.max_batch));
  }
  if (server_.queue_capacity < 1) {
    return InvalidArgumentError("QueueCapacity(0): need at least 1");
  }
  if (server_.max_delay_us < 0) {
    return InvalidArgumentError(StrFormat(
        "MaxDelayUs(%lld): must be >= 0 (0 = flush every request "
        "immediately)",
        static_cast<long long>(server_.max_delay_us)));
  }
  if (server_.quarantine_after < 1) {
    return InvalidArgumentError(StrFormat(
        "QuarantineAfter(%d): need at least 1", server_.quarantine_after));
  }
  if (server_.retry.max_attempts < 1) {
    return InvalidArgumentError(StrFormat(
        "Retry: max_attempts (%d) must be >= 1", server_.retry.max_attempts));
  }
  if (server_.watchdog_timeout_us < 0) {
    return InvalidArgumentError(StrFormat(
        "WatchdogTimeoutUs(%lld): must be >= 0 (0 disables the watchdog)",
        static_cast<long long>(server_.watchdog_timeout_us)));
  }
  if (checkpoint_.empty() && train_epochs_ < 1) {
    return InvalidArgumentError(
        "no weight source: set TrainEpochs(>= 1) to train from scratch "
        "or FromCheckpoint(path) to load saved weights");
  }
  if (prune_) {
    if (!(sparsity_ >= 0.0 && sparsity_ < 1.0)) {
      return InvalidArgumentError(StrFormat(
          "PruneToSparsity(%g): block sparsity must lie in [0, 1)",
          sparsity_));
    }
    if (rho_schedule_.empty()) {
      return InvalidArgumentError(
          "AdmmRhoSchedule: need at least one rho round");
    }
    if (zero_block_masks_) {
      return InvalidArgumentError(
          "PruneToSparsity and UseZeroBlockMasks are mutually exclusive "
          "mask sources; pick one");
    }
  }

  auto session = std::unique_ptr<InferenceSession>(new InferenceSession());
  session->data_cfg_ = data_cfg_;

  Rng rng(seed_);
  models::TinyR2Plus1dConfig mcfg = model_cfg_;
  // The facade owns consistency between the data and the model heads.
  mcfg.in_channels = data_cfg_.channels;
  mcfg.num_classes = data_cfg_.num_classes;
  session->model_ = std::make_unique<models::TinyR2Plus1d>(mcfg, rng);
  models::TinyR2Plus1d& model = *session->model_;

  data::SyntheticVideoDataset dataset(data_cfg_);
  std::vector<nn::Batch> train;
  const bool needs_train_data = checkpoint_.empty() || prune_;
  if (needs_train_data) {
    train = dataset.MakeBatches(train_batch_count_, batch_size_, rng);
  }
  if (eval_batch_count_ > 0) {
    session->eval_batches_ =
        dataset.MakeBatches(eval_batch_count_, batch_size_, rng);
  }

  // 1. Weights: load or pretrain.
  if (!checkpoint_.empty()) {
    HWP_RETURN_IF_ERROR(nn::LoadCheckpoint(checkpoint_, model));
  } else {
    HWP_TRACE_SCOPE("session/pretrain");
    nn::Sgd opt(model.Params(),
                {.lr = train_lr_, .momentum = 0.9f, .weight_decay = 0.0f});
    for (int e = 0; e < train_epochs_; ++e) {
      nn::TrainEpoch(model, opt, train, {});
    }
  }

  // 2. Masks: ADMM pipeline, zero-block recovery, or dense.
  if (prune_) {
    HWP_TRACE_SCOPE("session/prune");
    const core::BlockConfig block = tiling_.block();
    std::vector<core::PruneLayerSpec> specs;
    for (nn::Conv3d* c : model.PrunableConvs()) {
      specs.push_back({&c->weight(), block, sparsity_, c->name()});
    }
    core::AdmmConfig admm_cfg;
    admm_cfg.rho_schedule = rho_schedule_;
    core::AdmmPruner pruner(specs, admm_cfg);
    core::PipelineConfig pcfg;
    pcfg.admm = admm_cfg;
    pcfg.epochs_per_round = admm_epochs_per_round_;
    pcfg.retrain_epochs = retrain_epochs_;
    // Same lr ratio the tuned examples use (pretrain 0.05 -> ADMM 0.02).
    pcfg.admm_lr = 0.4f * train_lr_;
    pcfg.retrain_lr = 0.4f * train_lr_;
    session->prune_result_ = std::make_unique<core::PipelineResult>(
        core::RunAdmmPipeline(model, pruner, train, session->eval_batches_,
                              pcfg));
    session->masks_ = pruner.masks();
  } else if (zero_block_masks_) {
    const core::BlockConfig block = tiling_.block();
    for (nn::Conv3d* c : model.PrunableConvs()) {
      const core::BlockPartition part(c->weight().value.shape(), block);
      session->masks_.push_back(DeriveZeroBlockMask(c->weight().value, part));
    }
  }

  // 3. Compile onto the fixed-point accelerator.
  fpga::CompiledModelOptions copts;
  copts.tiling = tiling_;
  copts.ports = ports_;
  copts.masks = session->masks_;
  // Serving defaults to the fast executor (HWP_EXEC still overrides);
  // .Executor(...) pins it regardless of the environment.
  copts.executor = fpga::ResolveExecMode(executor_, fpga::ExecMode::kFast);
  StatusOr<fpga::CompiledTinyR2Plus1d> compiled =
      fpga::CompiledTinyR2Plus1d::Compile(model, std::move(copts));
  if (!compiled.ok()) return compiled.status();

  // 4. Serve.
  session->server_ =
      std::make_unique<serve::InferenceServer>(*compiled, server_);
  return StatusOr<std::unique_ptr<InferenceSession>>(std::move(session));
}

// --- Session ----------------------------------------------------------

InferenceSession::~InferenceSession() {
  if (server_) server_->Shutdown();
}

StatusOr<serve::InferenceResult> InferenceSession::Submit(
    const TensorF& clip, int64_t deadline_us) {
  return server_->Submit(clip, deadline_us);
}

std::future<StatusOr<serve::InferenceResult>> InferenceSession::SubmitAsync(
    TensorF clip, int64_t deadline_us) {
  return server_->SubmitAsync(std::move(clip), deadline_us);
}

serve::ServerStats InferenceSession::Stats() const {
  return server_->Stats();
}

Status InferenceSession::Drain() {
  server_->Shutdown();
  return Status::Ok();
}

TensorF InferenceSession::HostLogits(const TensorF& clip) {
  // Forward wants a [B][C][D][H][W] batch; wrap the clip as B = 1.
  std::vector<int64_t> dims{1};
  for (int d = 0; d < clip.rank(); ++d) dims.push_back(clip.dim(d));
  TensorF batched{Shape(std::move(dims))};
  for (int64_t i = 0; i < clip.numel(); ++i) batched[i] = clip[i];
  const TensorF logits = model_->Forward(batched, /*train=*/false);
  TensorF out(Shape{logits.dim(1)});
  for (int64_t k = 0; k < logits.dim(1); ++k) out[k] = logits(0, k);
  return out;
}

Status InferenceSession::SaveCheckpoint(const std::string& path) const {
  return nn::SaveCheckpoint(path, *model_);
}

}  // namespace hwp3d
