// hwp3d::InferenceSession — the one public entry point for deploying a
// pruned 3D-CNN on the simulated accelerator and serving requests
// against it.
//
// Wraps the whole flow the examples used to hand-wire:
//
//   synthetic data ─▶ train (or load checkpoint) ─▶ ADMM prune ─▶
//   quantize + BN-fold + compile ─▶ batched replica serving
//
// behind a builder, with Status-based errors instead of bool/throw:
//
//   auto session = InferenceSession::Builder()
//                      .DataConfig(dcfg)
//                      .TrainEpochs(10)
//                      .PruneToSparsity(0.5)   // hardware-aware blocks
//                      .Replicas(4)
//                      .MaxBatch(8)
//                      .MaxDelayUs(2000)
//                      .Build();
//   if (!session.ok()) { ... session.status() ... }
//   StatusOr<serve::InferenceResult> r = (*session)->Submit(clip);
//
// The pruning block size is always the compiled tiling's (Tm, Tn) —
// the hardware/pruning co-design the paper is about — so masks are
// valid block-enable inputs for the engine by construction.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/pipeline.h"
#include "data/synthetic_video.h"
#include "fpga/model_compiler.h"
#include "models/tiny_r2plus1d.h"
#include "serve/server.h"

namespace hwp3d {

class InferenceSession {
 public:
  class Builder {
   public:
    // --- model & data -------------------------------------------------
    Builder& ModelConfig(const models::TinyR2Plus1dConfig& cfg);
    Builder& DataConfig(const data::SyntheticVideoConfig& cfg);
    Builder& Seed(uint64_t seed);

    // --- weight source: train from scratch (default) or a checkpoint --
    Builder& TrainEpochs(int epochs);
    Builder& TrainLr(float lr);
    Builder& TrainData(int batch_count, int batch_size);
    Builder& EvalData(int batch_count);
    Builder& FromCheckpoint(std::string path);

    // --- hardware-aware pruning (optional) ----------------------------
    // Runs Algorithm 1 (multi-rho ADMM -> hard prune -> masked
    // retraining) at the given block sparsity; block size = tiling (Tm, Tn).
    Builder& PruneToSparsity(double eta);
    Builder& AdmmRhoSchedule(std::vector<double> rhos);
    Builder& AdmmEpochsPerRound(int epochs);
    Builder& RetrainEpochs(int epochs);
    // Derive block-enable masks from exactly-zero weight blocks instead
    // of training — for serving an already-pruned checkpoint.
    Builder& UseZeroBlockMasks(bool enable = true);

    // --- accelerator design point -------------------------------------
    Builder& Tiling(const fpga::Tiling& tiling);
    Builder& Ports(const fpga::Ports& ports);
    // Conv-stage engine: kFast (pre-packed block-CSR tiles + analytic
    // timing, the serving default) or kSimulate (step-by-step cycle
    // simulator). Unset resolves HWP_EXEC, then defaults to kFast —
    // both are bitwise identical, so this only trades wall-clock
    // against step-level cycle attribution.
    Builder& Executor(fpga::ExecMode mode);

    // --- serving ------------------------------------------------------
    Builder& Replicas(int n);
    Builder& MaxBatch(int n);
    Builder& MaxDelayUs(int64_t us);
    Builder& QueueCapacity(size_t n);
    Builder& DefaultDeadlineUs(int64_t us);

    // --- fault tolerance ----------------------------------------------
    // Retry policy for transient replica failures (deadline-aware
    // exponential backoff), quarantine threshold (K consecutive
    // failures), and the stuck-batch watchdog timeout (0 disables).
    Builder& Retry(const RetryConfig& retry);
    Builder& QuarantineAfter(int k);
    Builder& WatchdogTimeoutUs(int64_t us);

    // Validates the configuration, builds the model (train or load),
    // prunes, compiles, and starts the serving replicas.
    StatusOr<std::unique_ptr<InferenceSession>> Build();

   private:
    models::TinyR2Plus1dConfig model_cfg_{
        .num_classes = 4, .stem_channels = 4, .stage1_channels = 8,
        .stage2_channels = 8};
    data::SyntheticVideoConfig data_cfg_{
        .num_classes = 4, .frames = 6, .height = 10, .width = 10};
    uint64_t seed_ = 42;
    int train_epochs_ = 10;
    float train_lr_ = 0.05f;
    int train_batch_count_ = 64;
    int batch_size_ = 8;
    int eval_batch_count_ = 32;
    std::string checkpoint_;
    bool prune_ = false;
    double sparsity_ = 0.5;
    std::vector<double> rho_schedule_ = {0.01, 0.1};
    int admm_epochs_per_round_ = 2;
    int retrain_epochs_ = 4;
    bool zero_block_masks_ = false;
    fpga::Tiling tiling_{4, 4, 2, 4, 4};
    fpga::Ports ports_;
    std::optional<fpga::ExecMode> executor_;
    serve::ServerConfig server_;
  };

  ~InferenceSession();  // drains in-flight requests

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  // --- serving --------------------------------------------------------
  // Runs one [C][D][H][W] clip through the accelerator replicas.
  // Errors: kResourceExhausted (queue full), kDeadlineExceeded,
  // kUnavailable (after Drain), kInvalidArgument (bad clip shape).
  StatusOr<serve::InferenceResult> Submit(const TensorF& clip,
                                          int64_t deadline_us = 0);
  std::future<StatusOr<serve::InferenceResult>> SubmitAsync(
      TensorF clip, int64_t deadline_us = 0);

  serve::ServerStats Stats() const;

  // Graceful shutdown: stops admission, completes every accepted
  // request. Idempotent; the destructor calls it too.
  Status Drain();

  // --- model access ---------------------------------------------------
  // Float host-model logits for one clip (the pre-quantization
  // reference). Not thread-safe against itself; safe alongside Submit.
  TensorF HostLogits(const TensorF& clip);

  Status SaveCheckpoint(const std::string& path) const;

  // Pruning outcome; empty masks / null result when built dense.
  const std::vector<core::BlockMask>& masks() const { return masks_; }
  const core::PipelineResult* prune_result() const {
    return prune_result_ ? prune_result_.get() : nullptr;
  }

  // The held-out batches generated during Build (empty when built from
  // a checkpoint with no eval data) — lets callers score accuracy on
  // exactly the distribution the model was trained on.
  const std::vector<nn::Batch>& eval_batches() const {
    return eval_batches_;
  }

  const data::SyntheticVideoConfig& data_config() const {
    return data_cfg_;
  }

 private:
  friend class Builder;
  InferenceSession() = default;

  data::SyntheticVideoConfig data_cfg_;
  std::unique_ptr<models::TinyR2Plus1d> model_;
  std::vector<core::BlockMask> masks_;
  std::unique_ptr<core::PipelineResult> prune_result_;
  std::vector<nn::Batch> eval_batches_;
  std::unique_ptr<serve::InferenceServer> server_;
};

}  // namespace hwp3d
