// Bounded MPMC request queue with time/size-based batching.
//
// Producers (Submit callers) push single requests and are never
// blocked: when the queue is at capacity Push fails immediately with
// kResourceExhausted — admission control backpressure, the caller
// decides whether to retry, shed, or propagate. Consumers (batch
// dispatchers) pop *batches*: PopBatch blocks until at least one
// request is queued, then flushes as soon as either `max_batch`
// requests are available or `max_delay_us` has elapsed since the
// oldest queued request was enqueued — the classic latency/throughput
// batching knob.
//
// Close() drains gracefully: pushes fail with kUnavailable, poppers
// keep receiving the remaining requests (flushed immediately, no delay
// wait) and finally an empty batch, their signal to exit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "fpga/model_compiler.h"
#include "tensor/tensor.h"

namespace hwp3d::serve {

// What a fulfilled request resolves to.
struct InferenceResult {
  TensorF logits;        // [num_classes]
  int label = 0;         // argmax of logits
  fpga::CompiledRunStats stats;  // modeled accelerator cost of this clip
  int batch_size = 0;    // size of the batch this request rode in
  int replica = 0;       // which replica executed it
  double queue_us = 0.0;  // enqueue -> batch start
  double total_us = 0.0;  // enqueue -> completion
};

struct Request {
  TensorF clip;          // [C][D][H][W]
  double enqueue_us = 0.0;   // obs::NowUs() at admission
  double deadline_us = 0.0;  // absolute obs::NowUs() deadline; 0 = none
  std::promise<StatusOr<InferenceResult>> promise;
};

class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity) : capacity_(capacity) {}

  // Non-blocking admission. kResourceExhausted when full, kUnavailable
  // after Close().
  Status Push(Request&& request);

  // Blocks until the queue is non-empty or closed, then applies the
  // flush policy above and returns up to `max_batch` requests in FIFO
  // order. An empty vector means closed-and-drained.
  std::vector<Request> PopBatch(int max_batch, int64_t max_delay_us);

  void Close();

  bool closed() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

  // Total timed condition-variable waits taken inside PopBatch since
  // construction. Diagnostic: a PopBatch that waits out a flush window
  // takes O(1) timed waits; an unbounded count means the consumer is
  // busy-spinning (regression guard for the truncating-wait bug).
  int64_t pop_wait_iterations() const {
    return pop_wait_iterations_.load(std::memory_order_relaxed);
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable nonempty_;  // pushes and Close() signal here
  std::deque<Request> queue_;
  bool closed_ = false;
  std::atomic<int64_t> pop_wait_iterations_{0};
};

}  // namespace hwp3d::serve
