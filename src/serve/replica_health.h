// Per-replica health tracking with quarantine.
//
// The InferenceServer records the outcome of every replica attempt
// here. A replica that fails `quarantine_after` consecutive times is
// quarantined: it drops out of HealthySet(), so subsequent batches
// re-stripe across the remaining replicas. Because every replica is a
// copy of the same immutable compiled model, shrinking the replica set
// degrades throughput but never changes an answer — outputs stay
// bitwise identical to a fully-healthy run.
//
// The last healthy replica is never quarantined: a server with work
// queued must keep trying somewhere, and a transient storm that takes
// out "everything" should degrade to a single struggling replica, not
// to a black hole that fails every request unconditionally.
#pragma once

#include <mutex>
#include <vector>

namespace hwp3d::serve {

class ReplicaHealth {
 public:
  ReplicaHealth(int replicas, int quarantine_after);

  // A successful attempt resets the replica's consecutive-failure run.
  void RecordSuccess(int replica);

  // A failed attempt; returns true when this failure just pushed the
  // replica into quarantine (the caller counts/logs the transition).
  bool RecordFailure(int replica);

  bool healthy(int replica) const;
  // Indices of non-quarantined replicas, ascending. Never empty.
  std::vector<int> HealthySet() const;
  int healthy_count() const;
  int quarantined_count() const;

  // Clears quarantine and the failure run (operator intervention /
  // future health-probe reinstatement).
  void Reinstate(int replica);

 private:
  struct State {
    int consecutive_failures = 0;
    bool quarantined = false;
  };

  const int quarantine_after_;
  mutable std::mutex mu_;
  std::vector<State> states_;
  int healthy_ = 0;
};

}  // namespace hwp3d::serve
