#include "serve/request_queue.h"

#include <chrono>
#include <cmath>

#include "common/strings.h"
#include "obs/trace.h"

namespace hwp3d::serve {

Status RequestQueue::Push(Request&& request) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) {
      return UnavailableError("request queue is closed (server draining)");
    }
    if (queue_.size() >= capacity_) {
      return ResourceExhaustedError(StrFormat(
          "request queue full (capacity %zu); retry later or raise "
          "queue_capacity",
          capacity_));
    }
    queue_.push_back(std::move(request));
  }
  nonempty_.notify_one();
  return Status::Ok();
}

std::vector<Request> RequestQueue::PopBatch(int max_batch,
                                            int64_t max_delay_us) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    nonempty_.wait(lk, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return {};  // closed and drained
    // Flush wait: anchored to the oldest request so tail latency is
    // bounded by max_delay_us regardless of arrival pattern. A
    // concurrent consumer may drain the queue while we sleep, in which
    // case we go back to waiting for the next request.
    while (!closed_ && !queue_.empty() &&
           static_cast<int>(queue_.size()) < max_batch) {
      const double flush_at_us = queue_.front().enqueue_us + max_delay_us;
      const double now_us = obs::NowUs();
      if (now_us >= flush_at_us) break;
      // Round the wait *up*: truncation would turn a sub-microsecond
      // remainder into wait_for(0) and busy-spin until the clock
      // crosses the flush point. Ceil overshoots by < 1 us at most,
      // which the flush-time lower bound tolerates by construction.
      pop_wait_iterations_.fetch_add(1, std::memory_order_relaxed);
      nonempty_.wait_for(lk, std::chrono::microseconds(static_cast<int64_t>(
                                 std::ceil(flush_at_us - now_us))));
    }
    if (!queue_.empty()) break;
    if (closed_) return {};
  }
  std::vector<Request> batch;
  const size_t take =
      std::min(queue_.size(), static_cast<size_t>(max_batch));
  batch.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  return batch;
}

void RequestQueue::Close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  nonempty_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

size_t RequestQueue::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queue_.size();
}

}  // namespace hwp3d::serve
