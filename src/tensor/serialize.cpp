#include "tensor/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/error.h"

namespace hwp3d {
namespace {

constexpr char kMagic[4] = {'H', 'W', 'P', 'T'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WriteRaw(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T ReadRaw(std::istream& is) {
  T v;
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  HWP_CHECK_MSG(static_cast<bool>(is), "tensor stream truncated");
  return v;
}

}  // namespace

void WriteTensor(std::ostream& os, const TensorF& t) {
  os.write(kMagic, 4);
  WriteRaw(os, kVersion);
  WriteRaw(os, static_cast<uint32_t>(t.rank()));
  for (int i = 0; i < t.rank(); ++i) WriteRaw(os, t.dim(i));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  HWP_CHECK_MSG(static_cast<bool>(os), "tensor write failed");
}

TensorF ReadTensor(std::istream& is) {
  char magic[4];
  is.read(magic, 4);
  HWP_CHECK_MSG(static_cast<bool>(is) && std::memcmp(magic, kMagic, 4) == 0,
                "bad tensor magic");
  const uint32_t version = ReadRaw<uint32_t>(is);
  HWP_CHECK_MSG(version == kVersion, "unsupported tensor version " << version);
  const uint32_t rank = ReadRaw<uint32_t>(is);
  HWP_CHECK_MSG(rank <= 8, "implausible tensor rank " << rank);
  std::vector<int64_t> dims(rank);
  for (uint32_t i = 0; i < rank; ++i) dims[i] = ReadRaw<int64_t>(is);
  Shape shape(dims);
  TensorF t(shape);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  HWP_CHECK_MSG(static_cast<bool>(is), "tensor data truncated");
  return t;
}

void SaveTensor(const std::string& path, const TensorF& t) {
  std::ofstream os(path, std::ios::binary);
  HWP_CHECK_MSG(os.is_open(), "cannot open " << path << " for writing");
  WriteTensor(os, t);
}

TensorF LoadTensor(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  HWP_CHECK_MSG(is.is_open(), "cannot open " << path << " for reading");
  return ReadTensor(is);
}

}  // namespace hwp3d
