#include "tensor/init.h"

#include <cmath>

namespace hwp3d {

void FillUniform(TensorF& t, Rng& rng, float lo, float hi) {
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.Uniform(lo, hi));
}

void FillNormal(TensorF& t, Rng& rng, float mean, float stddev) {
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.Normal(mean, stddev));
}

void FillKaiming(TensorF& t, Rng& rng, int64_t fan_in) {
  HWP_CHECK_MSG(fan_in > 0, "Kaiming init requires positive fan_in");
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  FillNormal(t, rng, 0.0f, stddev);
}

void FillXavier(TensorF& t, Rng& rng, int64_t fan_in, int64_t fan_out) {
  HWP_CHECK_MSG(fan_in > 0 && fan_out > 0, "Xavier init requires positive fans");
  const float bound =
      std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  FillUniform(t, rng, -bound, bound);
}

}  // namespace hwp3d
