#include "tensor/shape.h"

#include <sstream>

namespace hwp3d {

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::vector<int64_t> Shape::strides() const {
  std::vector<int64_t> s(dims_.size(), 1);
  for (int i = rank() - 2; i >= 0; --i) {
    s[static_cast<size_t>(i)] =
        s[static_cast<size_t>(i) + 1] * dims_[static_cast<size_t>(i) + 1];
  }
  return s;
}

int64_t Shape::LinearIndex(const std::vector<int64_t>& idx) const {
  HWP_SHAPE_CHECK_MSG(static_cast<int>(idx.size()) == rank(),
                      "index rank " << idx.size() << " vs shape rank "
                                    << rank());
  int64_t offset = 0;
  int64_t stride = 1;
  for (int i = rank() - 1; i >= 0; --i) {
    const int64_t x = idx[static_cast<size_t>(i)];
    const int64_t d = dims_[static_cast<size_t>(i)];
    HWP_SHAPE_CHECK_MSG(x >= 0 && x < d,
                        "index " << x << " out of bounds for dim " << i
                                 << " of extent " << d);
    offset += x * stride;
    stride *= d;
  }
  return offset;
}

std::string Shape::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) os << ", ";
    os << dims_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace hwp3d
