// Tensor<T>: owning, contiguous, row-major N-D array.
//
// This is the single data container used by the training framework (float),
// the pruning core (float), and the FPGA simulator (fixed16 via
// Tensor<Fixed16>). It deliberately has no views/broadcasting — every
// operation in this library works on explicit indices, which keeps the
// FPGA tile simulator a line-for-line transcription of the paper's
// Algorithm 2.
#pragma once

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "common/error.h"
#include "tensor/shape.h"

namespace hwp3d {

template <typename T>
class Tensor {
 public:
  Tensor() = default;

  explicit Tensor(Shape shape, T fill = T{})
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.numel()), fill) {}

  Tensor(Shape shape, std::vector<T> data)
      : shape_(std::move(shape)), data_(std::move(data)) {
    HWP_SHAPE_CHECK_MSG(
        static_cast<int64_t>(data_.size()) == shape_.numel(),
        "data size " << data_.size() << " vs shape " << shape_.ToString());
  }

  const Shape& shape() const { return shape_; }
  int rank() const { return shape_.rank(); }
  int64_t dim(int i) const { return shape_.dim(i); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }
  std::vector<T>& vec() { return data_; }
  const std::vector<T>& vec() const { return data_; }

  // Linear element access (bounds-checked in debug builds).
  T& operator[](int64_t i) {
    HWP_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }
  const T& operator[](int64_t i) const {
    HWP_DCHECK(i >= 0 && i < numel());
    return data_[static_cast<size_t>(i)];
  }

  // Multi-index access. Variadic form covers the common fixed-rank cases.
  template <typename... Ix>
  T& operator()(Ix... ix) {
    return data_[static_cast<size_t>(Offset({static_cast<int64_t>(ix)...}))];
  }
  template <typename... Ix>
  const T& operator()(Ix... ix) const {
    return data_[static_cast<size_t>(Offset({static_cast<int64_t>(ix)...}))];
  }

  T& at(const std::vector<int64_t>& idx) {
    return data_[static_cast<size_t>(shape_.LinearIndex(idx))];
  }
  const T& at(const std::vector<int64_t>& idx) const {
    return data_[static_cast<size_t>(shape_.LinearIndex(idx))];
  }

  // Reinterprets the data with a new shape of identical numel.
  Tensor<T> Reshaped(Shape new_shape) const {
    HWP_SHAPE_CHECK_MSG(new_shape.numel() == shape_.numel(),
                        "reshape " << shape_.ToString() << " -> "
                                   << new_shape.ToString());
    Tensor<T> out;
    out.shape_ = std::move(new_shape);
    out.data_ = data_;
    return out;
  }

  void Fill(T v) { std::fill(data_.begin(), data_.end(), v); }

  // Applies f element-wise in place.
  void Map(const std::function<T(T)>& f) {
    for (auto& v : data_) v = f(v);
  }

  bool SameShape(const Tensor<T>& other) const {
    return shape_ == other.shape_;
  }

 private:
  int64_t Offset(std::initializer_list<int64_t> idx) const {
    HWP_DCHECK(static_cast<int>(idx.size()) == shape_.rank());
    int64_t offset = 0;
    int64_t stride = 1;
    const auto& dims = shape_.dims();
    auto it = std::rbegin(idx);
    for (int i = shape_.rank() - 1; i >= 0; --i, ++it) {
      HWP_DCHECK(*it >= 0 && *it < dims[static_cast<size_t>(i)]);
      offset += *it * stride;
      stride *= dims[static_cast<size_t>(i)];
    }
    return offset;
  }

  Shape shape_;
  std::vector<T> data_;
};

using TensorF = Tensor<float>;

}  // namespace hwp3d
