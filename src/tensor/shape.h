// Shape: dimension vector plus row-major stride/index algebra for Tensor.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "common/error.h"

namespace hwp3d {

// Describes the extents of an N-dimensional row-major tensor.
// Rank 0 (scalar) is allowed and has numel() == 1.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { Validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {
    Validate();
  }

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const {
    HWP_CHECK_MSG(i >= 0 && i < rank(), "dim index " << i << " out of rank "
                                                     << rank());
    return dims_[static_cast<size_t>(i)];
  }
  int64_t operator[](int i) const { return dim(i); }
  const std::vector<int64_t>& dims() const { return dims_; }

  // Total number of elements (product of dims; 1 for rank-0).
  int64_t numel() const;

  // Row-major strides, in elements. strides()[rank()-1] == 1.
  std::vector<int64_t> strides() const;

  // Linear offset of a multi-index (must have exactly `rank()` entries).
  int64_t LinearIndex(const std::vector<int64_t>& idx) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  // "[2, 3, 4]"
  std::string ToString() const;

 private:
  void Validate() const {
    for (int64_t d : dims_) {
      HWP_CHECK_MSG(d >= 0, "negative dimension in shape");
    }
  }

  std::vector<int64_t> dims_;
};

// Ceiling division used throughout tiling/blocking math: CeilDiv(7,2)==4.
constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace hwp3d
