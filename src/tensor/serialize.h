// Binary tensor (de)serialization for checkpoints.
//
// Format: magic "HWPT", u32 version, u32 rank, i64 dims[rank], f32 data[].
// Little-endian, as produced on the host.
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/tensor.h"

namespace hwp3d {

void WriteTensor(std::ostream& os, const TensorF& t);
TensorF ReadTensor(std::istream& is);

// Convenience file wrappers; throw Error on I/O failure.
void SaveTensor(const std::string& path, const TensorF& t);
TensorF LoadTensor(const std::string& path);

}  // namespace hwp3d
