// Random tensor initialization (weight init for the NN framework).
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace hwp3d {

// Fills t with U(lo, hi).
void FillUniform(TensorF& t, Rng& rng, float lo, float hi);

// Fills t with N(mean, stddev).
void FillNormal(TensorF& t, Rng& rng, float mean, float stddev);

// Kaiming-He normal init for a conv/linear weight tensor; fan_in is the
// number of input connections per output unit.
void FillKaiming(TensorF& t, Rng& rng, int64_t fan_in);

// Xavier/Glorot uniform init.
void FillXavier(TensorF& t, Rng& rng, int64_t fan_in, int64_t fan_out);

}  // namespace hwp3d
