// Element-wise and reduction operations on Tensor<float>.
//
// These are the numeric workhorses of the training framework and the ADMM
// pruner (Frobenius norms, axpy for the proximal term, etc.).
#pragma once

#include <cmath>
#include <cstdint>

#include "tensor/tensor.h"

namespace hwp3d {

// y += alpha * x  (shapes must match).
void Axpy(float alpha, const TensorF& x, TensorF& y);

// out = a + b / a - b / a * b (element-wise; shapes must match).
TensorF Add(const TensorF& a, const TensorF& b);
TensorF Sub(const TensorF& a, const TensorF& b);
TensorF Mul(const TensorF& a, const TensorF& b);

// In-place scalar ops.
void Scale(TensorF& t, float alpha);
void AddScalar(TensorF& t, float alpha);

// Reductions.
float Sum(const TensorF& t);
float Dot(const TensorF& a, const TensorF& b);
float FrobeniusNorm(const TensorF& t);
float MaxAbs(const TensorF& t);
float Mean(const TensorF& t);
float Variance(const TensorF& t);  // population variance

// Index of the maximum element (first occurrence).
int64_t Argmax(const TensorF& t);

// Number of exactly-zero entries.
int64_t CountZeros(const TensorF& t);

// Fraction of entries that are exactly zero, in [0,1].
double Sparsity(const TensorF& t);

// True if |a[i]-b[i]| <= atol + rtol*|b[i]| for all i.
bool AllClose(const TensorF& a, const TensorF& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace hwp3d
