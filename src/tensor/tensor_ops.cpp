#include "tensor/tensor_ops.h"

#include <algorithm>

namespace hwp3d {

namespace {
void CheckSameShape(const TensorF& a, const TensorF& b, const char* op) {
  HWP_SHAPE_CHECK_MSG(a.shape() == b.shape(),
                      op << ": shape mismatch " << a.shape().ToString()
                         << " vs " << b.shape().ToString());
}
}  // namespace

void Axpy(float alpha, const TensorF& x, TensorF& y) {
  CheckSameShape(x, y, "Axpy");
  const float* xp = x.data();
  float* yp = y.data();
  const int64_t n = x.numel();
  for (int64_t i = 0; i < n; ++i) yp[i] += alpha * xp[i];
}

TensorF Add(const TensorF& a, const TensorF& b) {
  CheckSameShape(a, b, "Add");
  TensorF out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] + b[i];
  return out;
}

TensorF Sub(const TensorF& a, const TensorF& b) {
  CheckSameShape(a, b, "Sub");
  TensorF out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
  return out;
}

TensorF Mul(const TensorF& a, const TensorF& b) {
  CheckSameShape(a, b, "Mul");
  TensorF out(a.shape());
  for (int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

void Scale(TensorF& t, float alpha) {
  for (int64_t i = 0; i < t.numel(); ++i) t[i] *= alpha;
}

void AddScalar(TensorF& t, float alpha) {
  for (int64_t i = 0; i < t.numel(); ++i) t[i] += alpha;
}

float Sum(const TensorF& t) {
  double s = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) s += t[i];
  return static_cast<float>(s);
}

float Dot(const TensorF& a, const TensorF& b) {
  CheckSameShape(a, b, "Dot");
  double s = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i)
    s += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(s);
}

float FrobeniusNorm(const TensorF& t) {
  double s = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i)
    s += static_cast<double>(t[i]) * t[i];
  return static_cast<float>(std::sqrt(s));
}

float MaxAbs(const TensorF& t) {
  float m = 0.0f;
  for (int64_t i = 0; i < t.numel(); ++i)
    m = std::max(m, std::fabs(t[i]));
  return m;
}

float Mean(const TensorF& t) {
  HWP_CHECK_MSG(t.numel() > 0, "Mean of empty tensor");
  return Sum(t) / static_cast<float>(t.numel());
}

float Variance(const TensorF& t) {
  HWP_CHECK_MSG(t.numel() > 0, "Variance of empty tensor");
  const double mu = Mean(t);
  double s = 0.0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    const double d = t[i] - mu;
    s += d * d;
  }
  return static_cast<float>(s / static_cast<double>(t.numel()));
}

int64_t Argmax(const TensorF& t) {
  HWP_CHECK_MSG(t.numel() > 0, "Argmax of empty tensor");
  int64_t best = 0;
  for (int64_t i = 1; i < t.numel(); ++i) {
    if (t[i] > t[best]) best = i;
  }
  return best;
}

int64_t CountZeros(const TensorF& t) {
  int64_t n = 0;
  for (int64_t i = 0; i < t.numel(); ++i) {
    if (t[i] == 0.0f) ++n;
  }
  return n;
}

double Sparsity(const TensorF& t) {
  if (t.numel() == 0) return 0.0;
  return static_cast<double>(CountZeros(t)) / static_cast<double>(t.numel());
}

bool AllClose(const TensorF& a, const TensorF& b, float rtol, float atol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float tol = atol + rtol * std::fabs(b[i]);
    if (std::fabs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace hwp3d
