#include "data/synthetic_video.h"

#include <cmath>

#include "common/error.h"

namespace hwp3d::data {

std::string MotionName(Motion m) {
  switch (m) {
    case Motion::kTranslateRight: return "translate-right";
    case Motion::kTranslateLeft: return "translate-left";
    case Motion::kTranslateDown: return "translate-down";
    case Motion::kTranslateUp: return "translate-up";
    case Motion::kRotateCw: return "rotate-cw";
    case Motion::kRotateCcw: return "rotate-ccw";
    case Motion::kExpand: return "expand";
    case Motion::kContract: return "contract";
    case Motion::kBlink: return "blink";
    case Motion::kStatic: return "static";
  }
  return "?";
}

SyntheticVideoDataset::SyntheticVideoDataset(SyntheticVideoConfig cfg)
    : cfg_(cfg) {
  HWP_CHECK_MSG(cfg_.num_classes >= 2 && cfg_.num_classes <= 10,
                "num_classes must be in [2,10]");
  HWP_CHECK_MSG(cfg_.frames >= 2 && cfg_.height >= 8 && cfg_.width >= 8,
                "clip too small for motion patterns");
}

void SyntheticVideoDataset::RenderFrame(TensorF& clip, int frame,
                                        Motion motion, float cx, float cy,
                                        float size, float angle, float scale,
                                        float intensity, bool visible) const {
  if (!visible) return;
  const int H = cfg_.height, W = cfg_.width, C = cfg_.channels;
  const float eff_size = size * scale;
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      float value = 0.0f;
      if (motion == Motion::kRotateCw || motion == Motion::kRotateCcw) {
        // Oriented bar: distance from the line through (cx,cy) at `angle`.
        const float dx = static_cast<float>(x) - cx;
        const float dy = static_cast<float>(y) - cy;
        const float along = dx * std::cos(angle) + dy * std::sin(angle);
        const float across = -dx * std::sin(angle) + dy * std::cos(angle);
        if (std::fabs(along) <= eff_size && std::fabs(across) <= 1.0f) {
          value = intensity;
        }
      } else {
        // Axis-aligned square.
        if (std::fabs(static_cast<float>(x) - cx) <= eff_size &&
            std::fabs(static_cast<float>(y) - cy) <= eff_size) {
          value = intensity;
        }
      }
      if (value > 0.0f) {
        for (int c = 0; c < C; ++c) {
          clip(c, frame, y, x) = value;
        }
      }
    }
  }
}

Sample SyntheticVideoDataset::MakeSample(int label, Rng& rng) const {
  HWP_CHECK_MSG(label >= 0 && label < cfg_.num_classes,
                "label " << label << " out of range");
  const Motion motion = static_cast<Motion>(label);
  const int D = cfg_.frames, H = cfg_.height, W = cfg_.width;

  Sample s;
  s.label = label;
  s.clip = TensorF(Shape{cfg_.channels, D, H, W}, 0.0f);

  // Randomized shape parameters. Keep the shape inside the frame for the
  // whole clip so every class has the same per-frame appearance stats.
  const float margin = 0.3f * static_cast<float>(std::min(H, W));
  const float cx0 =
      static_cast<float>(rng.Uniform(margin, W - 1 - margin));
  const float cy0 =
      static_cast<float>(rng.Uniform(margin, H - 1 - margin));
  const float size = static_cast<float>(rng.Uniform(1.5, 2.5));
  const float intensity = static_cast<float>(rng.Uniform(0.7, 1.0));
  const float angle0 = static_cast<float>(rng.Uniform(0.0, 3.14159265));
  // Per-clip speed so the *direction/sense*, not a fixed speed, defines
  // the class.
  const float speed = static_cast<float>(rng.Uniform(0.6, 1.2));
  const float omega = static_cast<float>(rng.Uniform(0.25, 0.5));

  for (int t = 0; t < D; ++t) {
    float cx = cx0, cy = cy0, angle = angle0, scale = 1.0f;
    bool visible = true;
    const float ft = static_cast<float>(t);
    switch (motion) {
      case Motion::kTranslateRight: cx = cx0 + speed * ft; break;
      case Motion::kTranslateLeft: cx = cx0 - speed * ft; break;
      case Motion::kTranslateDown: cy = cy0 + speed * ft; break;
      case Motion::kTranslateUp: cy = cy0 - speed * ft; break;
      case Motion::kRotateCw: angle = angle0 + omega * ft; break;
      case Motion::kRotateCcw: angle = angle0 - omega * ft; break;
      case Motion::kExpand: scale = 1.0f + 0.18f * ft; break;
      case Motion::kContract: scale = std::max(0.2f, 1.0f - 0.12f * ft); break;
      case Motion::kBlink: visible = (t % 2 == 0); break;
      case Motion::kStatic: break;
    }
    // Clamp the center so translations slide along the border instead of
    // leaving the frame entirely.
    cx = std::min(std::max(cx, 1.0f), static_cast<float>(W - 2));
    cy = std::min(std::max(cy, 1.0f), static_cast<float>(H - 2));
    RenderFrame(s.clip, t, motion, cx, cy, size, angle, scale, intensity,
                visible);
  }

  if (cfg_.noise_std > 0.0f) {
    for (int64_t i = 0; i < s.clip.numel(); ++i) {
      s.clip[i] += static_cast<float>(rng.Normal(0.0, cfg_.noise_std));
    }
  }
  return s;
}

std::vector<Sample> SyntheticVideoDataset::MakeSamples(int count,
                                                       Rng& rng) const {
  std::vector<Sample> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    out.push_back(MakeSample(i % cfg_.num_classes, rng));
  }
  // Shuffle so batches are class-mixed.
  for (int i = count - 1; i > 0; --i) {
    const int j = static_cast<int>(rng.UniformInt(0, i));
    std::swap(out[static_cast<size_t>(i)], out[static_cast<size_t>(j)]);
  }
  return out;
}

std::vector<nn::Batch> SyntheticVideoDataset::MakeBatches(int count,
                                                          int batch_size,
                                                          Rng& rng) const {
  HWP_CHECK_MSG(batch_size > 0, "batch_size must be positive");
  const std::vector<Sample> samples = MakeSamples(count, rng);
  std::vector<nn::Batch> batches;
  const int D = cfg_.frames, H = cfg_.height, W = cfg_.width,
            C = cfg_.channels;
  for (int start = 0; start < count; start += batch_size) {
    const int bsz = std::min(batch_size, count - start);
    nn::Batch batch;
    batch.clips = TensorF(Shape{bsz, C, D, H, W});
    batch.labels.resize(static_cast<size_t>(bsz));
    for (int b = 0; b < bsz; ++b) {
      const Sample& s = samples[static_cast<size_t>(start + b)];
      batch.labels[static_cast<size_t>(b)] = s.label;
      for (int c = 0; c < C; ++c)
        for (int d = 0; d < D; ++d)
          for (int h = 0; h < H; ++h)
            for (int w = 0; w < W; ++w)
              batch.clips(b, c, d, h, w) = s.clip(c, d, h, w);
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

}  // namespace hwp3d::data
