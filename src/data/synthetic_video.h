// Synthetic spatiotemporal action dataset (substitute for UCF101).
//
// Each class is defined purely by a MOTION pattern — translation
// direction, rotation sense, scaling, or blinking — of a random shape at
// a random position. Single frames are deliberately ambiguous across
// classes (a square moving left and a square moving right look identical
// in any one frame), so a classifier must model temporal structure, which
// is exactly the capability R(2+1)D's factorized temporal convolutions
// provide. This preserves the behaviour the paper's accuracy experiment
// probes: whether blockwise ADMM pruning retains accuracy on a task that
// requires spatio-temporal reasoning.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "nn/trainer.h"
#include "tensor/tensor.h"

namespace hwp3d::data {

enum class Motion : int {
  kTranslateRight = 0,
  kTranslateLeft = 1,
  kTranslateDown = 2,
  kTranslateUp = 3,
  kRotateCw = 4,
  kRotateCcw = 5,
  kExpand = 6,
  kContract = 7,
  kBlink = 8,
  kStatic = 9,
};

std::string MotionName(Motion m);

struct SyntheticVideoConfig {
  int num_classes = 10;  // uses the first `num_classes` Motion values
  int channels = 1;
  int frames = 8;    // D
  int height = 16;   // R
  int width = 16;    // C
  float noise_std = 0.05f;
};

struct Sample {
  TensorF clip;  // [C][D][H][W]
  int label = 0;
};

class SyntheticVideoDataset {
 public:
  explicit SyntheticVideoDataset(SyntheticVideoConfig cfg);

  const SyntheticVideoConfig& config() const { return cfg_; }

  // Generates one clip of the given class with randomized shape,
  // position, size, intensity and additive Gaussian noise.
  Sample MakeSample(int label, Rng& rng) const;

  // Generates `count` samples with uniformly distributed labels.
  std::vector<Sample> MakeSamples(int count, Rng& rng) const;

  // Packs samples into batches of [B][C][D][H][W] clips.
  std::vector<nn::Batch> MakeBatches(int count, int batch_size,
                                     Rng& rng) const;

 private:
  void RenderFrame(TensorF& clip, int frame, Motion motion, float cx,
                   float cy, float size, float angle, float scale,
                   float intensity, bool visible) const;

  SyntheticVideoConfig cfg_;
};

}  // namespace hwp3d::data
