// ADMM-based blockwise pruning (Section III, Algorithm 1).
//
// The constrained problem  min f({W_i}) s.t. W_i in S_i  is solved in its
// scaled augmented-Lagrangian form (Eq. 6):
//
//   L_rho = f({W_i}) + sum_i g_i(Z_i)
//         + sum_i rho/2 ( ||W_i - Z_i + V_i||_F^2 - ||V_i||_F^2 )
//
// iterated as (Eqs. 7-9):
//   W-step: SGD on f + rho/2 ||W - Z^k + V^k||^2   (the proximal gradient
//           rho*(W - Z + V) is added through AddProximalGradients())
//   Z-step: Z^{k+1} = Proj_S(W^{k+1} + V^k)        (UpdateAuxiliaries())
//   dual :  V^{k+1} = V^k + W^{k+1} - Z^{k+1}
//
// followed by hard pruning and masked retraining (Section III-E).
#pragma once

#include <string>
#include <vector>

#include "core/block_partition.h"
#include "core/projection.h"
#include "nn/param.h"

namespace hwp3d::core {

// One prunable layer handed to the pruner. `weight` must stay alive for
// the pruner's lifetime and have a rank-5 value tensor.
struct PruneLayerSpec {
  nn::Param* weight = nullptr;
  BlockConfig block;
  double eta = 0.0;  // target blockwise pruning ratio
  std::string name;
};

struct AdmmConfig {
  // Penalty parameter per round ("multi-rho": the paper uses
  // 1e-4, 1e-3, 1e-2, 1e-1 over four rounds).
  std::vector<double> rho_schedule = {1e-4, 1e-3, 1e-2, 1e-1};
  // Stopping threshold epsilon_i for the primal/dual residuals (Eq. 10),
  // relative to the Frobenius norm of W.
  double epsilon = 1e-2;
};

struct AdmmResiduals {
  double primal = 0.0;  // max_i ||W_i - Z_i|| / ||W_i||
  double dual = 0.0;    // max_i ||Z_i^{k+1} - Z_i^k|| / ||W_i||
  bool converged = false;
};

struct LayerPruneStats {
  std::string name;
  int64_t total_params = 0;
  int64_t kept_params = 0;
  int64_t total_blocks = 0;
  int64_t kept_blocks = 0;
  double achieved_sparsity() const {
    return total_params == 0
               ? 0.0
               : 1.0 - static_cast<double>(kept_params) / total_params;
  }
  double prune_rate() const {
    return kept_params == 0 ? 0.0
                            : static_cast<double>(total_params) / kept_params;
  }
};

class AdmmPruner {
 public:
  AdmmPruner(std::vector<PruneLayerSpec> layers, AdmmConfig cfg);

  int num_rounds() const { return static_cast<int>(cfg_.rho_schedule.size()); }
  // Sets rho for the given round and re-anchors Z/V (Z = Proj(W), V = 0 on
  // round 0; subsequent rounds keep the running Z/V per Algorithm 1).
  void StartRound(int round);
  double rho() const { return rho_; }

  // W-step coupling: adds rho * (W - Z + V) to each layer's gradient.
  // Call after Module::Backward, before the optimizer step.
  void AddProximalGradients();

  // Z-step + dual update (Eqs. 8-9/13). Returns the residuals (Eq. 10).
  AdmmResiduals UpdateAuxiliaries();

  // Value of the proximal penalty sum_i rho/2 ||W_i - Z_i + V_i||_F^2,
  // for logging the ADMM training loss.
  double ProximalPenalty() const;

  // Hard-prunes every layer in place (projection onto S_i) and freezes
  // the surviving-block masks for masked retraining.
  void HardPrune();

  // Masked retraining support: zero gradients of pruned blocks / re-zero
  // pruned weights (guards against optimizer momentum drift).
  void MaskGradients();
  void ReapplyMasks();

  // Achieved statistics per layer (valid after HardPrune).
  std::vector<LayerPruneStats> Stats() const;
  const std::vector<BlockMask>& masks() const { return masks_; }

  size_t num_layers() const { return layers_.size(); }
  const PruneLayerSpec& layer(size_t i) const { return layers_[i]; }

 private:
  std::vector<PruneLayerSpec> layers_;
  AdmmConfig cfg_;
  double rho_ = 0.0;
  bool initialized_ = false;
  bool hard_pruned_ = false;
  std::vector<BlockPartition> partitions_;
  std::vector<TensorF> Z_;
  std::vector<TensorF> V_;
  std::vector<BlockMask> masks_;
};

}  // namespace hwp3d::core
