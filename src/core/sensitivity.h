// Per-layer pruning sensitivity analysis.
//
// The paper prunes conv2_x at 90% and conv3_x at 80% "as they are the
// most computation intensive" while leaving the rest dense. This tool
// provides the quantitative backing a practitioner needs for such
// choices: for every prunable layer and a ladder of candidate etas, it
// hard-prunes ONLY that layer (no retraining), measures the accuracy
// drop on a probe set, restores the weights, and reports the
// sensitivity curve next to each layer's share of total compute.
#pragma once

#include <string>
#include <vector>

#include "core/admm.h"
#include "nn/module.h"
#include "nn/trainer.h"

namespace hwp3d::core {

struct SensitivityPoint {
  double eta = 0.0;
  double accuracy = 0.0;  // probe accuracy with only this layer pruned
};

struct LayerSensitivity {
  std::string name;
  int64_t params = 0;
  std::vector<SensitivityPoint> curve;

  // Largest eta whose accuracy stays within `tolerance` of the dense
  // accuracy (0 when even the smallest candidate violates it).
  double MaxEtaWithin(double dense_accuracy, double tolerance) const;
};

struct SensitivityOptions {
  std::vector<double> etas = {0.25, 0.5, 0.75, 0.9};
  BlockConfig block{4, 4};
};

// Runs the scan. The model's weights are restored after every probe;
// on return the model is unchanged.
std::vector<LayerSensitivity> ScanPruningSensitivity(
    nn::Module& model, const std::vector<PruneLayerSpec>& layers,
    const std::vector<nn::Batch>& probe, const SensitivityOptions& options);

}  // namespace hwp3d::core
