#include "core/sensitivity.h"

#include "common/error.h"
#include "core/projection.h"

namespace hwp3d::core {

double LayerSensitivity::MaxEtaWithin(double dense_accuracy,
                                      double tolerance) const {
  double best = 0.0;
  for (const SensitivityPoint& p : curve) {
    if (p.accuracy >= dense_accuracy - tolerance) {
      best = std::max(best, p.eta);
    }
  }
  return best;
}

std::vector<LayerSensitivity> ScanPruningSensitivity(
    nn::Module& model, const std::vector<PruneLayerSpec>& layers,
    const std::vector<nn::Batch>& probe, const SensitivityOptions& options) {
  HWP_CHECK_MSG(!layers.empty(), "sensitivity scan needs layers");
  HWP_CHECK_MSG(!probe.empty(), "sensitivity scan needs probe batches");

  std::vector<LayerSensitivity> out;
  for (const PruneLayerSpec& layer : layers) {
    HWP_CHECK_MSG(layer.weight != nullptr, "null weight in scan");
    LayerSensitivity sens;
    sens.name = layer.name;
    sens.params = layer.weight->value.numel();
    BlockPartition part(layer.weight->value.shape(),
                        layer.block.Tm > 0 ? layer.block : options.block);
    const TensorF backup = layer.weight->value;
    for (double eta : options.etas) {
      ProjectToBlockSparse(layer.weight->value, part, eta);
      SensitivityPoint point;
      point.eta = eta;
      point.accuracy = nn::Evaluate(model, probe).accuracy;
      sens.curve.push_back(point);
      layer.weight->value = backup;  // restore before the next eta
    }
    out.push_back(std::move(sens));
  }
  return out;
}

}  // namespace hwp3d::core
