#include "core/baselines.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace hwp3d::core {

void MaskedPruner::MaskGradients() {
  HWP_CHECK_MSG(pruned_, "MaskGradients before HardPrune");
  for (auto& e : entries_) {
    for (int64_t i = 0; i < e.mask.numel(); ++i) {
      if (e.mask[i] == 0.0f) e.weight->grad[i] = 0.0f;
    }
  }
}

void MaskedPruner::ReapplyMasks() {
  HWP_CHECK_MSG(pruned_, "ReapplyMasks before HardPrune");
  for (auto& e : entries_) {
    for (int64_t i = 0; i < e.mask.numel(); ++i) {
      if (e.mask[i] == 0.0f) e.weight->value[i] = 0.0f;
    }
  }
}

std::vector<LayerPruneStats> MaskedPruner::Stats() const {
  HWP_CHECK_MSG(pruned_, "Stats before HardPrune");
  std::vector<LayerPruneStats> out;
  for (const auto& e : entries_) {
    LayerPruneStats s;
    s.name = e.name;
    s.total_params = e.weight->value.numel();
    int64_t kept = 0;
    for (int64_t i = 0; i < e.mask.numel(); ++i) {
      if (e.mask[i] != 0.0f) ++kept;
    }
    s.kept_params = kept;
    out.push_back(s);
  }
  return out;
}

double MaskedPruner::SkippableBlockFraction(size_t layer,
                                            BlockConfig block) const {
  HWP_CHECK_MSG(pruned_, "SkippableBlockFraction before HardPrune");
  HWP_CHECK_MSG(layer < entries_.size(), "layer index out of range");
  const Entry& e = entries_[layer];
  BlockPartition part(e.weight->value.shape(), block);
  // A block is skippable iff every element in it is masked out.
  const std::vector<double> norms = part.BlockSqNorms(e.mask);
  int64_t zero_blocks = 0;
  for (double n : norms) {
    if (n == 0.0) ++zero_blocks;
  }
  return part.num_blocks() == 0
             ? 0.0
             : static_cast<double>(zero_blocks) / part.num_blocks();
}

MagnitudePruner::MagnitudePruner(std::vector<LayerSpec> layers) {
  for (auto& l : layers) {
    HWP_CHECK_MSG(l.weight != nullptr, "null weight in MagnitudePruner");
    HWP_CHECK_MSG(l.eta >= 0.0 && l.eta < 1.0, "eta out of range");
    Entry e;
    e.weight = l.weight;
    e.eta = l.eta;
    e.name = l.name;
    entries_.push_back(std::move(e));
  }
}

void MagnitudePruner::HardPrune() {
  for (auto& e : entries_) {
    TensorF& w = e.weight->value;
    const int64_t n = w.numel();
    e.mask = TensorF(w.shape(), 1.0f);
    const int64_t to_prune = static_cast<int64_t>(std::floor(e.eta * n));
    if (to_prune == 0) continue;
    std::vector<int64_t> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return std::fabs(w[a]) < std::fabs(w[b]);
    });
    for (int64_t i = 0; i < to_prune; ++i) {
      const int64_t idx = order[static_cast<size_t>(i)];
      e.mask[idx] = 0.0f;
      w[idx] = 0.0f;
    }
  }
  pruned_ = true;
}

FilterPruner::FilterPruner(std::vector<LayerSpec> layers) {
  for (auto& l : layers) {
    HWP_CHECK_MSG(l.weight != nullptr, "null weight in FilterPruner");
    HWP_CHECK_MSG(l.weight->value.rank() == 5,
                  "FilterPruner expects rank-5 conv weights");
    HWP_CHECK_MSG(l.eta >= 0.0 && l.eta < 1.0, "eta out of range");
    Entry e;
    e.weight = l.weight;
    e.eta = l.eta;
    e.name = l.name;
    entries_.push_back(std::move(e));
  }
}

void FilterPruner::HardPrune() {
  for (auto& e : entries_) {
    TensorF& w = e.weight->value;
    const int64_t M = w.dim(0);
    const int64_t per_filter = w.numel() / M;
    e.mask = TensorF(w.shape(), 1.0f);
    const int64_t to_prune = static_cast<int64_t>(std::floor(e.eta * M));
    if (to_prune == 0) continue;

    std::vector<double> norms(static_cast<size_t>(M), 0.0);
    for (int64_t m = 0; m < M; ++m) {
      double s = 0.0;
      for (int64_t k = 0; k < per_filter; ++k) {
        const float v = w[m * per_filter + k];
        s += static_cast<double>(v) * v;
      }
      norms[static_cast<size_t>(m)] = s;
    }
    std::vector<int64_t> order(static_cast<size_t>(M));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
      return norms[static_cast<size_t>(a)] < norms[static_cast<size_t>(b)];
    });
    for (int64_t i = 0; i < to_prune; ++i) {
      const int64_t m = order[static_cast<size_t>(i)];
      for (int64_t k = 0; k < per_filter; ++k) {
        e.mask[m * per_filter + k] = 0.0f;
        w[m * per_filter + k] = 0.0f;
      }
    }
  }
  pruned_ = true;
}

}  // namespace hwp3d::core
