#include "core/projection.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace hwp3d::core {

ProjectionResult PlanBlockSparse(const TensorF& w, const BlockPartition& part,
                                 double eta) {
  HWP_CHECK_MSG(eta >= 0.0 && eta < 1.0, "eta must be in [0,1), got " << eta);
  const int64_t B = part.num_blocks();
  ProjectionResult out;
  out.mask = part.FullMask();
  out.kept_blocks = B;
  if (eta == 0.0 || B == 0) return out;

  const std::vector<double> sq_norms = part.BlockSqNorms(w);
  // Eq. 1 demands E_i <= (1 - eta) * B surviving blocks; since E_i is an
  // integer the tightest satisfying count is floor((1-eta) * B), clamped
  // to at least one block so a layer is never pruned away entirely.
  // Ties are broken by index order (stable sort) for determinism.
  const int64_t kept =
      std::max<int64_t>(1, static_cast<int64_t>(std::floor((1.0 - eta) *
                                                           B)));
  const int64_t to_prune = B - kept;
  std::vector<int64_t> order(static_cast<size_t>(B));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return sq_norms[static_cast<size_t>(a)] < sq_norms[static_cast<size_t>(b)];
  });
  for (int64_t i = 0; i < to_prune; ++i) {
    const int64_t blk = order[static_cast<size_t>(i)];
    out.mask.enabled[static_cast<size_t>(blk)] = 0;
  }
  out.pruned_blocks = to_prune;
  out.kept_blocks = B - to_prune;
  if (to_prune > 0 && to_prune < B) {
    // zeta: the norm of the smallest surviving block (the percentile
    // boundary); everything strictly below it is pruned.
    out.threshold =
        std::sqrt(sq_norms[static_cast<size_t>(order[static_cast<size_t>(to_prune)])]);
  }
  return out;
}

ProjectionResult ProjectToBlockSparse(TensorF& w, const BlockPartition& part,
                                      double eta) {
  ProjectionResult plan = PlanBlockSparse(w, part, eta);
  part.ApplyMask(w, plan.mask);
  return plan;
}

}  // namespace hwp3d::core
