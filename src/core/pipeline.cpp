#include "core/pipeline.h"

#include "common/logging.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hwp3d::core {

PipelineResult RunAdmmPipeline(nn::Module& model, AdmmPruner& pruner,
                               const std::vector<nn::Batch>& train,
                               const std::vector<nn::Batch>& test,
                               const PipelineConfig& cfg) {
  HWP_TRACE_SCOPE("core/RunAdmmPipeline");
  PipelineResult result;
  auto& reg = obs::MetricsRegistry::Get();

  // --- ADMM training rounds (W-step epochs with periodic Z/V updates) ---
  nn::SgdConfig opt_cfg;
  opt_cfg.lr = cfg.admm_lr;
  opt_cfg.momentum = cfg.momentum;
  opt_cfg.weight_decay = cfg.weight_decay;
  nn::Sgd admm_opt(model.Params(), opt_cfg);

  nn::TrainOptions admm_opts;
  admm_opts.label_smoothing = cfg.admm_label_smoothing;
  admm_opts.post_backward = [&pruner]() { pruner.AddProximalGradients(); };

  int global_epoch = 0;
  for (int round = 0; round < pruner.num_rounds(); ++round) {
    obs::TraceScope round_span("admm/round");
    pruner.StartRound(round);
    round_span.AddArg("round", static_cast<int64_t>(round));
    round_span.AddArg("rho", pruner.rho());
    HWP_LOG(Info) << "ADMM round " << round << " rho=" << pruner.rho();
    for (int e = 0; e < cfg.epochs_per_round; ++e, ++global_epoch) {
      const nn::EpochStats stats = nn::TrainEpoch(model, admm_opt, train,
                                                  admm_opts);
      result.admm_final_train_acc = stats.accuracy;
      reg.GetCounter("pipeline.epochs", {{"phase", "admm"}}).Add(1);
      if (cfg.on_epoch) cfg.on_epoch(global_epoch, "admm", stats);
      if ((e + 1) % cfg.epochs_between_updates == 0) {
        const AdmmResiduals res = pruner.UpdateAuxiliaries();
        result.residual_history.push_back(res);
        reg.GetCounter("admm.updates").Add(1);
        reg.GetHistogram("admm.primal_residual").Observe(res.primal);
        reg.GetHistogram("admm.dual_residual").Observe(res.dual);
        obs::Tracer::Get().Counter("admm.primal_residual", res.primal);
        obs::Tracer::Get().Counter("admm.dual_residual", res.dual);
        HWP_LOG(Debug) << "  epoch " << global_epoch << " loss="
                       << stats.mean_loss << " acc=" << stats.accuracy
                       << " primal=" << res.primal << " dual=" << res.dual;
        if (res.converged) {
          reg.GetCounter("admm.converged_early").Add(1);
          break;
        }
      }
    }
  }

  // --- Hard prune ---
  {
    HWP_TRACE_SCOPE("admm/hard_prune");
    pruner.HardPrune();
  }
  result.hard_prune_test_acc = nn::Evaluate(model, test).accuracy;
  result.layer_stats = pruner.Stats();
  reg.GetGauge("pipeline.admm_final_train_acc")
      .Set(result.admm_final_train_acc);
  reg.GetGauge("pipeline.hard_prune_test_acc").Set(result.hard_prune_test_acc);

  // --- Masked retraining (warmup + cosine lr, no label smoothing) ---
  HWP_TRACE_SCOPE("admm/retrain");
  nn::SgdConfig rt_cfg = opt_cfg;
  rt_cfg.lr = cfg.retrain_lr;
  nn::Sgd retrain_opt(model.Params(), rt_cfg);
  nn::WarmupCosineLr schedule(cfg.retrain_lr, cfg.retrain_warmup_epochs,
                              cfg.retrain_epochs);
  nn::TrainOptions rt_opts;
  rt_opts.post_backward = [&pruner]() { pruner.MaskGradients(); };
  rt_opts.post_step = [&pruner]() { pruner.ReapplyMasks(); };
  for (int e = 0; e < cfg.retrain_epochs; ++e, ++global_epoch) {
    retrain_opt.set_lr(schedule.LrAt(e));
    const nn::EpochStats stats =
        nn::TrainEpoch(model, retrain_opt, train, rt_opts);
    reg.GetCounter("pipeline.epochs", {{"phase", "retrain"}}).Add(1);
    if (cfg.on_epoch) cfg.on_epoch(global_epoch, "retrain", stats);
    HWP_LOG(Debug) << "  retrain epoch " << e << " lr=" << retrain_opt.lr()
                   << " loss=" << stats.mean_loss << " acc=" << stats.accuracy;
  }
  pruner.ReapplyMasks();
  result.retrained_test_acc = nn::Evaluate(model, test).accuracy;
  reg.GetGauge("pipeline.retrained_test_acc").Set(result.retrained_test_acc);
  return result;
}

}  // namespace hwp3d::core
