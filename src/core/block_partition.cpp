#include "core/block_partition.h"

#include <algorithm>

#include "common/error.h"

namespace hwp3d::core {

int64_t BlockMask::CountEnabled() const {
  int64_t n = 0;
  for (uint8_t e : enabled) n += e != 0 ? 1 : 0;
  return n;
}

int64_t BlockMask::CountEnabledInRow(int64_t bm) const {
  int64_t n = 0;
  for (int64_t bn = 0; bn < blocks_n; ++bn) n += at(bm, bn) ? 1 : 0;
  return n;
}

BlockPartition::BlockPartition(const Shape& weight_shape, BlockConfig cfg)
    : cfg_(cfg), shape_(weight_shape) {
  HWP_SHAPE_CHECK_MSG(weight_shape.rank() == 5,
                      "BlockPartition expects a 5-D weight tensor, got "
                          << weight_shape.ToString());
  HWP_CHECK_MSG(cfg.Tm > 0 && cfg.Tn > 0, "block tile sizes must be positive");
  M_ = weight_shape[0];
  N_ = weight_shape[1];
  K_ = weight_shape[2] * weight_shape[3] * weight_shape[4];
  blocks_m_ = CeilDiv(M_, cfg_.Tm);
  blocks_n_ = CeilDiv(N_, cfg_.Tn);
}

void BlockPartition::CheckShape(const TensorF& w) const {
  HWP_SHAPE_CHECK_MSG(w.shape() == shape_,
                      "weight shape " << w.shape().ToString()
                                      << " does not match partition shape "
                                      << shape_.ToString());
}

int64_t BlockPartition::BlockParams(int64_t bm, int64_t bn) const {
  return (m_end(bm) - m_begin(bm)) * (n_end(bn) - n_begin(bn)) * K_;
}

std::vector<double> BlockPartition::BlockSqNorms(const TensorF& w) const {
  CheckShape(w);
  std::vector<double> norms(static_cast<size_t>(num_blocks()), 0.0);
  const int64_t NK = N_ * K_;
  const float* base = w.data();
  for (int64_t m = 0; m < M_; ++m) {
    const int64_t bm = m / cfg_.Tm;
    for (int64_t n = 0; n < N_; ++n) {
      const int64_t bn = n / cfg_.Tn;
      const float* p = base + m * NK + n * K_;
      double s = 0.0;
      for (int64_t k = 0; k < K_; ++k) s += static_cast<double>(p[k]) * p[k];
      norms[static_cast<size_t>(bm * blocks_n_ + bn)] += s;
    }
  }
  return norms;
}

void BlockPartition::ApplyMask(TensorF& w, const BlockMask& mask) const {
  CheckShape(w);
  HWP_CHECK_MSG(mask.blocks_m == blocks_m_ && mask.blocks_n == blocks_n_,
                "mask grid mismatch");
  const int64_t NK = N_ * K_;
  float* base = w.data();
  for (int64_t m = 0; m < M_; ++m) {
    const int64_t bm = m / cfg_.Tm;
    for (int64_t n = 0; n < N_; ++n) {
      const int64_t bn = n / cfg_.Tn;
      if (mask.at(bm, bn)) continue;
      float* p = base + m * NK + n * K_;
      std::fill(p, p + K_, 0.0f);
    }
  }
}

BlockMask BlockPartition::FullMask() const {
  BlockMask mask;
  mask.blocks_m = blocks_m_;
  mask.blocks_n = blocks_n_;
  mask.enabled.assign(static_cast<size_t>(num_blocks()), 1);
  return mask;
}

int64_t BlockPartition::EnabledParams(const BlockMask& mask) const {
  HWP_CHECK_MSG(mask.blocks_m == blocks_m_ && mask.blocks_n == blocks_n_,
                "mask grid mismatch");
  int64_t total = 0;
  for (int64_t bm = 0; bm < blocks_m_; ++bm) {
    for (int64_t bn = 0; bn < blocks_n_; ++bn) {
      if (mask.at(bm, bn)) total += BlockParams(bm, bn);
    }
  }
  return total;
}

}  // namespace hwp3d::core
