// Baseline pruning schemes the paper positions itself against:
//
//  * Non-structured magnitude pruning [7,8]: per-element masks. Reaches
//    high sparsity but the irregular pattern gives no dense-tile skipping
//    on the FPGA (block-enable granularity), so hardware speedup is poor.
//  * Structured filter pruning [9,10]: removes whole output channels.
//    Hardware-friendly but typically loses more accuracy at equal rate.
//
// Both support masked retraining like the blockwise pruner, so the
// ablation benches can compare accuracy and *achievable block sparsity*
// (how many Tm x Tn tiles an FPGA could actually skip) across schemes.
#pragma once

#include <string>
#include <vector>

#include "core/admm.h"
#include "core/block_partition.h"
#include "nn/param.h"

namespace hwp3d::core {

// Shared machinery: per-layer element masks (1 = keep).
class MaskedPruner {
 public:
  virtual ~MaskedPruner() = default;

  // Computes masks from current weights and zeroes pruned elements.
  virtual void HardPrune() = 0;

  void MaskGradients();
  void ReapplyMasks();
  std::vector<LayerPruneStats> Stats() const;

  // Fraction of Tm x Tn blocks that are entirely zero under `block` —
  // what the FPGA block-enable mechanism could skip.
  double SkippableBlockFraction(size_t layer, BlockConfig block) const;

 protected:
  struct Entry {
    nn::Param* weight = nullptr;
    double eta = 0.0;
    std::string name;
    TensorF mask;  // same shape as weight, 0/1
  };
  std::vector<Entry> entries_;
  bool pruned_ = false;
};

// Non-structured: prunes the floor(eta * numel) smallest |w| elements.
class MagnitudePruner : public MaskedPruner {
 public:
  struct LayerSpec {
    nn::Param* weight = nullptr;
    double eta = 0.0;
    std::string name;
  };
  explicit MagnitudePruner(std::vector<LayerSpec> layers);
  void HardPrune() override;
};

// Structured: prunes the floor(eta * M) output channels (filters) with
// the smallest L2 norms.
class FilterPruner : public MaskedPruner {
 public:
  struct LayerSpec {
    nn::Param* weight = nullptr;  // rank-5 [M][N][Kd][Kr][Kc]
    double eta = 0.0;
    std::string name;
  };
  explicit FilterPruner(std::vector<LayerSpec> layers);
  void HardPrune() override;
};

}  // namespace hwp3d::core
