// End-to-end Algorithm 1: ADMM training rounds -> hard prune -> masked
// retraining, driving an nn::Module through the training loop.
//
// This is the orchestration the paper describes in Section V: multiple
// rho rounds, a fixed number of epochs per round with periodic Z/V
// updates, label smoothing during ADMM training, and warmup + cosine lr
// during masked retraining.
#pragma once

#include <functional>
#include <vector>

#include "core/admm.h"
#include "nn/module.h"
#include "nn/trainer.h"

namespace hwp3d::core {

struct PipelineConfig {
  AdmmConfig admm;
  int epochs_per_round = 4;       // epoch_rho in Algorithm 1
  int epochs_between_updates = 1; // epoch_admm: Z/V update cadence
  int retrain_epochs = 8;
  float admm_lr = 5e-4f;
  float retrain_lr = 5e-4f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  float admm_label_smoothing = 0.1f;  // "bag of tricks" during ADMM
  int retrain_warmup_epochs = 2;      // warmup + cosine during retraining
  // Optional per-epoch observer (epoch index, phase, train stats).
  std::function<void(int, const char*, const nn::EpochStats&)> on_epoch;
};

struct PipelineResult {
  double admm_final_train_acc = 0.0;
  double hard_prune_test_acc = 0.0;   // right after projection, no retrain
  double retrained_test_acc = 0.0;
  std::vector<LayerPruneStats> layer_stats;
  std::vector<AdmmResiduals> residual_history;
};

// Runs Algorithm 1 on `model` with the given pruner. `train`/`test` are
// pre-batched epochs (reused each epoch).
PipelineResult RunAdmmPipeline(nn::Module& model, AdmmPruner& pruner,
                               const std::vector<nn::Batch>& train,
                               const std::vector<nn::Batch>& test,
                               const PipelineConfig& cfg);

}  // namespace hwp3d::core
