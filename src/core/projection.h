// Euclidean projection onto the blockwise sparsity set S_i (Eq. 13).
//
// S_i = { W : #nonzero blocks <= (1 - eta) * ceil(M/Tm) * ceil(N/Tn) }.
// The projection keeps the floor((1-eta) * B) blocks with the largest
// L2 norms (the tightest integer count satisfying Eq. 1, clamped to >= 1)
// and zeroes the rest; the reported threshold zeta_i is the norm
// percentile separating kept from pruned blocks (Eq. 13).
#pragma once

#include "core/block_partition.h"

namespace hwp3d::core {

struct ProjectionResult {
  BlockMask mask;           // surviving blocks
  double threshold = 0.0;   // zeta_i: L2-norm percentile used
  int64_t pruned_blocks = 0;
  int64_t kept_blocks = 0;
};

// Projects `w` in place onto S(eta) under the given block partition and
// returns the surviving-block mask. eta in [0, 1); eta = 0 is a no-op
// that returns a full mask.
ProjectionResult ProjectToBlockSparse(TensorF& w, const BlockPartition& part,
                                      double eta);

// Non-mutating variant: returns the mask that projection WOULD apply.
ProjectionResult PlanBlockSparse(const TensorF& w, const BlockPartition& part,
                                 double eta);

}  // namespace hwp3d::core
