// Blockwise partition of a 5-D conv weight tensor (Fig. 1 of the paper).
//
// A weight tensor W[M][N][Kd][Kr][Kc] is viewed as an
// ceil(M/Tm) x ceil(N/Tn) grid of blocks; block (bm, bn) covers output
// channels [bm*Tm, min(M,(bm+1)*Tm)) and input channels
// [bn*Tn, min(N,(bn+1)*Tn)) with all kernel elements. This is exactly the
// unit the FPGA loads into its weight buffer per tile iteration, so
// pruning whole blocks lets the accelerator skip the corresponding
// load + compute ("block enable" low).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace hwp3d::core {

struct BlockConfig {
  int64_t Tm = 64;  // output-channel tile
  int64_t Tn = 8;   // input-channel tile
};

// Boolean block map: true = block kept/enabled, false = pruned.
// Row-major over (bm, bn).
struct BlockMask {
  int64_t blocks_m = 0;
  int64_t blocks_n = 0;
  std::vector<uint8_t> enabled;

  int64_t num_blocks() const { return blocks_m * blocks_n; }
  bool at(int64_t bm, int64_t bn) const {
    return enabled[static_cast<size_t>(bm * blocks_n + bn)] != 0;
  }
  void set(int64_t bm, int64_t bn, bool v) {
    enabled[static_cast<size_t>(bm * blocks_n + bn)] = v ? 1 : 0;
  }
  int64_t CountEnabled() const;
  // Enabled blocks in block-column order for one bm row.
  int64_t CountEnabledInRow(int64_t bm) const;
};

class BlockPartition {
 public:
  // weight_shape must be rank 5: [M][N][Kd][Kr][Kc].
  BlockPartition(const Shape& weight_shape, BlockConfig cfg);

  int64_t blocks_m() const { return blocks_m_; }
  int64_t blocks_n() const { return blocks_n_; }
  int64_t num_blocks() const { return blocks_m_ * blocks_n_; }
  const BlockConfig& config() const { return cfg_; }

  // Channel ranges covered by a block (end exclusive). Edge blocks are
  // partial when Tm/Tn do not divide M/N.
  int64_t m_begin(int64_t bm) const { return bm * cfg_.Tm; }
  int64_t m_end(int64_t bm) const { return std::min(M_, (bm + 1) * cfg_.Tm); }
  int64_t n_begin(int64_t bn) const { return bn * cfg_.Tn; }
  int64_t n_end(int64_t bn) const { return std::min(N_, (bn + 1) * cfg_.Tn); }

  // Number of weights inside a block (kernel volume included).
  int64_t BlockParams(int64_t bm, int64_t bn) const;

  // Squared L2 norm of each block of `w` (row-major over (bm, bn)).
  std::vector<double> BlockSqNorms(const TensorF& w) const;

  // Zeroes every element of w belonging to disabled blocks.
  void ApplyMask(TensorF& w, const BlockMask& mask) const;

  // Fresh all-enabled mask.
  BlockMask FullMask() const;

  // Parameters covered by enabled blocks.
  int64_t EnabledParams(const BlockMask& mask) const;

 private:
  void CheckShape(const TensorF& w) const;

  BlockConfig cfg_;
  int64_t M_ = 0, N_ = 0, K_ = 0;  // K_ = Kd*Kr*Kc
  int64_t blocks_m_ = 0, blocks_n_ = 0;
  Shape shape_;
};

}  // namespace hwp3d::core
