#include "core/admm.h"

#include <cmath>

#include "common/error.h"
#include "tensor/tensor_ops.h"

namespace hwp3d::core {

AdmmPruner::AdmmPruner(std::vector<PruneLayerSpec> layers, AdmmConfig cfg)
    : layers_(std::move(layers)), cfg_(cfg) {
  HWP_CHECK_MSG(!layers_.empty(), "AdmmPruner needs at least one layer");
  HWP_CHECK_MSG(!cfg_.rho_schedule.empty(), "empty rho schedule");
  partitions_.reserve(layers_.size());
  for (auto& l : layers_) {
    HWP_CHECK_MSG(l.weight != nullptr, "null weight in PruneLayerSpec");
    HWP_CHECK_MSG(l.eta >= 0.0 && l.eta < 1.0,
                  l.name << ": eta out of range: " << l.eta);
    partitions_.emplace_back(l.weight->value.shape(), l.block);
  }
}

void AdmmPruner::StartRound(int round) {
  HWP_CHECK_MSG(round >= 0 && round < num_rounds(),
                "round " << round << " out of schedule");
  rho_ = cfg_.rho_schedule[static_cast<size_t>(round)];
  if (!initialized_) {
    // Z^0 = Proj(W^0), V^0 = 0. (Projecting at init rather than Z = W
    // keeps g_i(Z_i) finite from the start; the first Z-step would do
    // the same projection anyway.)
    Z_.clear();
    V_.clear();
    for (size_t i = 0; i < layers_.size(); ++i) {
      TensorF z = layers_[i].weight->value;
      ProjectToBlockSparse(z, partitions_[i], layers_[i].eta);
      Z_.push_back(std::move(z));
      V_.emplace_back(layers_[i].weight->value.shape(), 0.0f);
    }
    initialized_ = true;
  }
}

void AdmmPruner::AddProximalGradients() {
  HWP_CHECK_MSG(initialized_, "StartRound must be called first");
  for (size_t i = 0; i < layers_.size(); ++i) {
    nn::Param& p = *layers_[i].weight;
    const TensorF& z = Z_[i];
    const TensorF& v = V_[i];
    const float rho = static_cast<float>(rho_);
    for (int64_t j = 0; j < p.value.numel(); ++j) {
      p.grad[j] += rho * (p.value[j] - z[j] + v[j]);
    }
  }
}

AdmmResiduals AdmmPruner::UpdateAuxiliaries() {
  HWP_CHECK_MSG(initialized_, "StartRound must be called first");
  AdmmResiduals res;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const TensorF& w = layers_[i].weight->value;
    TensorF z_new = Add(w, V_[i]);  // W^{k+1} + V^k
    ProjectToBlockSparse(z_new, partitions_[i], layers_[i].eta);

    const double wn = std::max(1e-12, (double)FrobeniusNorm(w));
    const double primal = FrobeniusNorm(Sub(w, z_new)) / wn;
    const double dual = FrobeniusNorm(Sub(z_new, Z_[i])) / wn;
    res.primal = std::max(res.primal, primal);
    res.dual = std::max(res.dual, dual);

    // V^{k+1} = V^k + W^{k+1} - Z^{k+1}
    TensorF& v = V_[i];
    for (int64_t j = 0; j < v.numel(); ++j) {
      v[j] += w[j] - z_new[j];
    }
    Z_[i] = std::move(z_new);
  }
  res.converged = res.primal <= cfg_.epsilon && res.dual <= cfg_.epsilon;
  return res;
}

double AdmmPruner::ProximalPenalty() const {
  if (!initialized_) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < layers_.size(); ++i) {
    const TensorF& w = layers_[i].weight->value;
    double s = 0.0;
    for (int64_t j = 0; j < w.numel(); ++j) {
      const double d = static_cast<double>(w[j]) - Z_[i][j] + V_[i][j];
      s += d * d;
    }
    total += 0.5 * rho_ * s;
  }
  return total;
}

void AdmmPruner::HardPrune() {
  masks_.clear();
  masks_.reserve(layers_.size());
  for (size_t i = 0; i < layers_.size(); ++i) {
    ProjectionResult r = ProjectToBlockSparse(layers_[i].weight->value,
                                              partitions_[i], layers_[i].eta);
    masks_.push_back(std::move(r.mask));
  }
  hard_pruned_ = true;
}

void AdmmPruner::MaskGradients() {
  HWP_CHECK_MSG(hard_pruned_, "MaskGradients before HardPrune");
  for (size_t i = 0; i < layers_.size(); ++i) {
    partitions_[i].ApplyMask(layers_[i].weight->grad, masks_[i]);
  }
}

void AdmmPruner::ReapplyMasks() {
  HWP_CHECK_MSG(hard_pruned_, "ReapplyMasks before HardPrune");
  for (size_t i = 0; i < layers_.size(); ++i) {
    partitions_[i].ApplyMask(layers_[i].weight->value, masks_[i]);
  }
}

std::vector<LayerPruneStats> AdmmPruner::Stats() const {
  HWP_CHECK_MSG(hard_pruned_, "Stats before HardPrune");
  std::vector<LayerPruneStats> out;
  for (size_t i = 0; i < layers_.size(); ++i) {
    LayerPruneStats s;
    s.name = layers_[i].name;
    s.total_params = layers_[i].weight->value.numel();
    s.kept_params = partitions_[i].EnabledParams(masks_[i]);
    s.total_blocks = partitions_[i].num_blocks();
    s.kept_blocks = masks_[i].CountEnabled();
    out.push_back(s);
  }
  return out;
}

}  // namespace hwp3d::core
