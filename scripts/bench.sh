#!/usr/bin/env bash
# Build the release config and run the kernel + serving benchmarks,
# writing machine-readable summaries (BENCH_kernels.json,
# BENCH_serve.json) in the repo root.
# Usage: scripts/bench.sh [-j N] [extra bench_kernels args...]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
if [[ "${1:-}" == "-j" && -n "${2:-}" ]]; then
  JOBS="$2"
  shift 2
fi

echo "==> configure (release)"
cmake --preset release
echo "==> build bench_kernels + bench_serve"
cmake --build --preset release -j "${JOBS}" --target bench_kernels bench_serve

echo "==> run bench_kernels"
./build/bench/bench_kernels --json-out=BENCH_kernels.json "$@"

echo "==> run bench_serve"
./build/bench/bench_serve --threads "${JOBS}" --json-out=BENCH_serve.json

echo "==> wrote BENCH_kernels.json BENCH_serve.json"
