#!/usr/bin/env bash
# Build the release config and run the kernel + serving benchmarks,
# writing machine-readable summaries (BENCH_kernels.json,
# BENCH_serve.json) in the repo root.
#
# Usage: scripts/bench.sh [-j N] [--native] [--check] [extra bench_kernels args...]
#   --native  build with the release-native preset (-O3 -march=native;
#             binaries are tuned to THIS machine's ISA — don't ship them)
#   --check   after the run, compare the fresh summaries against the
#             committed baselines in bench/baselines/ and exit non-zero
#             on a >15% regression of a guarded ratio metric
#             (scripts/bench_check.py)
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
PRESET="release"
BUILD_DIR="build"
CHECK=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    -j)
      JOBS="$2"
      shift 2
      ;;
    --native)
      PRESET="release-native"
      BUILD_DIR="build-native"
      shift
      ;;
    --check)
      CHECK=1
      shift
      ;;
    *)
      break
      ;;
  esac
done

echo "==> configure (${PRESET})"
cmake --preset "${PRESET}"
echo "==> build bench_kernels + bench_serve"
cmake --build --preset "${PRESET}" -j "${JOBS}" --target bench_kernels bench_serve

echo "==> run bench_kernels"
"./${BUILD_DIR}/bench/bench_kernels" --json-out=BENCH_kernels.json "$@"

echo "==> run bench_serve"
"./${BUILD_DIR}/bench/bench_serve" --threads "${JOBS}" --json-out=BENCH_serve.json

echo "==> wrote BENCH_kernels.json BENCH_serve.json"

if [[ "${CHECK}" -eq 1 ]]; then
  echo "==> bench-check vs bench/baselines/"
  python3 scripts/bench_check.py
fi
