#!/usr/bin/env python3
"""Perf-regression guard for scripts/bench.sh --check.

Compares freshly written bench summaries (BENCH_kernels.json,
BENCH_serve.json) against the committed baselines in bench/baselines/
and exits non-zero when a guarded metric regressed by more than the
tolerance (default 15%).

Only *ratio* metrics are guarded — speedups of one configuration over
another measured in the same run (gemm-vs-naive, fast-vs-sim executor,
pruned-vs-dense). Absolute clips/s or GFLOP/s depend on the host CPU
and would make the check fail on any machine other than the one that
recorded the baseline; ratios cancel the machine out.

Usage: bench_check.py [--tolerance 0.15] [--baseline-dir bench/baselines]
                      [--fresh-dir .]
"""

import argparse
import json
import os
import sys

# (file, dotted path into the JSON, human label). All guarded metrics
# are higher-is-better ratios.
GUARDED = [
    ("BENCH_kernels.json", "train_step.speedup",
     "gemm vs naive train-step speedup"),
    ("BENCH_serve.json", "executors.fast_vs_sim",
     "fast executor vs cycle simulator"),
    ("BENCH_serve.json", "executors.pruned_vs_dense",
     "fast executor, 90% pruned vs dense"),
]


def lookup(doc, dotted):
    node = doc
    for key in dotted.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench-check: cannot read {path}: {e}", file=sys.stderr)
        return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed fractional regression (default 0.15)")
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--fresh-dir", default=".")
    args = ap.parse_args()

    checked = 0
    failures = []
    for fname, dotted, label in GUARDED:
        base_path = os.path.join(args.baseline_dir, fname)
        fresh_path = os.path.join(args.fresh_dir, fname)
        if not os.path.exists(base_path):
            print(f"bench-check: SKIP {label}: no baseline {base_path}")
            continue
        if not os.path.exists(fresh_path):
            print(f"bench-check: SKIP {label}: no fresh result {fresh_path}")
            continue
        base_doc, fresh_doc = load(base_path), load(fresh_path)
        if base_doc is None or fresh_doc is None:
            failures.append(f"{label}: unreadable JSON")
            continue
        base = lookup(base_doc, dotted)
        fresh = lookup(fresh_doc, dotted)
        if base is None:
            print(f"bench-check: SKIP {label}: {dotted} absent from baseline "
                  "(older format)")
            continue
        if fresh is None:
            failures.append(f"{label}: {dotted} missing from fresh result")
            continue
        checked += 1
        if base <= 0:
            print(f"bench-check: SKIP {label}: non-positive baseline {base}")
            continue
        ratio = fresh / base
        status = "OK"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSED"
            failures.append(
                f"{label}: {fresh:.3f} vs baseline {base:.3f} "
                f"({(1.0 - ratio) * 100.0:.1f}% worse, "
                f"tolerance {args.tolerance * 100.0:.0f}%)")
        print(f"bench-check: {status:9s} {label}: fresh {fresh:.3f} / "
              f"baseline {base:.3f} = {ratio:.3f}")

    if failures:
        print("bench-check: FAILED", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"bench-check: passed ({checked} metrics within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
