#!/usr/bin/env bash
# Full local gate: build + test the release config, then rebuild and
# re-run everything under ASan + UBSan. Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
if [[ "${1:-}" == "-j" && -n "${2:-}" ]]; then
  JOBS="$2"
fi

for preset in release sanitize; do
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "${JOBS}"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "${JOBS}"
done

echo "==> all checks passed"
