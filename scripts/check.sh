#!/usr/bin/env bash
# Full local gate: build + test the release config, then rebuild and
# re-run everything under ASan + UBSan. Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
if [[ "${1:-}" == "-j" && -n "${2:-}" ]]; then
  JOBS="$2"
fi

for preset in release sanitize; do
  echo "==> configure (${preset})"
  cmake --preset "${preset}"
  echo "==> build (${preset})"
  cmake --build --preset "${preset}" -j "${JOBS}"
  echo "==> test (${preset})"
  ctest --preset "${preset}" -j "${JOBS}"
done

# Hammer the thread-pool tests under the sanitizers: pool bugs are
# timing-dependent, so repeat until-fail to shake out races. All pool
# workers are joinable (never detached), so sanitizer runs stay clean.
echo "==> thread-pool stress (sanitize)"
ctest --preset sanitize -R 'thread_pool|conv_engine_parity' \
  --repeat until-fail:3

# Same treatment for the serving layer: the dispatcher thread, the MPMC
# queue, the promise hand-off, and the fault paths (retry, quarantine,
# watchdog kills) are all lifetime-sensitive, which is exactly what
# ASan/UBSan catch.
echo "==> serve + fault stress (sanitize)"
ctest --preset sanitize -R 'serve' --repeat until-fail:3

# ThreadSanitizer pass over the concurrent subsystems: the thread pool,
# the serving dispatcher/watchdog, and the fault-injection paths where
# the watchdog and replica lanes race for request promises. Guarded by
# a probe because not every toolchain ships a working libtsan.
echo "==> thread sanitizer (serve + pool + fault paths)"
if printf 'int main(){return 0;}' \
    | c++ -fsanitize=thread -x c++ - -o /tmp/hwp_tsan_probe 2>/dev/null \
    && /tmp/hwp_tsan_probe 2>/dev/null; then
  cmake --preset tsan
  cmake --build --preset tsan -j "${JOBS}" \
    --target serve_test serve_fault_test thread_pool_test
  ctest --preset tsan -R 'serve|thread_pool' --repeat until-fail:2
else
  echo "(ThreadSanitizer unavailable on this toolchain; skipping)"
fi

echo "==> all checks passed"
