// Domain scenario 2 — deploying the pruned model on the accelerator,
// now through the serving facade: one hwp3d::InferenceSession trains
// the tiny R(2+1)D, ADMM-prunes it blockwise, compiles it onto the
// bit-accurate Q7.8 tile simulator, and serves it from batched
// replicas; a second session reloads the same weights from a
// checkpoint and serves them dense. The comparison
//
//   float host model  vs  fixed-point accelerator (dense)
//                     vs  fixed-point accelerator (block-enable)
//
// on held-out clips — prediction agreement, accuracy, modeled cycles
// (the functional counterpart of Table IV's 2.6x claim) — is unchanged;
// the plumbing the old example hand-wired now lives behind the facade.
// Observability: --trace-out trace.json --metrics-out metrics.jsonl
// (serve.* counters/histograms join the sim.*/exec.* ones), --seed N,
// --threads N, --executor sim|fast (fast = pre-packed compiled
// executor, the serving default; sim = step-by-step cycle simulator).
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "fpga/compiled_executor.h"
#include "obs/cli.h"
#include "obs/metrics.h"
#include "report/table.h"
#include "serve/inference_session.h"

using namespace hwp3d;

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::InitFromArgs(argc, argv);
  SetLogLevel(LogLevel::Warning);
  const uint64_t seed = obs_opts.seed.value_or(19);

  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;

  // Session 1: train + ADMM-prune to 50% block sparsity, serve with
  // block-enable masks.
  std::printf("Training + ADMM pruning (a minute or two)...\n");
  auto pruned_or = InferenceSession::Builder()
                       .DataConfig(dcfg)
                       .Seed(seed)
                       .TrainEpochs(10)
                       .TrainLr(0.05f)
                       .TrainData(64, 8)
                       .EvalData(32)
                       .PruneToSparsity(0.5)
                       .AdmmRhoSchedule({0.01, 0.1})
                       .AdmmEpochsPerRound(2)
                       .RetrainEpochs(4)
                       .Tiling(fpga::Tiling{4, 4, 2, 5, 5})
                       .Replicas(2)
                       .MaxBatch(8)
                       .MaxDelayUs(1000)
                       .Build();
  if (!pruned_or.ok()) {
    std::fprintf(stderr, "pruned session: %s\n",
                 pruned_or.status().ToString().c_str());
    return 1;
  }
  InferenceSession& pruned = **pruned_or;

  // Session 2: identical weights via checkpoint round-trip (exercising
  // the Status-based save/load path), served dense — no retraining.
  const char* ckpt = "accelerator_inference.ckpt";
  if (Status s = pruned.SaveCheckpoint(ckpt); !s.ok()) {
    std::fprintf(stderr, "checkpoint save: %s\n", s.ToString().c_str());
    return 1;
  }
  auto dense_or = InferenceSession::Builder()
                      .DataConfig(dcfg)
                      .Seed(seed)
                      .FromCheckpoint(ckpt)
                      .EvalData(0)
                      .Tiling(fpga::Tiling{4, 4, 2, 5, 5})
                      .Replicas(2)
                      .MaxBatch(8)
                      .MaxDelayUs(1000)
                      .Build();
  if (!dense_or.ok()) {
    std::fprintf(stderr, "dense session: %s\n",
                 dense_or.status().ToString().c_str());
    return 1;
  }
  InferenceSession& dense = **dense_or;

  // Evaluate clip by clip on the pruned session's held-out batches.
  int total = 0, float_ok = 0, dense_ok = 0, accel_ok = 0, agree = 0;
  long long dense_cycles = 0, accel_cycles = 0;
  long long dense_loaded = 0, accel_loaded = 0;
  long long dense_skipped = 0, accel_skipped = 0;
  long long dense_macs = 0, accel_macs = 0;
  for (const nn::Batch& batch : pruned.eval_batches()) {
    const int64_t B = batch.clips.dim(0);
    // Slice the batch into clips and submit the whole wave
    // asynchronously, so the servers actually form batches.
    std::vector<TensorF> clips;
    std::vector<int> float_preds;
    for (int64_t b = 0; b < B; ++b) {
      TensorF clip(Shape{dcfg.channels, dcfg.frames, dcfg.height,
                         dcfg.width});
      for (int64_t i = 0; i < clip.numel(); ++i) {
        clip[i] = batch.clips[b * clip.numel() + i];
      }
      const TensorF float_logits = pruned.HostLogits(clip);
      int float_pred = 0;
      for (int64_t k = 1; k < float_logits.numel(); ++k) {
        if (float_logits[k] > float_logits[float_pred])
          float_pred = static_cast<int>(k);
      }
      float_preds.push_back(float_pred);
      clips.push_back(std::move(clip));
    }
    std::vector<std::future<StatusOr<serve::InferenceResult>>> dense_f,
        accel_f;
    for (const TensorF& clip : clips) {
      dense_f.push_back(dense.SubmitAsync(clip));
      accel_f.push_back(pruned.SubmitAsync(clip));
    }
    for (int64_t b = 0; b < B; ++b) {
      const auto dense_r = dense_f[static_cast<size_t>(b)].get();
      const auto accel_r = accel_f[static_cast<size_t>(b)].get();
      if (!dense_r.ok() || !accel_r.ok()) {
        std::fprintf(stderr, "submit failed: %s / %s\n",
                     dense_r.status().ToString().c_str(),
                     accel_r.status().ToString().c_str());
        return 1;
      }
      dense_cycles += dense_r->stats.modeled_cycles;
      accel_cycles += accel_r->stats.modeled_cycles;
      dense_loaded += dense_r->stats.blocks_loaded;
      accel_loaded += accel_r->stats.blocks_loaded;
      dense_skipped += dense_r->stats.blocks_skipped;
      accel_skipped += accel_r->stats.blocks_skipped;
      dense_macs += dense_r->stats.macs_executed;
      accel_macs += accel_r->stats.macs_executed;
      const int label = batch.labels[static_cast<size_t>(b)];
      ++total;
      float_ok += float_preds[static_cast<size_t>(b)] == label;
      dense_ok += dense_r->label == label;
      accel_ok += accel_r->label == label;
      agree += accel_r->label == float_preds[static_cast<size_t>(b)];
    }
  }

  report::Table table("Float model vs Q7.8 accelerator simulator");
  table.Header({"Pipeline", "Accuracy", "Agrees w/ float",
                "Modeled cycles/clip", "Blocks skipped/clip"});
  table.Row({"float (host)", report::Table::Pct((double)float_ok / total),
             "100%", "-", "-"});
  table.Row({"accelerator, dense",
             report::Table::Pct((double)dense_ok / total),
             report::Table::Pct(1.0),  // refined below if they diverge
             report::Table::Int(dense_cycles / total),
             report::Table::Int(0)});
  table.Row({"accelerator, block-enable",
             report::Table::Pct((double)accel_ok / total),
             report::Table::Pct((double)agree / total),
             report::Table::Int(accel_cycles / total),
             report::Table::Int(accel_skipped / total)});
  table.Print();

  std::printf(
      "\nblock-enable speedup on modeled cycles: %.2fx (MACs actually "
      "executed: %.2fx fewer)\n",
      (double)dense_cycles / accel_cycles,
      (double)dense_macs / accel_macs);

  // The metrics registry was fed by the same engine runs that filled
  // the per-request CompiledRunStats, so the totals must agree exactly
  // — even with the runs fanned out across replicas. Sessions pick
  // their executor at Build time (fast by default, --executor=sim to
  // force the cycle simulator); the simulator counts under sim.*, the
  // compiled executor under exec.*, and their sum is engine-agnostic.
  const auto& reg = obs::MetricsRegistry::Get();
  const fpga::ExecMode exec =
      fpga::ResolveExecMode(std::nullopt, fpga::ExecMode::kFast);
  const long long stats_loaded = dense_loaded + accel_loaded;
  const long long stats_skipped = dense_skipped + accel_skipped;
  const long long meter_loaded =
      (long long)(reg.CounterTotal("sim.blocks_loaded") +
                  reg.CounterTotal("exec.blocks_loaded"));
  const long long meter_skipped =
      (long long)(reg.CounterTotal("sim.blocks_skipped") +
                  reg.CounterTotal("exec.blocks_skipped"));
  std::printf(
      "metrics cross-check (executor: %s): blocks_loaded %lld "
      "(stats %lld), blocks_skipped %lld (stats %lld)%s\n",
      fpga::ExecModeName(exec), meter_loaded, stats_loaded, meter_skipped,
      stats_skipped,
      (meter_loaded == stats_loaded && meter_skipped == stats_skipped)
          ? " [OK]"
          : " [MISMATCH]");

  const serve::ServerStats s = pruned.Stats();
  std::printf(
      "serving stats (pruned session): %lld completed in %lld batches "
      "(mean %.1f clips/batch), latency p50 %.2f ms p95 %.2f ms p99 "
      "%.2f ms\n",
      (long long)s.completed, (long long)s.batches, s.mean_batch_size,
      s.p50_ms, s.p95_ms, s.p99_ms);

  std::remove(ckpt);
  obs::Finalize(obs_opts);
  return 0;
}
