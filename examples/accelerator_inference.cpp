// Domain scenario 2 — deploying the pruned model on the accelerator:
// trains the tiny R(2+1)D, ADMM-prunes it blockwise, compiles it onto
// the bit-accurate Q7.8 tile simulator (BN folded into the
// post-processing unit, residual shortcuts through the shortcut port,
// block-enable masks attached), and compares
//
//   float host model  vs  fixed-point accelerator (dense)
//                     vs  fixed-point accelerator (block-enable)
//
// on held-out clips: prediction agreement, accuracy, and modeled cycles
// (the functional counterpart of Table IV's 2.6x claim).
// Observability: --trace-out trace.json --metrics-out metrics.jsonl
// emit a Chrome trace (one span per conv layer run) and JSONL metrics
// whose sim.* counters match the accumulated TiledConvStats exactly.
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "data/synthetic_video.h"
#include "fpga/model_compiler.h"
#include "models/tiny_r2plus1d.h"
#include "obs/cli.h"
#include "obs/metrics.h"
#include "report/table.h"

using namespace hwp3d;

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::InitFromArgs(argc, argv);
  SetLogLevel(LogLevel::Warning);
  Rng rng(19);

  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(64, 8, rng);
  const auto test_batches = dataset.MakeBatches(32, 8, rng);

  models::TinyR2Plus1dConfig mcfg;
  mcfg.num_classes = dcfg.num_classes;
  mcfg.stem_channels = 4;
  mcfg.stage1_channels = 8;
  mcfg.stage2_channels = 8;
  models::TinyR2Plus1d model(mcfg, rng);

  // Train, then ADMM-prune to 50% block sparsity.
  std::printf("Training + ADMM pruning (a minute or two)...\n");
  nn::Sgd opt(model.Params(),
              {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 0.0f});
  for (int e = 0; e < 10; ++e) nn::TrainEpoch(model, opt, train, {});

  std::vector<core::PruneLayerSpec> specs;
  for (nn::Conv3d* c : model.PrunableConvs()) {
    specs.push_back({&c->weight(), {4, 4}, 0.5, c->name()});
  }
  core::AdmmConfig admm_cfg;
  admm_cfg.rho_schedule = {0.01, 0.1};
  core::AdmmPruner pruner(specs, admm_cfg);
  core::PipelineConfig pcfg;
  pcfg.admm = admm_cfg;
  pcfg.epochs_per_round = 2;
  pcfg.retrain_epochs = 4;
  pcfg.admm_lr = 0.02f;
  pcfg.retrain_lr = 0.02f;
  core::RunAdmmPipeline(model, pruner, train, test_batches, pcfg);

  // Compile twice: dense (no block-enable) and with the pruner's masks.
  fpga::CompiledModelOptions dense_opts;
  dense_opts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  fpga::CompiledTinyR2Plus1d dense(model, dense_opts);

  fpga::CompiledModelOptions pruned_opts = dense_opts;
  pruned_opts.masks = pruner.masks();
  fpga::CompiledTinyR2Plus1d accel(model, pruned_opts);

  // Evaluate clip by clip.
  int total = 0, float_ok = 0, dense_ok = 0, accel_ok = 0, agree = 0;
  fpga::CompiledRunStats dense_stats, accel_stats;
  for (const nn::Batch& batch : test_batches) {
    const int64_t B = batch.clips.dim(0);
    const TensorF logits = model.Forward(batch.clips, false);
    for (int64_t b = 0; b < B; ++b) {
      // Slice clip b out of the batch.
      TensorF clip(Shape{dcfg.channels, dcfg.frames, dcfg.height,
                         dcfg.width});
      for (int64_t i = 0; i < clip.numel(); ++i) {
        clip[i] = batch.clips[b * clip.numel() + i];
      }
      int float_pred = 0;
      for (int64_t k = 1; k < logits.dim(1); ++k) {
        if (logits(b, k) > logits(b, float_pred))
          float_pred = static_cast<int>(k);
      }
      const int dense_pred = dense.Classify(clip, &dense_stats);
      const int accel_pred = accel.Classify(clip, &accel_stats);
      const int label = batch.labels[static_cast<size_t>(b)];
      ++total;
      float_ok += float_pred == label;
      dense_ok += dense_pred == label;
      accel_ok += accel_pred == label;
      agree += accel_pred == float_pred;
    }
  }

  report::Table table("Float model vs Q7.8 accelerator simulator");
  table.Header({"Pipeline", "Accuracy", "Agrees w/ float",
                "Modeled cycles/clip", "Blocks skipped/clip"});
  table.Row({"float (host)", report::Table::Pct((double)float_ok / total),
             "100%", "-", "-"});
  table.Row({"accelerator, dense",
             report::Table::Pct((double)dense_ok / total),
             report::Table::Pct(1.0),  // refined below if they diverge
             report::Table::Int(dense_stats.modeled_cycles / total),
             report::Table::Int(0)});
  table.Row({"accelerator, block-enable",
             report::Table::Pct((double)accel_ok / total),
             report::Table::Pct((double)agree / total),
             report::Table::Int(accel_stats.modeled_cycles / total),
             report::Table::Int(accel_stats.blocks_skipped / total)});
  table.Print();

  std::printf(
      "\nblock-enable speedup on modeled cycles: %.2fx (MACs actually "
      "executed: %.2fx fewer)\n",
      (double)dense_stats.modeled_cycles / accel_stats.modeled_cycles,
      (double)dense_stats.macs_executed / accel_stats.macs_executed);

  // The metrics registry was fed by the same TiledConvSim::Run calls
  // that filled the CompiledRunStats, so the totals must agree exactly.
  const auto& reg = obs::MetricsRegistry::Get();
  const long long stats_loaded =
      dense_stats.blocks_loaded + accel_stats.blocks_loaded;
  const long long stats_skipped =
      dense_stats.blocks_skipped + accel_stats.blocks_skipped;
  std::printf(
      "metrics cross-check: sim.blocks_loaded %lld (stats %lld), "
      "sim.blocks_skipped %lld (stats %lld)%s\n",
      (long long)reg.CounterTotal("sim.blocks_loaded"), stats_loaded,
      (long long)reg.CounterTotal("sim.blocks_skipped"), stats_skipped,
      (reg.CounterTotal("sim.blocks_loaded") == stats_loaded &&
       reg.CounterTotal("sim.blocks_skipped") == stats_skipped)
          ? " [OK]"
          : " [MISMATCH]");

  obs::Finalize(obs_opts);
  return 0;
}
