// Quickstart: the library in ~80 lines.
//
//  1. generate a synthetic motion-classification dataset,
//  2. train a tiny R(2+1)D video classifier,
//  3. blockwise-prune one layer with the Euclidean projection (Eq. 13),
//  4. estimate the FPGA latency effect of the resulting block-enable map.
//
// Build & run:   ./build/examples/quickstart
// Observability: --trace-out trace.json --metrics-out metrics.jsonl
#include <cstdio>

#include "common/rng.h"
#include "core/projection.h"
#include "data/synthetic_video.h"
#include "fpga/perf_model.h"
#include "models/tiny_r2plus1d.h"
#include "nn/optimizer.h"
#include "nn/trainer.h"
#include "obs/cli.h"

using namespace hwp3d;

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::InitFromArgs(argc, argv);
  Rng rng(obs_opts.seed.value_or(42));

  // 1. Data: 4 motion classes (right/left/down/up movers) — classes are
  //    indistinguishable in any single frame, so the model must learn
  //    temporal structure.
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(/*count=*/48, /*batch_size=*/8, rng);
  const auto test = dataset.MakeBatches(24, 8, rng);

  // 2. Model + a few epochs of SGD.
  models::TinyR2Plus1dConfig mcfg;
  mcfg.num_classes = dcfg.num_classes;
  mcfg.stem_channels = 4;
  mcfg.stage1_channels = 8;
  mcfg.stage2_channels = 8;
  models::TinyR2Plus1d model(mcfg, rng);

  nn::Sgd opt(model.Params(),
              {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 0.0f});
  for (int epoch = 0; epoch < 5; ++epoch) {
    const nn::EpochStats stats = nn::TrainEpoch(model, opt, train, {});
    std::printf("epoch %d  loss %.3f  train-acc %.0f%%\n", epoch,
                stats.mean_loss, stats.accuracy * 100);
  }
  std::printf("test accuracy: %.0f%%\n",
              nn::Evaluate(model, test).accuracy * 100);

  // 3. Blockwise pruning of one conv: divide its weights into Tm x Tn
  //    kernel blocks (Fig. 1) and zero the smallest-norm blocks so that
  //    Eq. 1 holds with eta = 0.5.
  nn::Conv3d* conv = model.PrunableConvs()[0];
  core::BlockPartition part(conv->weight().value.shape(), {4, 4});
  const core::ProjectionResult proj =
      core::ProjectToBlockSparse(conv->weight().value, part, 0.5);
  std::printf("\npruned %lld of %lld blocks of %s (threshold %.3f)\n",
              (long long)proj.pruned_blocks, (long long)part.num_blocks(),
              conv->name().c_str(), proj.threshold);

  // 4. The same mask, seen by the FPGA cycle model: every pruned block
  //    is a skipped load + compute on the accelerator.
  models::ConvLayerSpec layer;
  layer.M = conv->weight().value.dim(0);
  layer.N = conv->weight().value.dim(1);
  layer.Kd = conv->weight().value.dim(2);
  layer.Kr = conv->weight().value.dim(3);
  layer.Kc = conv->weight().value.dim(4);
  layer.D = 6;
  layer.R = layer.C = 10;
  fpga::PerfModel pm(fpga::Tiling{4, 4, 2, 5, 5}, fpga::Ports{});
  const auto dense = pm.LayerCycles(layer);
  const auto pruned = pm.LayerCycles(layer, &proj.mask);
  std::printf("layer cycles: dense %lld -> pruned %lld (%.2fx)\n",
              (long long)dense.cycles, (long long)pruned.cycles,
              (double)dense.cycles / pruned.cycles);

  obs::Finalize(obs_opts);
  return 0;
}
