// Domain scenario 1 — edge video analytics: take a trained video action
// classifier and compress it for an FPGA deployment with Algorithm 1:
// multi-rho ADMM training, hard pruning, masked retraining. Prints the
// accuracy trajectory and the achieved per-layer block sparsity.
//
// This is the miniature of the paper's Section V pipeline (their
// schedule: 4 rounds x 50 epochs, rho in {1e-4..1e-1}, 100 retrain
// epochs on UCF101; ours is scaled to the synthetic dataset).
// Observability: --trace-out trace.json --metrics-out metrics.jsonl
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "data/synthetic_video.h"
#include "models/tiny_r2plus1d.h"
#include "obs/cli.h"
#include "report/table.h"

using namespace hwp3d;

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::InitFromArgs(argc, argv);
  SetLogLevel(LogLevel::Warning);
  Rng rng(obs_opts.seed.value_or(7));

  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 6;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(72, 8, rng);
  const auto test = dataset.MakeBatches(36, 8, rng);

  models::TinyR2Plus1dConfig mcfg;
  mcfg.num_classes = dcfg.num_classes;
  mcfg.stem_channels = 4;
  mcfg.stage1_channels = 12;
  mcfg.stage2_channels = 12;
  models::TinyR2Plus1d model(mcfg, rng);

  // Pretrain the dense model (warmup + cosine, as the paper's tricks).
  std::printf("Pretraining dense model...\n");
  nn::Sgd opt(model.Params(),
              {.lr = 0.06f, .momentum = 0.9f, .weight_decay = 0.0f});
  nn::WarmupCosineLr schedule(0.06f, 2, 14);
  for (int e = 0; e < 14; ++e) {
    opt.set_lr(schedule.LrAt(e));
    nn::TrainEpoch(model, opt, train, {});
  }
  const double dense_acc = nn::Evaluate(model, test).accuracy;
  std::printf("dense test accuracy: %.1f%%\n\n", dense_acc * 100);

  // Algorithm 1: prune every residual-stage conv to 70% block sparsity.
  std::vector<core::PruneLayerSpec> specs;
  for (nn::Conv3d* c : model.PrunableConvs()) {
    specs.push_back({&c->weight(), {4, 4}, 0.7, c->name()});
  }
  core::AdmmConfig admm_cfg;
  admm_cfg.rho_schedule = {0.003, 0.03, 0.3};  // multi-rho rounds
  core::AdmmPruner pruner(specs, admm_cfg);

  core::PipelineConfig cfg;
  cfg.admm = admm_cfg;
  cfg.epochs_per_round = 3;
  cfg.retrain_epochs = 10;
  cfg.admm_lr = 0.02f;
  cfg.retrain_lr = 0.02f;
  cfg.admm_label_smoothing = 0.1f;
  cfg.on_epoch = [](int epoch, const char* phase,
                    const nn::EpochStats& stats) {
    std::printf("  [%s] epoch %2d  loss %.3f  acc %.0f%%\n", phase, epoch,
                stats.mean_loss, stats.accuracy * 100);
  };
  const core::PipelineResult result =
      core::RunAdmmPipeline(model, pruner, train, test, cfg);

  report::Table table("Pruning outcome");
  table.Header({"Layer", "Blocks", "Kept", "Sparsity", "Rate"});
  for (const auto& s : result.layer_stats) {
    table.Row({s.name, report::Table::Int(s.total_blocks),
               report::Table::Int(s.kept_blocks),
               report::Table::Pct(s.achieved_sparsity()),
               report::Table::Ratio(s.prune_rate(), 1)});
  }
  table.Print();

  std::printf(
      "\naccuracy: dense %.1f%% -> hard-pruned %.1f%% -> retrained %.1f%%\n",
      dense_acc * 100, result.hard_prune_test_acc * 100,
      result.retrained_test_acc * 100);
  std::printf("(paper at full scale: 89.0%% -> 88.66%% after retraining)\n");

  obs::Finalize(obs_opts);
  return 0;
}
