// Domain scenario 3 — hardware design-space exploration: given a target
// board and the full-size R(2+1)D + C3D workloads, search the tiling
// space under the Eq. 18 BRAM and DSP constraints, compare the best
// designs on latency / power / efficiency, and show how the paper's
// pruning targets change the ranking.
//
// Usage: design_explorer [--device zcu102|zc706|vc709|vus440]
//                        [--trace-out trace.json] [--metrics-out m.jsonl]
#include <cstdio>

#include "fpga/device.h"
#include "fpga/dse.h"
#include "fpga/scheduler.h"
#include "obs/cli.h"
#include "report/table.h"

using namespace hwp3d;

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::InitFromArgs(argc, argv);
  fpga::FpgaDevice dev = fpga::Zcu102();
  if (!obs_opts.device.empty()) {
    StatusOr<fpga::FpgaDevice> named = fpga::DeviceByName(obs_opts.device);
    if (!named.ok()) {
      std::fprintf(stderr, "%s\n", named.status().ToString().c_str());
      return 1;
    }
    dev = std::move(named).value();
  }
  std::printf("Target device: %s (%lld DSP, %lld BRAM36)\n\n",
              dev.name.c_str(), (long long)dev.dsp, (long long)dev.bram36);

  const models::NetworkSpec c3d = models::MakeC3DSpec();
  models::NetworkSpec r2p1d = models::MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(r2p1d);

  // Explore dense first: the bitstream must fit both networks.
  fpga::DseOptions opt;
  opt.top_k = 5;
  const fpga::DseResult dse =
      fpga::ExploreDesignSpace({&r2p1d, &c3d}, {}, dev, opt);
  std::printf("explored %zu tilings, %zu infeasible on this device\n",
              dse.evaluated, dse.infeasible);

  report::Table table("Top designs (dense workload), then pruned effect");
  table.Header({"Tiling", "DSP", "Dense R(2+1)D (ms)", "Pruned (ms)",
                "Speedup", "Power (W)", "GOPS/W pruned"});
  for (const auto& cand : dse.best) {
    fpga::NetworkScheduler sched(cand.tiling, opt.ports, dev, 150.0);
    const fpga::SpecMasks masks =
        fpga::GenerateSpecMasks(r2p1d, cand.tiling.block());
    const fpga::NetworkPerfReport dense = sched.Evaluate(r2p1d);
    const fpga::NetworkPerfReport pruned = sched.Evaluate(r2p1d, &masks);
    table.Row({cand.tiling.ToString(), report::Table::Int(cand.usage.dsp),
               report::Table::Num(dense.latency_ms, 0),
               report::Table::Num(pruned.latency_ms, 0),
               report::Table::Ratio(dense.latency_ms / pruned.latency_ms, 2),
               report::Table::Num(pruned.power_w, 1),
               report::Table::Num(pruned.power_eff_gops_w, 1)});
  }
  table.Print();

  // Detail the winner's per-stage schedule.
  if (!dse.best.empty()) {
    const fpga::Tiling best = dse.best.front().tiling;
    fpga::NetworkScheduler sched(best, opt.ports, dev, 150.0);
    const fpga::SpecMasks masks = fpga::GenerateSpecMasks(r2p1d, best.block());
    const fpga::NetworkPerfReport r = sched.Evaluate(r2p1d, &masks);
    report::Table stage("Winner per-stage schedule (pruned R(2+1)D)");
    stage.Header({"Stage", "ms", "Blocks loaded", "Blocks skipped"});
    std::string group;
    double ms = 0;
    int64_t loaded = 0, skipped = 0;
    for (size_t i = 0; i <= r.layers.size(); ++i) {
      if (i == r.layers.size() || r.layers[i].group != group) {
        if (!group.empty()) {
          stage.Row({group, report::Table::Num(ms, 1),
                     report::Table::Int(loaded),
                     report::Table::Int(skipped)});
        }
        if (i == r.layers.size()) break;
        group = r.layers[i].group;
        ms = 0;
        loaded = skipped = 0;
      }
      ms += r.layers[i].ms;
      loaded += r.layers[i].blocks_loaded;
      skipped += r.layers[i].blocks_skipped;
    }
    stage.Print();
  }

  obs::Finalize(obs_opts);
  return 0;
}
