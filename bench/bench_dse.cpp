// Design-space exploration (Section IV-B): enumerates tiling candidates
// under the ZCU102's Eq. 18 BRAM and DSP bounds and ranks them by the
// modeled latency over BOTH networks the bitstream must serve — the
// analysis that justifies the paper's (64, x, 4, 14, 14) design points.
#include <cstdio>

#include "fpga/dse.h"
#include "report/table.h"

using namespace hwp3d;

int main() {
  const models::NetworkSpec r2p1d = models::MakeR2Plus1DSpec();
  const models::NetworkSpec c3d = models::MakeC3DSpec();
  const fpga::FpgaDevice dev = fpga::Zcu102();

  fpga::DseOptions opt;
  opt.top_k = 12;
  const fpga::DseResult result =
      fpga::ExploreDesignSpace({&r2p1d, &c3d}, {}, dev, opt);

  std::printf("Explored %zu candidates, %zu infeasible on %s.\n\n",
              result.evaluated, result.infeasible, dev.name.c_str());

  report::Table table("DSE — top designs by combined R(2+1)D + C3D latency");
  table.Header({"Rank", "(Tm,Tn,Td,Tr,Tc)", "Latency (ms)", "DSP",
                "BRAM36 (Eq.18)", "LUT"});
  int rank = 1;
  for (const auto& c : result.best) {
    table.Row({report::Table::Int(rank++), c.tiling.ToString(),
               report::Table::Num(c.latency_ms, 0),
               report::Table::Int(c.usage.dsp),
               report::Table::Int(c.usage.bram36_eq18),
               report::Table::Int(c.usage.lut)});
  }
  table.Print();

  // Where do the paper's design points rank?
  fpga::ResourceModel resources;
  report::Table paper_pts("Paper design points under the same model");
  paper_pts.Header({"Design", "Latency (ms)", "DSP", "Feasible"});
  for (const fpga::Tiling& t :
       {fpga::PaperTilingTn8(), fpga::PaperTilingTn16()}) {
    fpga::PerfModel pm(t, opt.ports);
    const int64_t cycles = pm.NetworkCycles(r2p1d).cycles +
                           pm.NetworkCycles(c3d).cycles;
    const fpga::ResourceUsage usage =
        resources.Estimate(t, {&r2p1d, &c3d});
    paper_pts.Row({t.ToString(),
                   report::Table::Num(cycles / (opt.freq_mhz * 1e3), 0),
                   report::Table::Int(usage.dsp),
                   resources.Feasible(usage, dev) ? "yes" : "no"});
  }
  paper_pts.Print();
  return 0;
}
