// Reproduces Table II: parameters and operations per residual block
// before/after blockwise ADMM pruning with (Tm, Tn) = (64, 8),
// eta = 90% on conv2_x and 80% on conv3_x.
//
// The surviving-block masks come from the real projection (Eq. 13) run
// on materialized weights, so edge-block effects are included — that is
// why the paper's rates are 9.85x/4.85x rather than exactly 10x/5x, and
// ours deviate the same way.
//
// Also prints the Fig. 1 block map of one conv2_x layer: the Tm x Tn
// grid with pruned blocks marked — the paper's Figure 1 in ASCII.
#include <cstdio>
#include <map>
#include <string>

#include "core/block_partition.h"
#include "fpga/spec_masks.h"
#include "models/network_spec.h"
#include "report/table.h"

using namespace hwp3d;

namespace {

struct GroupAgg {
  double params_before = 0.0, params_after = 0.0;
  double ops_before = 0.0, ops_after = 0.0;
  bool pruned = false;
};

std::string RateCell(double before, double after, bool pruned) {
  if (!pruned) return "N/A";
  return report::Table::Ratio(before / after, 2);
}

}  // namespace

int main() {
  models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(spec);
  const core::BlockConfig block{64, 8};
  const fpga::SpecMasks masks = fpga::GenerateSpecMasks(spec, block);

  std::map<std::string, GroupAgg> agg;
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    const auto& l = spec.layers[i];
    GroupAgg& g = agg[l.group];
    core::BlockPartition part(Shape{l.M, l.N, l.Kd, l.Kr, l.Kc}, block);
    const double kept =
        static_cast<double>(part.EnabledParams(masks.storage[i]));
    g.params_before += static_cast<double>(l.params());
    g.params_after += kept;
    g.ops_before += l.ops();
    g.ops_after += 2.0 * kept * static_cast<double>(l.D * l.R * l.C);
    if (l.eta > 0.0) g.pruned = true;
  }

  // Paper's Table II reference values.
  const std::map<std::string, std::array<double, 4>> paper = {
      // params_before(M), rate, ops_before(G), rate (N/A encoded as 0)
      {"conv1", {0.015, 0.0, 1.53, 0.0}},
      {"conv2_x", {0.444, 9.85, 44.39, 10.19}},
      {"conv3_x", {1.56, 4.85, 21.21, 4.89}},
      {"conv4_x", {6.23, 0.0, 10.61, 0.0}},
      {"conv5_x", {24.92, 0.0, 5.31, 0.0}},
  };

  report::Table table(
      "Table II — ADMM blockwise pruning results, (Tm,Tn)=(64,8)");
  table.Header({"Block", "Params before (M)", "Params rate (paper)",
                "Params rate (ours)", "Ops before (G)", "Ops rate (paper)",
                "Ops rate (ours)"});
  GroupAgg total;
  for (const std::string& g : spec.Groups()) {
    const GroupAgg& a = agg[g];
    total.params_before += a.params_before;
    total.params_after += a.params_after;
    total.ops_before += a.ops_before;
    total.ops_after += a.ops_after;
    const auto& p = paper.at(g);
    table.Row({g, report::Table::Num(a.params_before / 1e6, 3),
               p[1] > 0 ? report::Table::Ratio(p[1], 2) : "N/A",
               RateCell(a.params_before, a.params_after, a.pruned),
               report::Table::Num(a.ops_before / 1e9, 2),
               p[3] > 0 ? report::Table::Ratio(p[3], 2) : "N/A",
               RateCell(a.ops_before, a.ops_after, a.pruned)});
  }
  table.Rule();
  table.Row({"Total", report::Table::Num(total.params_before / 1e6, 2),
             "1.05x", report::Table::Ratio(
                          total.params_before / total.params_after, 2),
             report::Table::Num(total.ops_before / 1e9, 2), "3.18x",
             report::Table::Ratio(total.ops_before / total.ops_after, 2)});
  table.Print();

  // ---- Fig. 1: block map of the first conv2_x spatial layer ----
  for (size_t i = 0; i < spec.layers.size(); ++i) {
    const auto& l = spec.layers[i];
    if (l.name != "conv2_x_1a_spatial") continue;
    const core::BlockMask& mask = masks.storage[i];
    std::printf(
        "\nFig. 1 — blockwise pruning of %s (M=%lld, N=%lld, blocks "
        "%lldx%lld, '#' kept / '.' pruned):\n",
        l.name.c_str(), (long long)l.M, (long long)l.N,
        (long long)mask.blocks_m, (long long)mask.blocks_n);
    for (int64_t bm = 0; bm < mask.blocks_m; ++bm) {
      std::printf("  ");
      for (int64_t bn = 0; bn < mask.blocks_n; ++bn) {
        std::printf("%c", mask.at(bm, bn) ? '#' : '.');
      }
      std::printf("\n");
    }
  }
  return 0;
}
