// Reproduces Table IV: the end-to-end performance comparison.
//
//  * Published comparator rows ([13], [18] x2, GPU, CPU) are quoted from
//    the paper — they are context, not simulated.
//  * "Ours" rows are produced by the cycle-accurate latency model
//    (Eqs. 19-25 + block-enable), the resource model and the calibrated
//    power model, for C3D (unpruned) and R(2+1)D (pruned + unpruned in
//    brackets) at both tilings, at 150 MHz on the ZCU102.
//
// The closing summary checks the paper's three headline ratios: ~2.6x
// pruned-vs-unpruned speedup, ~2.3x speedup vs [13], ~2.3x power
// efficiency vs [13].
#include <cstdio>

#include "common/strings.h"
#include "fpga/scheduler.h"
#include "report/table.h"

using namespace hwp3d;

namespace {

std::string Gops(double v) { return report::Table::Num(v, 1); }

}  // namespace

int main() {
  const fpga::FpgaDevice dev = fpga::Zcu102();
  const models::NetworkSpec c3d = models::MakeC3DSpec();
  models::NetworkSpec r2p1d = models::MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(r2p1d);

  report::Table table("Table IV — performance comparison");
  table.Header({"Impl", "Network", "Device", "MHz", "Precision", "Power (W)",
                "Throughput (GOPS)", "GOPS/W", "DSP", "GOPS/DSP",
                "Latency (ms)"});

  for (const auto& row : fpga::PublishedComparators()) {
    table.Row({row.label + " [published]", row.network, row.device,
               report::Table::Num(row.freq_mhz, 0), row.precision,
               row.power_w > 0 ? report::Table::Num(row.power_w, 1) : "-",
               Gops(row.throughput_gops),
               row.power_w > 0
                   ? report::Table::Num(row.throughput_gops / row.power_w, 1)
                   : "-",
               row.dsp_used > 0 ? report::Table::Int(row.dsp_used) : "-",
               row.dsp_used > 0
                   ? report::Table::Num(row.throughput_gops / row.dsp_used, 3)
                   : "-",
               report::Table::Num(row.latency_ms, 1)});
  }
  table.Rule();

  struct OursRow {
    const char* label;
    fpga::Tiling tiling;
  };
  const OursRow designs[] = {{"ours (Tn=8)", fpga::PaperTilingTn8()},
                             {"ours (Tn=16)", fpga::PaperTilingTn16()}};

  double pruned_ms_tn8 = 0.0, unpruned_ms_tn8 = 0.0, poweff_tn8 = 0.0;
  for (const OursRow& d : designs) {
    fpga::NetworkScheduler sched(d.tiling, fpga::Ports{}, dev, 150.0);

    // C3D, unpruned (the paper's own-board C3D comparison rows). The
    // paper counts C3D work as 1 op/MAC to match [13]'s convention.
    const fpga::NetworkPerfReport rc =
        sched.Evaluate(c3d, nullptr, std::optional<double>(c3d.TotalMacs()));
    table.Row({d.label, "C3D", dev.name, "150", "16-bit fixed",
               report::Table::Num(rc.power_w, 1), Gops(rc.throughput_gops),
               report::Table::Num(rc.power_eff_gops_w, 1),
               StrFormat("%lld(%d%%)", (long long)rc.dsp_used,
                         (int)(rc.dsp_utilization * 100)),
               report::Table::Num(rc.dsp_eff_gops_dsp, 3),
               report::Table::Num(rc.latency_ms, 0)});

    // R(2+1)D pruned (with unpruned latency in brackets, as the paper).
    const fpga::SpecMasks masks =
        fpga::GenerateSpecMasks(r2p1d, d.tiling.block());
    const fpga::NetworkPerfReport rp = sched.Evaluate(r2p1d, &masks);
    const fpga::NetworkPerfReport ru = sched.Evaluate(r2p1d);
    table.Row({d.label, "R(2+1)D pruned", dev.name, "150", "16-bit fixed",
               report::Table::Num(rp.power_w, 1), Gops(rp.throughput_gops),
               report::Table::Num(rp.power_eff_gops_w, 1),
               StrFormat("%lld(%d%%)", (long long)rp.dsp_used,
                         (int)(rp.dsp_utilization * 100)),
               report::Table::Num(rp.dsp_eff_gops_dsp, 3),
               StrFormat("%.0f (%.0f)", rp.latency_ms, ru.latency_ms)});
    if (d.tiling.Tn == 8) {
      pruned_ms_tn8 = rp.latency_ms;
      unpruned_ms_tn8 = ru.latency_ms;
      poweff_tn8 = rp.power_eff_gops_w;
    }
  }
  table.Print();

  // ---- Headline claims ----
  const auto published = fpga::PublishedComparators();
  const double f_c3d_latency = published[0].latency_ms;       // 542.5 ms
  const double f_c3d_poweff = published[0].throughput_gops /
                              published[0].power_w;            // ~7.3

  report::Table claims("Headline claims — paper vs reproduced");
  claims.Header({"Claim", "Paper", "Ours"});
  claims.Row({"Pruned vs unpruned R(2+1)D speedup", "2.6x-2.7x",
              report::Table::Ratio(unpruned_ms_tn8 / pruned_ms_tn8, 2)});
  claims.Row({"Pruned R(2+1)D vs F-C3D [13] latency", "2.3x (386 vs 542.5)",
              report::Table::Ratio(f_c3d_latency / pruned_ms_tn8, 2)});
  claims.Row({"Power efficiency vs F-C3D [13]", "2.3x (12.5 vs ~7.3 GOPS/W)",
              report::Table::Ratio(poweff_tn8 / f_c3d_poweff, 2)});
  claims.Print();

  // ---- Fig. 2 style trace: where the cycles go, pruned vs unpruned ----
  {
    fpga::NetworkScheduler sched(fpga::PaperTilingTn8(), fpga::Ports{}, dev,
                                 150.0);
    const fpga::SpecMasks masks = fpga::GenerateSpecMasks(r2p1d, {64, 8});
    const fpga::NetworkPerfReport rp = sched.Evaluate(r2p1d, &masks);
    const fpga::NetworkPerfReport ru = sched.Evaluate(r2p1d);
    report::Table trace(
        "Per-stage latency breakdown, Tn=8 (block-enable effect, Fig. 2)");
    trace.Header({"Stage", "Unpruned (ms)", "Pruned (ms)", "Blocks skipped"});
    std::string group;
    double u_ms = 0, p_ms = 0;
    int64_t skipped = 0;
    for (size_t i = 0; i <= rp.layers.size(); ++i) {
      if (i == rp.layers.size() || rp.layers[i].group != group) {
        if (!group.empty()) {
          trace.Row({group, report::Table::Num(u_ms, 1),
                     report::Table::Num(p_ms, 1),
                     report::Table::Int(skipped)});
        }
        if (i == rp.layers.size()) break;
        group = rp.layers[i].group;
        u_ms = p_ms = 0;
        skipped = 0;
      }
      u_ms += ru.layers[i].ms;
      p_ms += rp.layers[i].ms;
      skipped += rp.layers[i].blocks_skipped;
    }
    trace.Print();
  }
  return 0;
}
