// Reproduces Table I: the R(2+1)D model architecture — layer groups,
// output sizes, kernel/filter shapes (including the factorized
// mid-channel counts) — plus the per-group parameter totals the
// architecture implies. Also prints the C3D baseline for reference.
#include <cstdio>

#include "common/strings.h"
#include "models/network_spec.h"
#include "report/table.h"

using namespace hwp3d;

int main() {
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();

  report::Table table("Table I — R(2+1)D model architecture (reproduced)");
  table.Header({"Layer", "Group", "Output (DxRxC)", "Kernel (Kd x Kr x Kc)",
                "Filters M", "In N", "Stride", "Params"});
  std::string last_group;
  for (const auto& l : spec.layers) {
    if (!last_group.empty() && l.group != last_group) table.Rule();
    last_group = l.group;
    table.Row({l.name, l.group,
               StrFormat("%lldx%lldx%lld", (long long)l.D, (long long)l.R,
                         (long long)l.C),
               StrFormat("%lldx%lldx%lld", (long long)l.Kd, (long long)l.Kr,
                         (long long)l.Kc),
               report::Table::Int(l.M), report::Table::Int(l.N),
               StrFormat("(%lld,%lld,%lld)", (long long)l.Sd, (long long)l.Sr,
                         (long long)l.Sc),
               HumanCount(static_cast<double>(l.params()))});
  }
  table.Print();

  report::Table summary("Table I summary — paper vs reproduced");
  summary.Header({"Quantity", "Paper", "Ours"});
  summary.Row({"CONV layers (2 + 4x8 + shortcuts)", "40 (counts shortcut as 2)",
               report::Table::Int(static_cast<int64_t>(spec.layers.size())) +
                   " (shortcut as 1 conv)"});
  summary.Row({"conv1 output", "16x56x56", "16x56x56"});
  summary.Row({"conv5_x output", "2x7x7", "2x7x7"});
  summary.Row({"mid-channels conv2_x", "144", "144"});
  summary.Row({"mid-channels conv3_x (first/rest)", "230 / 288", "230 / 288"});
  summary.Row({"mid-channels conv4_x (first/rest)", "460 / 576", "460 / 576"});
  summary.Row({"mid-channels conv5_x (first/rest)", "921 / 1152",
               "921 / 1152"});
  summary.Row({"Total CONV params", "33.22M (incl. FC/BN)",
               HumanCount(spec.TotalParams())});
  summary.Print();

  const models::NetworkSpec c3d = models::MakeC3DSpec();
  report::Table ct("C3D baseline (for Table IV comparisons)");
  ct.Header({"Layer", "Output", "Kernel", "M", "N", "Params", "GMACs"});
  for (const auto& l : c3d.layers) {
    ct.Row({l.name,
            StrFormat("%lldx%lldx%lld", (long long)l.D, (long long)l.R,
                      (long long)l.C),
            "3x3x3", report::Table::Int(l.M), report::Table::Int(l.N),
            HumanCount(static_cast<double>(l.params())),
            report::Table::Num(l.macs() / 1e9, 2)});
  }
  ct.Row({"total", "", "", "", "", HumanCount(c3d.TotalParams()),
          report::Table::Num(c3d.TotalMacs() / 1e9, 1)});
  ct.Print();
  return 0;
}
