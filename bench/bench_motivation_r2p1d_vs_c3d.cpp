// Reproduces the paper's MOTIVATION for choosing R(2+1)D (Sections I-II):
// the factorized (2+1)D network reaches comparable-or-better accuracy
// than standard C3D with fewer parameters, because the extra
// nonlinearity between the spatial and temporal convolutions increases
// representational power per parameter. Trains both miniatures on the
// same synthetic motion task with matched stage widths and reports
// params / accuracy / full-size analytic cost.
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "data/synthetic_video.h"
#include "models/network_spec.h"
#include "models/tiny_c3d.h"
#include "models/tiny_r2plus1d.h"
#include "nn/optimizer.h"
#include "report/table.h"

using namespace hwp3d;

namespace {

int64_t TotalParams(nn::Module& m) {
  int64_t total = 0;
  for (nn::Param* p : m.Params()) total += p->value.numel();
  return total;
}

template <typename Model>
double Train(Model& model, const std::vector<nn::Batch>& train,
             const std::vector<nn::Batch>& test, int epochs) {
  nn::Sgd opt(model.Params(),
              {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 0.0f});
  nn::WarmupCosineLr schedule(0.05f, 2, epochs);
  for (int e = 0; e < epochs; ++e) {
    opt.set_lr(schedule.LrAt(e));
    nn::TrainEpoch(model, opt, train, {});
  }
  return nn::Evaluate(model, test).accuracy;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::Warning);
  Rng rng(71);
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 6;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(72, 8, rng);
  const auto test = dataset.MakeBatches(48, 8, rng);
  const int kEpochs = 12;

  models::TinyR2Plus1dConfig rcfg;
  rcfg.num_classes = dcfg.num_classes;
  rcfg.stem_channels = 4;
  rcfg.stage1_channels = 8;
  rcfg.stage2_channels = 8;
  models::TinyR2Plus1d r2p1d(rcfg, rng);
  const double r_acc = Train(r2p1d, train, test, kEpochs);

  models::TinyC3dConfig ccfg;
  ccfg.num_classes = dcfg.num_classes;
  ccfg.conv1_channels = 4;
  ccfg.conv2_channels = 8;
  ccfg.conv3_channels = 8;
  models::TinyC3d c3d(ccfg, rng);
  const double c_acc = Train(c3d, train, test, kEpochs);

  report::Table table("Motivation — R(2+1)D vs C3D on motion classification");
  table.Header({"Model", "Params (tiny)", "Test accuracy",
                "Full-size params", "Full-size GOPs"});
  const models::NetworkSpec rspec = models::MakeR2Plus1DSpec();
  const models::NetworkSpec cspec = models::MakeC3DSpec();
  table.Row({"R(2+1)D", report::Table::Int(TotalParams(r2p1d)),
             report::Table::Pct(r_acc),
             report::Table::Num(rspec.TotalParams() / 1e6, 1) + "M",
             report::Table::Num(rspec.TotalOps() / 1e9, 1)});
  table.Row({"C3D", report::Table::Int(TotalParams(c3d)),
             report::Table::Pct(c_acc),
             report::Table::Num(cspec.TotalParams() / 1e6, 1) + "M (conv)",
             report::Table::Num(cspec.TotalOps() / 1e9, 1)});
  table.Print();
  std::printf(
      "\nReading: at matched widths the factorized model should match or\n"
      "beat full-3D C3D on a task defined purely by motion (the paper's\n"
      "UCF101 numbers: R(2+1)D 89%% with 33M params vs C3D's larger, less\n"
      "accurate model).\n");
  return 0;
}
