// Ablation over the pruning-block / tiling size (Tm, Tn) — the central
// co-design knob. For each candidate block size we report: resource
// cost, unpruned and pruned R(2+1)D latency (paper pruning targets),
// speedup, and the achieved parameter pruning rate (edge-block effects
// make small layers deviate from 1/(1-eta)).
#include <cstdio>

#include "fpga/scheduler.h"
#include "report/table.h"

using namespace hwp3d;

int main() {
  const fpga::FpgaDevice dev = fpga::Zcu102();
  models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(spec);
  fpga::ResourceModel resources;

  const std::vector<std::pair<int64_t, int64_t>> blocks = {
      {16, 8}, {32, 8}, {64, 4}, {64, 8}, {64, 16}, {64, 32}, {128, 8}};

  report::Table table(
      "Ablation — pruning-block / tiling size (Tm, Tn) on R(2+1)D");
  table.Header({"(Tm,Tn)", "DSP", "BRAM36", "Feasible", "Unpruned (ms)",
                "Pruned (ms)", "Speedup", "Rate (pruned groups)"});
  for (const auto& [tm, tn] : blocks) {
    fpga::Tiling tiling{tm, tn, 4, 14, 14};
    const fpga::ResourceUsage usage =
        resources.Estimate(tiling, {&spec}, &dev);
    const bool feasible = resources.Feasible(usage, dev);

    fpga::NetworkScheduler sched(tiling, fpga::Ports{}, dev, 150.0);
    const fpga::SpecMasks masks = fpga::GenerateSpecMasks(spec, {tm, tn});
    const fpga::NetworkPerfReport unpruned = sched.Evaluate(spec);
    const fpga::NetworkPerfReport pruned = sched.Evaluate(spec, &masks);
    // Achieved rate over the PRUNED groups only (conv2_x + conv3_x):
    // coarser blocks quantize the kept-block count harder.
    double pruned_before = 0.0, pruned_after = 0.0;
    for (size_t i = 0; i < spec.layers.size(); ++i) {
      const auto& l = spec.layers[i];
      if (l.eta <= 0.0) continue;
      core::BlockPartition part(Shape{l.M, l.N, l.Kd, l.Kr, l.Kc},
                                {tm, tn});
      pruned_before += static_cast<double>(l.params());
      pruned_after +=
          static_cast<double>(part.EnabledParams(masks.storage[i]));
    }
    const double rate = pruned_before / pruned_after;

    table.Row({"(" + report::Table::Int(tm) + "," + report::Table::Int(tn) +
                   ")",
               report::Table::Int(usage.dsp),
               report::Table::Num(usage.bram36_partitioned, 1),
               feasible ? "yes" : "no",
               report::Table::Num(unpruned.latency_ms, 0),
               report::Table::Num(pruned.latency_ms, 0),
               report::Table::Ratio(unpruned.latency_ms / pruned.latency_ms,
                                    2),
               report::Table::Ratio(rate, 2)});
  }
  table.Print();
  std::printf(
      "\nReading: larger Tn buys latency at a DSP/BRAM cost; the paper's\n"
      "(64,8)/(64,16) sit at the BRAM feasibility edge of the ZCU102.\n"
      "Coarser blocks also coarsen the pruning granularity (param rate\n"
      "drifts from the 1/(1-eta) ideal as edge blocks grow).\n");
  return 0;
}
