// Reproduces Table III: FPGA resource utilization on the ZCU102 for the
// two design points (Tm,Tn) = (64,8) and (64,16), with
// (Td,Tr,Tc) = (4,14,14) and 16-bit fixed point. The bitstream must run
// both C3D and R(2+1)D, so buffer maxima (Eq. 17) span both networks —
// exactly how the paper sizes its buffers.
#include <cstdio>

#include "common/strings.h"
#include "fpga/resource_model.h"
#include "report/table.h"

using namespace hwp3d;

namespace {

void PrintDesign(report::Table& table, const char* name,
                 const fpga::ResourceUsage& u, const fpga::FpgaDevice& dev,
                 int64_t paper_dsp, double paper_bram, int64_t paper_lut,
                 int64_t paper_ff) {
  table.Row({name, "paper used", report::Table::Int(paper_dsp),
             report::Table::Num(paper_bram, 1),
             report::Table::Int(paper_lut), report::Table::Int(paper_ff)});
  table.Row({name, "ours (model)", report::Table::Int(u.dsp),
             report::Table::Num(u.bram36_partitioned, 1),
             report::Table::Int(u.lut), report::Table::Int(u.ff)});
  table.Row(
      {name, "ours utilization",
       report::Table::Pct(static_cast<double>(u.dsp) / dev.dsp),
       report::Table::Pct(u.bram36_partitioned / dev.bram36),
       report::Table::Pct(static_cast<double>(u.lut) / dev.lut),
       report::Table::Pct(static_cast<double>(u.ff) / dev.ff)});
}

}  // namespace

int main() {
  const models::NetworkSpec r2p1d = models::MakeR2Plus1DSpec();
  const models::NetworkSpec c3d = models::MakeC3DSpec();
  const std::vector<const models::NetworkSpec*> nets = {&r2p1d, &c3d};
  const fpga::FpgaDevice dev = fpga::Zcu102();
  fpga::ResourceModel model;

  report::Table table("Table III — FPGA resource utilization (ZCU102)");
  table.Header({"Design", "Row", "DSP", "BRAM36", "LUT", "FF"});
  table.Row({"device", "available", report::Table::Int(dev.dsp),
             report::Table::Int(dev.bram36), report::Table::Int(dev.lut),
             report::Table::Int(dev.ff)});
  table.Rule();

  const fpga::ResourceUsage u8 =
      model.Estimate(fpga::PaperTilingTn8(), nets, &dev);
  PrintDesign(table, "(Tm,Tn)=(64,8)", u8, dev, 695, 710.5, 74000, 51000);
  table.Rule();
  const fpga::ResourceUsage u16 =
      model.Estimate(fpga::PaperTilingTn16(), nets, &dev);
  PrintDesign(table, "(Tm,Tn)=(64,16)", u16, dev, 1215, 912.0, 148000, 76000);
  table.Print();

  // The Eq. 18 constraint the DSE uses (aggregate buffer bits), for both
  // design points — this is the feasibility bound, not what Vivado
  // reports after array partitioning.
  report::Table eq18("Eq. 18 aggregate BRAM bound (DSE feasibility)");
  eq18.Header({"Design", "B_out", "B_in", "B_wgt", "BRAM36 (Eq.18)",
               "feasible"});
  for (const auto& [name, u] :
       {std::make_pair("(64,8)", u8), std::make_pair("(64,16)", u16)}) {
    eq18.Row({name, report::Table::Int(u.buffers.B_out),
              report::Table::Int(u.buffers.B_in),
              report::Table::Int(u.buffers.B_wgt),
              report::Table::Int(u.bram36_eq18),
              model.Feasible(u, dev) ? "yes" : "no"});
  }
  eq18.Print();
  return 0;
}
