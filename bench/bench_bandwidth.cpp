// Off-chip traffic analysis (extension of Table IV): how many bytes per
// inference each design point moves, the average DRAM bandwidth demand
// this implies at 150 MHz, and how much of it block-enable pruning
// eliminates. The paper's latency model implicitly assumes the ports can
// be fed; this bench verifies the assumption against the ZCU102's DDR4
// envelope and quantifies the traffic side of the co-design.
#include <cstdio>

#include "fpga/bandwidth_model.h"
#include "fpga/scheduler.h"
#include "report/table.h"

using namespace hwp3d;

int main() {
  constexpr double kDdrPeakGBs = 19.2;  // ZCU102 PS DDR4-2400 x64
  models::NetworkSpec r2p1d = models::MakeR2Plus1DSpec();
  models::ApplyPaperPruningTargets(r2p1d);
  const models::NetworkSpec c3d = models::MakeC3DSpec();

  report::Table table("DRAM traffic per inference and bandwidth demand");
  table.Header({"Network", "Tiling", "Weights (MiB)", "Inputs (MiB)",
                "Outputs (MiB)", "Total (MiB)", "Avg BW (GB/s)",
                "DDR headroom"});

  for (const fpga::Tiling& tiling :
       {fpga::PaperTilingTn8(), fpga::PaperTilingTn16()}) {
    fpga::BandwidthModel bw(tiling);
    fpga::PerfModel pm(tiling, fpga::Ports{});
    const double mib = 1024.0 * 1024.0;

    // C3D dense.
    {
      const fpga::NetworkTraffic t = bw.NetworkBytes(c3d);
      const int64_t cycles = pm.NetworkCycles(c3d).cycles;
      const double gbs = t.AvgBandwidthGBs(cycles, 150.0);
      table.Row({"C3D dense", tiling.ToString(),
                 report::Table::Num(t.totals.weight_bytes / mib, 0),
                 report::Table::Num(t.totals.input_bytes / mib, 0),
                 report::Table::Num(t.totals.output_bytes / mib, 0),
                 report::Table::Num(t.totals.total() / mib, 0),
                 report::Table::Num(gbs, 2),
                 report::Table::Ratio(kDdrPeakGBs / gbs, 1)});
    }
    // R(2+1)D dense vs pruned.
    const fpga::SpecMasks masks =
        fpga::GenerateSpecMasks(r2p1d, tiling.block());
    for (const auto& [label, mask_ptr] :
         {std::make_pair("R(2+1)D dense", (const fpga::SpecMasks*)nullptr),
          std::make_pair("R(2+1)D pruned", &masks)}) {
      const fpga::NetworkTraffic t = bw.NetworkBytes(r2p1d, mask_ptr);
      const int64_t cycles =
          pm.NetworkCycles(r2p1d,
                           mask_ptr != nullptr ? &mask_ptr->ptrs : nullptr)
              .cycles;
      const double gbs = t.AvgBandwidthGBs(cycles, 150.0);
      table.Row({label, tiling.ToString(),
                 report::Table::Num(t.totals.weight_bytes / mib, 0),
                 report::Table::Num(t.totals.input_bytes / mib, 0),
                 report::Table::Num(t.totals.output_bytes / mib, 0),
                 report::Table::Num(t.totals.total() / mib, 0),
                 report::Table::Num(gbs, 2),
                 report::Table::Ratio(kDdrPeakGBs / gbs, 1)});
    }
    table.Rule();
  }
  table.Print();
  std::printf(
      "\nReading: every design point fits comfortably inside the DDR4\n"
      "envelope (validating the latency model's assumption that ports are\n"
      "never starved), and block-enable pruning removes weight AND input\n"
      "traffic in the same ratio it removes compute — the bandwidth slack\n"
      "it frees is what lets the Tn=16 design scale.\n");
  return 0;
}
