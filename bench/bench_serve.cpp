// Serving throughput/latency benchmark in two parts:
//
//  1. Executor comparison (single replica, serial Infer loop): the
//     step-by-step cycle simulator (kSimulate), the fast compiled
//     executor on dense weights, and the fast executor on a 90%
//     block-pruned compile — the last demonstrates the wall-clock win
//     of physically eliding pruned tiles from the packed stream.
//  2. Batched InferenceServer at increasing replica counts against a
//     serial loop in the same executor mode (--executor, default
//     fast), on the same clips.
//
// Writes BENCH_serve.json with both sections: an "executors" object
// (sim/fast/pruned clips-per-second plus the fast_vs_sim and
// pruned_vs_dense ratios) and the per-replica "configs" array with
// throughput, speedup-vs-serial, and p50/p95/p99 latency.
//
// Replica scaling rides the process-wide hwp3d::ThreadPool, so size it
// to the host: bench_serve --threads 4 --replicas 1,2,4. Other flags:
// --clips N, --max-batch N, --max-delay-us N, --executor sim|fast,
// --json-out=PATH.
//
// Fault sweep: --fault-rate=0.1 (or HWP_FAULTS=serve.replica_infer=0.1)
// injects transient replica failures. The bench then classifies every
// outcome — ok, truthful transient failure, or anything else — and
// exits non-zero only if a request was lost or resolved untruthfully.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/block_partition.h"
#include "data/synthetic_video.h"
#include "fpga/compiled_executor.h"
#include "fpga/model_compiler.h"
#include "kernels/thread_pool.h"
#include "models/tiny_r2plus1d.h"
#include "nn/trainer.h"
#include "obs/cli.h"
#include "obs/trace.h"
#include "report/table.h"
#include "serve/server.h"

using namespace hwp3d;

namespace {

struct Row {
  int replicas = 0;
  double throughput_cps = 0.0;
  double speedup = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_batch = 0.0;
  long long batches = 0;
  long long ok = 0;
  long long transient_failed = 0;
  long long faults_injected = 0;
  long long retries = 0;
  long long quarantined = 0;
};

std::vector<int> ParseIntList(const char* s) {
  std::vector<int> out;
  int value = 0;
  bool have = false;
  for (; ; ++s) {
    if (*s >= '0' && *s <= '9') {
      value = value * 10 + (*s - '0');
      have = true;
    } else {
      if (have) out.push_back(value);
      value = 0;
      have = false;
      if (*s == '\0') break;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const obs::CliOptions obs_opts = obs::InitFromArgs(argc, argv);
  SetLogLevel(LogLevel::Warning);

  std::string json_path = "BENCH_serve.json";
  int num_clips = 64;
  int max_batch = 8;
  long long max_delay_us = 500;
  std::vector<int> replica_counts = {1, 2, 4};
  double fault_rate = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--clips=", 8) == 0) {
      num_clips = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--max-batch=", 12) == 0) {
      max_batch = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--max-delay-us=", 15) == 0) {
      max_delay_us = std::atoll(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--replicas=", 11) == 0) {
      replica_counts = ParseIntList(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--fault-rate=", 13) == 0) {
      fault_rate = std::atof(argv[i] + 13);
    }
  }
  if (fault_rate > 0.0) {
    FaultInjector::Get().Enable("serve.replica_infer",
                                {.probability = fault_rate});
  }
  // HWP_FAULTS in the environment also works: FaultInjector::Get()
  // parsed it on first access, so report whichever source is live.
  const bool faults_on = FaultInjector::Get().active();

  // Model + compile (same small configuration the serve tests use; one
  // adaptation epoch so BN statistics are sane).
  Rng rng(obs_opts.seed.value_or(11));
  models::TinyR2Plus1dConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.stem_channels = 4;
  mcfg.stage1_channels = 8;
  mcfg.stage2_channels = 8;
  models::TinyR2Plus1d model(mcfg, rng);
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  {
    auto batches = dataset.MakeBatches(8, 8, rng);
    nn::Sgd opt(model.Params(),
                {.lr = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f});
    nn::TrainEpoch(model, opt, batches, {});
  }
  // --executor (via HWP_EXEC) picks the engine the serving section
  // runs; the executor-comparison section always measures both.
  const fpga::ExecMode exec =
      fpga::ResolveExecMode(std::nullopt, fpga::ExecMode::kFast);

  fpga::CompiledModelOptions copts;
  copts.tiling = fpga::Tiling{4, 4, 2, 5, 5};
  copts.executor = fpga::ExecMode::kSimulate;
  auto sim_model = fpga::CompiledTinyR2Plus1d::Compile(model, copts);
  copts.executor = fpga::ExecMode::kFast;
  auto fast_model = fpga::CompiledTinyR2Plus1d::Compile(model, copts);
  // 90% block-pruned compile: keep every 10th block of each prunable
  // conv's (Tm, Tn) grid. The weights are untouched (this measures the
  // packed stream shrinking, not accuracy); real flows get the masks
  // from core::AdmmPruner instead.
  for (nn::Conv3d* c : model.PrunableConvs()) {
    core::BlockPartition part(c->weight().value.shape(),
                              {copts.tiling.Tm, copts.tiling.Tn});
    core::BlockMask m = part.FullMask();
    int64_t idx = 0;
    for (int64_t bm = 0; bm < m.blocks_m; ++bm) {
      for (int64_t bn = 0; bn < m.blocks_n; ++bn, ++idx) {
        m.set(bm, bn, idx % 10 == 0);
      }
    }
    copts.masks.push_back(std::move(m));
  }
  auto pruned_model = fpga::CompiledTinyR2Plus1d::Compile(model, copts);
  if (!sim_model.ok() || !fast_model.ok() || !pruned_model.ok()) {
    std::fprintf(stderr, "%s\n", (!sim_model.ok() ? sim_model
                                  : !fast_model.ok() ? fast_model
                                                     : pruned_model)
                                     .status()
                                     .ToString()
                                     .c_str());
    return 1;
  }
  fpga::CompiledTinyR2Plus1d& compiled =
      exec == fpga::ExecMode::kFast ? *fast_model : *sim_model;

  std::vector<TensorF> clips;
  for (int i = 0; i < num_clips; ++i) {
    clips.push_back(dataset.MakeSample(i % dcfg.num_classes, rng).clip);
  }

  // Executor comparison: serial Infer loops over the same clips.
  const auto time_serial = [&clips, num_clips](
                               fpga::CompiledTinyR2Plus1d& m) {
    const double t0 = obs::NowUs();
    for (const TensorF& clip : clips) (void)m.Infer(clip);
    return 1e6 * num_clips / (obs::NowUs() - t0);
  };
  const double sim_cps = time_serial(*sim_model);
  const double fast_cps = time_serial(*fast_model);
  const double pruned_cps = time_serial(*pruned_model);
  const double fast_vs_sim = fast_cps / sim_cps;
  const double pruned_vs_dense = pruned_cps / fast_cps;

  // Serial baseline for the serving section: one replica, no queue, no
  // batching, same executor the server uses.
  const double serial_t0 = obs::NowUs();
  for (const TensorF& clip : clips) (void)compiled.Infer(clip);
  const double serial_us = obs::NowUs() - serial_t0;
  const double serial_cps = 1e6 * num_clips / serial_us;
  const double serial_mean_ms = serial_us / num_clips / 1000.0;

  std::vector<Row> rows;
  for (int replicas : replica_counts) {
    serve::ServerConfig cfg;
    cfg.replicas = replicas;
    cfg.max_batch = max_batch;
    cfg.max_delay_us = max_delay_us;
    cfg.queue_capacity = static_cast<size_t>(num_clips) * 2;
    serve::InferenceServer server(compiled, cfg);

    const double t0 = obs::NowUs();
    std::vector<std::future<StatusOr<serve::InferenceResult>>> futures;
    futures.reserve(clips.size());
    for (const TensorF& clip : clips) {
      futures.push_back(server.SubmitAsync(clip));
    }
    // Zero request loss: every future must resolve, and every failure
    // must be a truthful transient (kUnavailable after exhausted
    // retries under injection). Anything else is a serving bug.
    long long ok = 0, transient = 0, lost = 0;
    for (auto& f : futures) {
      auto r = f.get();
      if (r.ok()) {
        ++ok;
      } else if (r.status().code() == StatusCode::kUnavailable) {
        ++transient;
      } else {
        std::fprintf(stderr, "replicas=%d: untruthful outcome: %s\n",
                     replicas, r.status().ToString().c_str());
        ++lost;
      }
    }
    const double wall_us = obs::NowUs() - t0;
    if (lost != 0) return 1;
    if (!faults_on && transient != 0) {
      std::fprintf(stderr, "replicas=%d: %lld requests failed\n", replicas,
                   transient);
      return 1;
    }
    const serve::ServerStats stats = server.Stats();
    Row row;
    row.replicas = replicas;
    row.throughput_cps = 1e6 * num_clips / wall_us;
    row.speedup = row.throughput_cps / serial_cps;
    row.p50_ms = stats.p50_ms;
    row.p95_ms = stats.p95_ms;
    row.p99_ms = stats.p99_ms;
    row.mean_batch = stats.mean_batch_size;
    row.batches = stats.batches;
    row.ok = ok;
    row.transient_failed = transient;
    row.faults_injected = stats.faults_injected;
    row.retries = stats.retries;
    row.quarantined = stats.replicas_quarantined;
    rows.push_back(row);
  }

  const int threads = ThreadPool::Get().threads();

  report::Table exec_table("Executor comparison (serial Infer loop)");
  exec_table.Header({"Executor", "Clips/s", "vs sim", "vs fast dense"});
  exec_table.Row({"sim", report::Table::Num(sim_cps, 1),
                  report::Table::Ratio(1.0, 2), "-"});
  exec_table.Row({"fast dense", report::Table::Num(fast_cps, 1),
                  report::Table::Ratio(fast_vs_sim, 2),
                  report::Table::Ratio(1.0, 2)});
  exec_table.Row({"fast 90% pruned", report::Table::Num(pruned_cps, 1),
                  report::Table::Ratio(pruned_cps / sim_cps, 2),
                  report::Table::Ratio(pruned_vs_dense, 2)});
  exec_table.Print();

  report::Table table(faults_on
                          ? "Batched serving vs serial Infer loop (faults on)"
                          : "Batched serving vs serial Infer loop");
  table.Header({"Config", "Clips/s", "Speedup", "p50 ms", "p95 ms",
                "p99 ms", "Mean batch", "Faults", "Retries", "Quar"});
  table.Row({"serial x1", report::Table::Num(serial_cps, 1),
             report::Table::Ratio(1.0, 2),
             report::Table::Num(serial_mean_ms, 2), "-", "-", "-", "-", "-",
             "-"});
  for (const Row& r : rows) {
    table.Row({"serve x" + std::to_string(r.replicas),
               report::Table::Num(r.throughput_cps, 1),
               report::Table::Ratio(r.speedup, 2),
               report::Table::Num(r.p50_ms, 2),
               report::Table::Num(r.p95_ms, 2),
               report::Table::Num(r.p99_ms, 2),
               report::Table::Num(r.mean_batch, 1),
               std::to_string(r.faults_injected),
               std::to_string(r.retries),
               std::to_string(r.quarantined)});
  }
  table.Print();
  std::printf("(executor: %s; thread pool: %d threads; batching: "
              "max_batch %d, max_delay %lld us)\n",
              fpga::ExecModeName(exec), threads, max_batch, max_delay_us);
  if (faults_on) {
    long long ok = 0, transient = 0;
    for (const Row& r : rows) {
      ok += r.ok;
      transient += r.transient_failed;
    }
    std::printf("fault sweep: %lld ok, %lld truthful transient failures, "
                "0 lost\n",
                ok, transient);
  }

  std::ofstream os(json_path);
  os << "{\n"
     << "  \"bench\": \"serve\",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"clips\": " << num_clips << ",\n"
     << "  \"max_batch\": " << max_batch << ",\n"
     << "  \"max_delay_us\": " << max_delay_us << ",\n"
     << "  \"fault_rate\": " << fault_rate << ",\n"
     << "  \"faults_on\": " << (faults_on ? "true" : "false") << ",\n"
     << "  \"executor\": \"" << fpga::ExecModeName(exec) << "\",\n"
     << "  \"executors\": {\"sim_cps\": " << sim_cps
     << ", \"fast_dense_cps\": " << fast_cps
     << ", \"fast_pruned90_cps\": " << pruned_cps
     << ", \"fast_vs_sim\": " << fast_vs_sim
     << ", \"pruned_vs_dense\": " << pruned_vs_dense << "},\n"
     << "  \"serial\": {\"throughput_cps\": " << serial_cps
     << ", \"mean_ms\": " << serial_mean_ms << "},\n"
     << "  \"configs\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"replicas\": " << r.replicas
       << ", \"throughput_cps\": " << r.throughput_cps
       << ", \"speedup_vs_serial\": " << r.speedup
       << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
       << ", \"p99_ms\": " << r.p99_ms
       << ", \"mean_batch\": " << r.mean_batch
       << ", \"batches\": " << r.batches
       << ", \"ok\": " << r.ok
       << ", \"transient_failed\": " << r.transient_failed
       << ", \"faults_injected\": " << r.faults_injected
       << ", \"retries\": " << r.retries
       << ", \"replicas_quarantined\": " << r.quarantined << "}"
       << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
