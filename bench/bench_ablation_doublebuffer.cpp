// Ablation of the double-buffering design choice (Section IV-A): with
// ping-pong buffers the tile loads overlap compute (Eq. 23 takes the
// max); without them every tile pays load + compute + store serially.
#include <cstdio>

#include "fpga/scheduler.h"
#include "report/table.h"

using namespace hwp3d;

int main() {
  const fpga::FpgaDevice dev = fpga::Zcu102();
  const models::NetworkSpec r2p1d = models::MakeR2Plus1DSpec();
  const models::NetworkSpec c3d = models::MakeC3DSpec();

  report::Table table("Ablation — double buffering (load/compute overlap)");
  table.Header({"Network", "Tiling", "Overlapped (ms)", "Serialized (ms)",
                "Benefit"});
  for (const auto& [net_name, spec] :
       {std::make_pair("R(2+1)D", &r2p1d), std::make_pair("C3D", &c3d)}) {
    for (const fpga::Tiling& tiling :
         {fpga::PaperTilingTn8(), fpga::PaperTilingTn16()}) {
      // Use 2-element ports so data movement is a visible fraction of
      // the schedule (with very wide ports the engine is compute-bound
      // everywhere and the overlap has nothing to hide).
      fpga::Ports overlapped;
      overlapped.p_wgt = overlapped.p_in = overlapped.p_out = 2;
      fpga::Ports serialized = overlapped;
      serialized.double_buffered = false;
      const double on =
          fpga::NetworkScheduler(tiling, overlapped, dev, 150.0)
              .Evaluate(*spec)
              .latency_ms;
      const double off =
          fpga::NetworkScheduler(tiling, serialized, dev, 150.0)
              .Evaluate(*spec)
              .latency_ms;
      table.Row({net_name, tiling.ToString(), report::Table::Num(on, 0),
                 report::Table::Num(off, 0),
                 report::Table::Ratio(off / on, 2)});
    }
  }
  table.Print();
  std::printf(
      "\nReading: with the paper's port widths the engine is compute-bound\n"
      "on most layers, so double buffering hides nearly all of the load\n"
      "time; the benefit grows when Tn doubles because per-tile compute\n"
      "shrinks relative to data movement.\n");
  return 0;
}
