// Micro-benchmarks (google-benchmark) of the library's hot kernels:
// the blockwise projection, block-norm computation, fixed-point
// quantization, the float training convolution under both conv engines,
// and the tile simulator dense vs pruned (showing the functional
// block-skip saving).
//
// Beyond the google-benchmark suite, main() runs an engine-comparison
// harness (naive vs gemm training step on a tiny R(2+1)D block) and
// writes a machine-readable summary to --json-out=PATH
// (default BENCH_kernels.json): GFLOP/s, speedup, and the gemm engine's
// pack/compute time split taken from the kernels.gemm.* counters.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/rng.h"
#include "core/projection.h"
#include "fpga/tiled_conv_sim.h"
#include "kernels/engine.h"
#include "kernels/sgemm.h"
#include "kernels/thread_pool.h"
#include "nn/conv3d.h"
#include "nn/r2plus1d_block.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/init.h"

using namespace hwp3d;

namespace {

// Restores the previously selected conv engine on scope exit.
class EngineOverride {
 public:
  explicit EngineOverride(kernels::Engine e) : prev_(kernels::CurrentEngine()) {
    kernels::SetEngine(e);
  }
  ~EngineOverride() { kernels::SetEngine(prev_); }

 private:
  kernels::Engine prev_;
};

TensorF RandomWeights(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  TensorF t(shape);
  FillNormal(t, rng, 0.0f, 1.0f);
  return t;
}

void BM_BlockSqNorms(benchmark::State& state) {
  const TensorF w = RandomWeights(Shape{144, 64, 1, 3, 3}, 1);
  core::BlockPartition part(w.shape(), {64, 8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.BlockSqNorms(w));
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_BlockSqNorms);

void BM_ProjectToBlockSparse(benchmark::State& state) {
  core::BlockPartition part(Shape{144, 64, 1, 3, 3}, {64, 8});
  for (auto _ : state) {
    state.PauseTiming();
    TensorF w = RandomWeights(Shape{144, 64, 1, 3, 3}, 2);
    state.ResumeTiming();
    benchmark::DoNotOptimize(core::ProjectToBlockSparse(w, part, 0.9));
  }
}
BENCHMARK(BM_ProjectToBlockSparse);

void BM_Quantize(benchmark::State& state) {
  const TensorF t = RandomWeights(Shape{64, 64, 3, 3, 3}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Quantize(t));
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_Quantize);

void RunConv3dForward(benchmark::State& state, kernels::Engine engine) {
  EngineOverride eo(engine);
  Rng rng(4);
  nn::Conv3dConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 8;
  cfg.kernel = {3, 3, 3};
  cfg.padding = {1, 1, 1};
  nn::Conv3d conv(cfg, rng);
  TensorF x(Shape{1, 8, 8, 16, 16});
  FillUniform(x, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
  // 2 FLOPs (mul+add) per weight tap per output element.
  const double flops_per_call = 2.0 * 8 * 8 * 8 * 16 * 16 * 3 * 3 * 3;
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * flops_per_call));
}

void BM_Conv3dForwardNaive(benchmark::State& state) {
  RunConv3dForward(state, kernels::Engine::kNaive);
}
BENCHMARK(BM_Conv3dForwardNaive);

void BM_Conv3dForwardGemm(benchmark::State& state) {
  RunConv3dForward(state, kernels::Engine::kGemm);
}
BENCHMARK(BM_Conv3dForwardGemm);

void BM_Sgemm(benchmark::State& state) {
  const int64_t m = 64, n = 1024, k = 288;  // typical im2col shape
  Rng rng(11);
  TensorF a(Shape{m, k}), b(Shape{k, n}), c(Shape{m, n});
  FillUniform(a, rng, -1.0f, 1.0f);
  FillUniform(b, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    kernels::Sgemm(false, false, m, n, k, a.data(), k, b.data(), n, c.data(),
                   n, /*accumulate=*/false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * n * k);
}
BENCHMARK(BM_Sgemm);

void RunTiledSim(benchmark::State& state, double eta) {
  Rng rng(5);
  TensorF wf(Shape{32, 32, 1, 3, 3});
  FillNormal(wf, rng, 0.0f, 1.0f);
  core::BlockPartition part(wf.shape(), {8, 8});
  core::ProjectionResult proj = core::PlanBlockSparse(wf, part, eta);
  const TensorQ w = Quantize(wf);
  TensorF xf(Shape{32, 4, 16, 16});
  FillUniform(xf, rng, -1.0f, 1.0f);
  const TensorQ x = Quantize(xf);
  fpga::TiledConvSim sim(fpga::Tiling{8, 8, 2, 7, 7}, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.Run(w, x, {1, 1, 1}, eta > 0.0 ? &proj.mask : nullptr, {}));
  }
}

void BM_TiledSimDense(benchmark::State& state) { RunTiledSim(state, 0.0); }
BENCHMARK(BM_TiledSimDense);

void BM_TiledSimPruned90(benchmark::State& state) {
  RunTiledSim(state, 0.9);
}
BENCHMARK(BM_TiledSimPruned90);

// Observability overhead: a disabled TraceScope must cost a single
// relaxed atomic load (sub-nanosecond), so instrumented hot paths stay
// free when tracing is off. The enabled variant shows the record cost.
void BM_TraceScopeDisabled(benchmark::State& state) {
  obs::Tracer::Get().SetEnabled(false);
  for (auto _ : state) {
    HWP_TRACE_SCOPE("bench/disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceScopeDisabled);

void BM_TraceScopeEnabled(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.SetEnabled(true);
  size_t n = 0;
  for (auto _ : state) {
    HWP_TRACE_SCOPE("bench/enabled");
    if (++n % 65536 == 0) tracer.Clear();  // bound buffer growth
    benchmark::ClobberMemory();
  }
  tracer.SetEnabled(false);
  tracer.Clear();
}
BENCHMARK(BM_TraceScopeEnabled);

void BM_MetricsCounterAdd(benchmark::State& state) {
  obs::Counter& c =
      obs::MetricsRegistry::Get().GetCounter("bench.counter");
  for (auto _ : state) {
    c.Add(1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsCounterLookup(benchmark::State& state) {
  auto& reg = obs::MetricsRegistry::Get();
  for (auto _ : state) {
    reg.GetCounter("bench.lookup", {{"layer", "conv2a"}}).Add(1);
  }
}
BENCHMARK(BM_MetricsCounterLookup);

// ---------------------------------------------------------------------------
// Engine-comparison harness: one training step (ZeroGrad + Forward(train) +
// Backward) of a tiny R(2+1)D residual block under each conv engine.

struct TrainStepSetup {
  nn::ResidualBlock block;
  TensorF x;
  TensorF seed;

  explicit TrainStepSetup(Rng& rng)
      : block(MakeConfig(), rng, "bench_block"),
        x(Shape{2, 8, 4, 16, 16}) {
    FillUniform(x, rng, -1.0f, 1.0f);
    TensorF y = block.Forward(x, false);
    seed = TensorF(y.shape());
    FillUniform(seed, rng, -1.0f, 1.0f);
  }

  static nn::ResidualBlockConfig MakeConfig() {
    nn::ResidualBlockConfig cfg;
    cfg.in_channels = 8;
    cfg.out_channels = 16;
    cfg.spatial_stride = 2;
    cfg.temporal_stride = 2;
    return cfg;
  }

  void Step() {
    block.ZeroGrad();
    TensorF y = block.Forward(x, true);
    benchmark::DoNotOptimize(y.data());
    TensorF dx = block.Backward(seed);
    benchmark::DoNotOptimize(dx.data());
  }
};

// Best-of-reps wall time of one training step under `engine`, in ms.
// Runs one warmup step, then repetitions until >= 0.3 s has accumulated
// (at least 3 reps).
double TimeTrainStepMs(TrainStepSetup& setup, kernels::Engine engine) {
  EngineOverride eo(engine);
  setup.Step();  // warmup: touches cold memory, settles the pool
  double best_ms = 1e300;
  double total_us = 0.0;
  int reps = 0;
  while (reps < 3 || total_us < 300000.0) {
    const double t0 = obs::NowUs();
    setup.Step();
    const double us = obs::NowUs() - t0;
    total_us += us;
    best_ms = us / 1000.0 < best_ms ? us / 1000.0 : best_ms;
    ++reps;
    if (reps >= 200) break;
  }
  return best_ms;
}

// GFLOP/s of the gemm-engine conv forward from BM_Conv3dForwardGemm's
// shape, plus the pack/compute split from the kernels.gemm.* counters.
void RunEngineComparison(const std::string& json_path) {
  Rng rng(21);
  TrainStepSetup setup(rng);

  const double naive_ms = TimeTrainStepMs(setup, kernels::Engine::kNaive);
  const double gemm_ms = TimeTrainStepMs(setup, kernels::Engine::kGemm);
  const double speedup = naive_ms / gemm_ms;

  // Conv forward throughput (same shape as BM_Conv3dForwardGemm), with
  // the gemm pack/compute split read as counter deltas around the runs.
  auto& reg = obs::MetricsRegistry::Get();
  const int64_t pack_us0 = reg.CounterTotal("kernels.gemm.pack_us");
  const int64_t comp_us0 = reg.CounterTotal("kernels.gemm.compute_us");

  nn::Conv3dConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 8;
  cfg.kernel = {3, 3, 3};
  cfg.padding = {1, 1, 1};
  nn::Conv3d conv(cfg, rng, "bench_conv");
  TensorF cx(Shape{1, 8, 8, 16, 16});
  FillUniform(cx, rng, -1.0f, 1.0f);
  const double conv_flops = 2.0 * 8 * 8 * 8 * 16 * 16 * 3 * 3 * 3;

  double conv_best_us = 1e300;
  {
    EngineOverride eo(kernels::Engine::kGemm);
    for (int r = 0; r < 50; ++r) {
      const double t0 = obs::NowUs();
      TensorF y = conv.Forward(cx, false);
      benchmark::DoNotOptimize(y.data());
      const double us = obs::NowUs() - t0;
      conv_best_us = us < conv_best_us ? us : conv_best_us;
    }
  }
  const double conv_gflops = conv_flops / conv_best_us / 1000.0;

  const int64_t pack_us = reg.CounterTotal("kernels.gemm.pack_us") - pack_us0;
  const int64_t comp_us =
      reg.CounterTotal("kernels.gemm.compute_us") - comp_us0;
  const double split_total = static_cast<double>(pack_us + comp_us);
  const double pack_frac =
      split_total > 0.0 ? static_cast<double>(pack_us) / split_total : 0.0;

  std::printf("\n-- engine comparison (tiny R(2+1)D residual block) --\n");
  std::printf("threads:              %d\n", ThreadPool::Get().threads());
  std::printf("train step naive:     %.2f ms\n", naive_ms);
  std::printf("train step gemm:      %.2f ms\n", gemm_ms);
  std::printf("speedup:              %.2fx\n", speedup);
  std::printf("conv forward (gemm):  %.2f GFLOP/s\n", conv_gflops);
  std::printf("gemm pack/compute:    %.0f%% / %.0f%%\n", 100.0 * pack_frac,
              100.0 * (1.0 - pack_frac));

  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "bench_kernels: cannot write %s\n",
                 json_path.c_str());
    return;
  }
  out << "{\n"
      << "  \"threads\": " << ThreadPool::Get().threads() << ",\n"
      << "  \"train_step\": {\n"
      << "    \"config\": \"R(2+1)D residual block 8->16 ch, stride 2, "
         "input [2,8,4,16,16]\",\n"
      << "    \"naive_ms\": " << naive_ms << ",\n"
      << "    \"gemm_ms\": " << gemm_ms << ",\n"
      << "    \"speedup\": " << speedup << "\n"
      << "  },\n"
      << "  \"conv3d_forward\": {\n"
      << "    \"config\": \"8->8 ch, 3x3x3, pad 1, input [1,8,8,16,16]\",\n"
      << "    \"gemm_gflops\": " << conv_gflops << "\n"
      << "  },\n"
      << "  \"gemm_split\": {\n"
      << "    \"pack_us\": " << pack_us << ",\n"
      << "    \"compute_us\": " << comp_us << ",\n"
      << "    \"pack_fraction\": " << pack_frac << "\n"
      << "  }\n"
      << "}\n";
  std::printf("wrote %s\n", json_path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  // Extract --json-out=PATH before google-benchmark sees the args (it
  // rejects flags it does not know).
  std::string json_path = "BENCH_kernels.json";
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  RunEngineComparison(json_path);
  return 0;
}
