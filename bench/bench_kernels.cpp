// Micro-benchmarks (google-benchmark) of the library's hot kernels:
// the blockwise projection, block-norm computation, fixed-point
// quantization, the float training convolution, and the tile simulator
// dense vs pruned (showing the functional block-skip saving).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/projection.h"
#include "fpga/tiled_conv_sim.h"
#include "nn/conv3d.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/init.h"

using namespace hwp3d;

namespace {

TensorF RandomWeights(const Shape& shape, uint64_t seed) {
  Rng rng(seed);
  TensorF t(shape);
  FillNormal(t, rng, 0.0f, 1.0f);
  return t;
}

void BM_BlockSqNorms(benchmark::State& state) {
  const TensorF w = RandomWeights(Shape{144, 64, 1, 3, 3}, 1);
  core::BlockPartition part(w.shape(), {64, 8});
  for (auto _ : state) {
    benchmark::DoNotOptimize(part.BlockSqNorms(w));
  }
  state.SetItemsProcessed(state.iterations() * w.numel());
}
BENCHMARK(BM_BlockSqNorms);

void BM_ProjectToBlockSparse(benchmark::State& state) {
  core::BlockPartition part(Shape{144, 64, 1, 3, 3}, {64, 8});
  for (auto _ : state) {
    state.PauseTiming();
    TensorF w = RandomWeights(Shape{144, 64, 1, 3, 3}, 2);
    state.ResumeTiming();
    benchmark::DoNotOptimize(core::ProjectToBlockSparse(w, part, 0.9));
  }
}
BENCHMARK(BM_ProjectToBlockSparse);

void BM_Quantize(benchmark::State& state) {
  const TensorF t = RandomWeights(Shape{64, 64, 3, 3, 3}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Quantize(t));
  }
  state.SetItemsProcessed(state.iterations() * t.numel());
}
BENCHMARK(BM_Quantize);

void BM_Conv3dForward(benchmark::State& state) {
  Rng rng(4);
  nn::Conv3dConfig cfg;
  cfg.in_channels = 8;
  cfg.out_channels = 8;
  cfg.kernel = {3, 3, 3};
  cfg.padding = {1, 1, 1};
  nn::Conv3d conv(cfg, rng);
  TensorF x(Shape{1, 8, 8, 16, 16});
  FillUniform(x, rng, -1.0f, 1.0f);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x, false));
  }
}
BENCHMARK(BM_Conv3dForward);

void RunTiledSim(benchmark::State& state, double eta) {
  Rng rng(5);
  TensorF wf(Shape{32, 32, 1, 3, 3});
  FillNormal(wf, rng, 0.0f, 1.0f);
  core::BlockPartition part(wf.shape(), {8, 8});
  core::ProjectionResult proj = core::PlanBlockSparse(wf, part, eta);
  const TensorQ w = Quantize(wf);
  TensorF xf(Shape{32, 4, 16, 16});
  FillUniform(xf, rng, -1.0f, 1.0f);
  const TensorQ x = Quantize(xf);
  fpga::TiledConvSim sim(fpga::Tiling{8, 8, 2, 7, 7}, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.Run(w, x, {1, 1, 1}, eta > 0.0 ? &proj.mask : nullptr, {}));
  }
}

void BM_TiledSimDense(benchmark::State& state) { RunTiledSim(state, 0.0); }
BENCHMARK(BM_TiledSimDense);

void BM_TiledSimPruned90(benchmark::State& state) {
  RunTiledSim(state, 0.9);
}
BENCHMARK(BM_TiledSimPruned90);

// Observability overhead: a disabled TraceScope must cost a single
// relaxed atomic load (sub-nanosecond), so instrumented hot paths stay
// free when tracing is off. The enabled variant shows the record cost.
void BM_TraceScopeDisabled(benchmark::State& state) {
  obs::Tracer::Get().SetEnabled(false);
  for (auto _ : state) {
    HWP_TRACE_SCOPE("bench/disabled");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_TraceScopeDisabled);

void BM_TraceScopeEnabled(benchmark::State& state) {
  obs::Tracer& tracer = obs::Tracer::Get();
  tracer.SetEnabled(true);
  size_t n = 0;
  for (auto _ : state) {
    HWP_TRACE_SCOPE("bench/enabled");
    if (++n % 65536 == 0) tracer.Clear();  // bound buffer growth
    benchmark::ClobberMemory();
  }
  tracer.SetEnabled(false);
  tracer.Clear();
}
BENCHMARK(BM_TraceScopeEnabled);

void BM_MetricsCounterAdd(benchmark::State& state) {
  obs::Counter& c =
      obs::MetricsRegistry::Get().GetCounter("bench.counter");
  for (auto _ : state) {
    c.Add(1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_MetricsCounterAdd);

void BM_MetricsCounterLookup(benchmark::State& state) {
  auto& reg = obs::MetricsRegistry::Get();
  for (auto _ : state) {
    reg.GetCounter("bench.lookup", {{"layer", "conv2a"}}).Add(1);
  }
}
BENCHMARK(BM_MetricsCounterLookup);

}  // namespace

BENCHMARK_MAIN();
