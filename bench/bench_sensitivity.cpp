// Pruning-target justification (Section V): the paper prunes conv2_x at
// 90% and conv3_x at 80% because they are the most computation
// intensive. This bench reproduces both halves of that argument:
//
//  1. the compute-share table of the full-size R(2+1)D (conv2_x+conv3_x
//     carry ~79% of all operations but only ~6% of the parameters), and
//  2. a per-layer pruning-sensitivity scan on the trained tiny model
//     (how much accuracy survives pruning each layer alone, without
//     retraining) — the practitioner's tool for assigning eta_i.
#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "core/sensitivity.h"
#include "data/synthetic_video.h"
#include "models/network_spec.h"
#include "models/tiny_r2plus1d.h"
#include "nn/optimizer.h"
#include "report/table.h"

using namespace hwp3d;

int main() {
  SetLogLevel(LogLevel::Warning);

  // ---- 1. Where the compute lives in the full-size network ----
  const models::NetworkSpec spec = models::MakeR2Plus1DSpec();
  report::Table share("Compute vs parameter share per stage (full R(2+1)D)");
  share.Header({"Stage", "Params (M)", "Param share", "Ops (G)",
                "Ops share", "Paper's eta"});
  const double total_params = spec.TotalParams();
  const double total_ops = spec.TotalOps();
  for (const std::string& g : spec.Groups()) {
    const double p = spec.GroupParams(g);
    const double o = spec.GroupOps(g);
    const char* eta = g == "conv2_x" ? "90%" : g == "conv3_x" ? "80%" : "-";
    share.Row({g, report::Table::Num(p / 1e6, 2),
               report::Table::Pct(p / total_params),
               report::Table::Num(o / 1e9, 2),
               report::Table::Pct(o / total_ops), eta});
  }
  share.Print();

  // ---- 2. Sensitivity scan on the trained miniature ----
  Rng rng(61);
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = 4;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(48, 8, rng);
  const auto probe = dataset.MakeBatches(32, 8, rng);

  models::TinyR2Plus1dConfig mcfg;
  mcfg.num_classes = 4;
  mcfg.stem_channels = 4;
  mcfg.stage1_channels = 8;
  mcfg.stage2_channels = 8;
  models::TinyR2Plus1d model(mcfg, rng);
  nn::Sgd opt(model.Params(),
              {.lr = 0.05f, .momentum = 0.9f, .weight_decay = 0.0f});
  for (int e = 0; e < 8; ++e) nn::TrainEpoch(model, opt, train, {});
  const double dense_acc = nn::Evaluate(model, probe).accuracy;

  std::vector<core::PruneLayerSpec> specs;
  for (nn::Conv3d* c : model.PrunableConvs()) {
    specs.push_back({&c->weight(), {4, 4}, 0.0, c->name()});
  }
  core::SensitivityOptions sopt;
  sopt.etas = {0.25, 0.5, 0.75, 0.9};
  const auto scan = core::ScanPruningSensitivity(model, specs, probe, sopt);

  report::Table table("Per-layer sensitivity (accuracy with ONLY that layer "
                      "pruned, no retraining)");
  std::vector<std::string> header = {"Layer", "Params"};
  for (double e : sopt.etas) header.push_back("eta=" + report::Table::Pct(e));
  header.push_back("max eta (-10pt)");
  table.Header(header);
  table.Row({"(dense accuracy)", "", report::Table::Pct(dense_acc), "", "",
             "", ""});
  for (const auto& layer : scan) {
    std::vector<std::string> row = {layer.name,
                                    report::Table::Int(layer.params)};
    for (const auto& p : layer.curve) {
      row.push_back(report::Table::Pct(p.accuracy));
    }
    row.push_back(report::Table::Pct(layer.MaxEtaWithin(dense_acc, 0.10)));
    table.Row(row);
  }
  table.Print();
  std::printf(
      "\nReading: stages tolerate substantial blockwise pruning before the\n"
      "probe accuracy collapses; combined with the ops-share table this is\n"
      "the paper's rationale for eta = 90%%/80%% on conv2_x/conv3_x only.\n");
  return 0;
}
