// Reproduces the accuracy claims of Section V on the synthetic-video
// substitute: the unpruned baseline vs ADMM blockwise pruning (the
// paper: 89.0% -> 88.66% at 90%/80% block sparsity, "negligible loss"),
// and positions the baselines the paper argues against:
//
//  * one-shot blockwise pruning (no ADMM): loses more accuracy,
//  * non-structured magnitude pruning: keeps accuracy but its sparsity
//    is invisible to the block-enable hardware (nearly 0 skippable
//    blocks),
//  * structured filter pruning: hardware-friendly but costs accuracy.
//
// Scaled-down setting (see DESIGN.md): tiny R(2+1)D, 6 motion classes,
// eta = 0.75 on all residual-stage convs with (Tm, Tn) = (4, 4).
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/baselines.h"
#include "core/pipeline.h"
#include "data/synthetic_video.h"
#include "models/tiny_r2plus1d.h"
#include "report/table.h"
#include "tensor/tensor_ops.h"

using namespace hwp3d;

namespace {

constexpr double kEta = 0.75;
constexpr int kClasses = 6;

std::vector<TensorF> Snapshot(nn::Module& m) {
  std::vector<TensorF> out;
  for (nn::Param* p : m.Params()) out.push_back(p->value);
  return out;
}

void Restore(nn::Module& m, const std::vector<TensorF>& snap) {
  auto params = m.Params();
  for (size_t i = 0; i < params.size(); ++i) params[i]->value = snap[i];
}

double AvgSkippable(core::MaskedPruner& pruner, size_t layers,
                    core::BlockConfig block) {
  double s = 0.0;
  for (size_t i = 0; i < layers; ++i) {
    s += pruner.SkippableBlockFraction(i, block);
  }
  return s / static_cast<double>(layers);
}

// Retrains with the given grad/weight masking hooks, evaluating after
// `short_epochs` (constrained budget) and after `long_epochs` (ample
// budget). ADMM's pre-conditioning matters most in the first regime.
struct RetrainAccs {
  double short_budget = 0.0;
  double long_budget = 0.0;
};

template <typename Pruner>
RetrainAccs MaskedRetrain(nn::Module& model, Pruner& pruner,
                          const std::vector<nn::Batch>& train,
                          const std::vector<nn::Batch>& test,
                          int short_epochs, int long_epochs) {
  nn::Sgd opt(model.Params(),
              {.lr = 0.02f, .momentum = 0.9f, .weight_decay = 0.0f});
  nn::WarmupCosineLr schedule(0.02f, 1, long_epochs);
  nn::TrainOptions opts;
  opts.post_backward = [&pruner]() { pruner.MaskGradients(); };
  opts.post_step = [&pruner]() { pruner.ReapplyMasks(); };
  RetrainAccs accs;
  for (int e = 0; e < long_epochs; ++e) {
    opt.set_lr(schedule.LrAt(e));
    nn::TrainEpoch(model, opt, train, opts);
    if (e + 1 == short_epochs) {
      accs.short_budget = nn::Evaluate(model, test).accuracy;
    }
  }
  accs.long_budget = nn::Evaluate(model, test).accuracy;
  return accs;
}

}  // namespace

int main() {
  SetLogLevel(LogLevel::Warning);
  Rng rng(101);
  data::SyntheticVideoConfig dcfg;
  dcfg.num_classes = kClasses;
  dcfg.frames = 6;
  dcfg.height = 10;
  dcfg.width = 10;
  data::SyntheticVideoDataset dataset(dcfg);
  const auto train = dataset.MakeBatches(96, 8, rng);
  const auto test = dataset.MakeBatches(48, 8, rng);

  models::TinyR2Plus1dConfig mcfg;
  mcfg.num_classes = kClasses;
  mcfg.stem_channels = 4;
  mcfg.stage1_channels = 12;
  mcfg.stage2_channels = 12;
  models::TinyR2Plus1d model(mcfg, rng);

  // ---- Pretrain the dense baseline to (near) convergence ----
  nn::Sgd opt(model.Params(),
              {.lr = 0.06f, .momentum = 0.9f, .weight_decay = 0.0f});
  nn::WarmupCosineLr pre_schedule(0.06f, 2, 18);
  for (int e = 0; e < 18; ++e) {
    opt.set_lr(pre_schedule.LrAt(e));
    nn::TrainEpoch(model, opt, train, {});
  }
  const double base_acc = nn::Evaluate(model, test).accuracy;
  const std::vector<TensorF> pretrained = Snapshot(model);
  const core::BlockConfig block{4, 4};

  constexpr int kShort = 3, kLong = 10;
  report::Table table("Accuracy under pruning (synthetic substitute for "
                      "UCF101; paper: 89.0% dense vs 88.66% ADMM-pruned)");
  table.Header({"Scheme", "Sparsity target", "Acc after prune",
                "Retrain (3 ep)", "Retrain (10 ep)", "Skippable blocks"});
  table.Row({"dense baseline", "0%", report::Table::Pct(base_acc),
             report::Table::Pct(base_acc), report::Table::Pct(base_acc),
             "0%"});

  auto prunable_specs = [&]() {
    std::vector<core::PruneLayerSpec> specs;
    for (nn::Conv3d* c : model.PrunableConvs()) {
      specs.push_back({&c->weight(), block, kEta, c->name()});
    }
    return specs;
  };

  // ---- ADMM blockwise (the paper's method) ----
  {
    Restore(model, pretrained);
    core::AdmmConfig admm_cfg;
    admm_cfg.rho_schedule = {0.003, 0.03, 0.3};
    core::AdmmPruner pruner(prunable_specs(), admm_cfg);
    core::PipelineConfig cfg;
    cfg.admm = admm_cfg;
    cfg.epochs_per_round = 3;
    cfg.retrain_epochs = kShort;
    cfg.admm_lr = 0.02f;
    cfg.retrain_lr = 0.02f;
    const core::PipelineResult r =
        core::RunAdmmPipeline(model, pruner, train, test, cfg);
    const RetrainAccs more =
        MaskedRetrain(model, pruner, train, test, 0, kLong - kShort);
    table.Row({"ADMM blockwise (ours)", report::Table::Pct(kEta),
               report::Table::Pct(r.hard_prune_test_acc),
               report::Table::Pct(r.retrained_test_acc),
               report::Table::Pct(more.long_budget),
               report::Table::Pct(kEta)});
  }

  // ---- One-shot blockwise (no ADMM) ----
  {
    Restore(model, pretrained);
    core::AdmmConfig admm_cfg;
    admm_cfg.rho_schedule = {0.0};  // rounds carry no proximal pull
    core::AdmmPruner pruner(prunable_specs(), admm_cfg);
    core::PipelineConfig cfg;
    cfg.admm = admm_cfg;
    cfg.epochs_per_round = 0;  // skip ADMM training entirely
    cfg.retrain_epochs = kShort;
    cfg.retrain_lr = 0.02f;
    const core::PipelineResult r =
        core::RunAdmmPipeline(model, pruner, train, test, cfg);
    const RetrainAccs more =
        MaskedRetrain(model, pruner, train, test, 0, kLong - kShort);
    table.Row({"one-shot blockwise", report::Table::Pct(kEta),
               report::Table::Pct(r.hard_prune_test_acc),
               report::Table::Pct(r.retrained_test_acc),
               report::Table::Pct(more.long_budget),
               report::Table::Pct(kEta)});
  }

  // ---- Non-structured magnitude pruning ----
  {
    Restore(model, pretrained);
    std::vector<core::MagnitudePruner::LayerSpec> specs;
    for (nn::Conv3d* c : model.PrunableConvs()) {
      specs.push_back({&c->weight(), kEta, c->name()});
    }
    core::MagnitudePruner pruner(specs);
    pruner.HardPrune();
    const double after_prune = nn::Evaluate(model, test).accuracy;
    const RetrainAccs accs =
        MaskedRetrain(model, pruner, train, test, kShort, kLong);
    table.Row({"magnitude (non-structured)", report::Table::Pct(kEta),
               report::Table::Pct(after_prune),
               report::Table::Pct(accs.short_budget),
               report::Table::Pct(accs.long_budget),
               report::Table::Pct(
                   AvgSkippable(pruner, specs.size(), block))});
  }

  // ---- Structured filter pruning ----
  {
    Restore(model, pretrained);
    std::vector<core::FilterPruner::LayerSpec> specs;
    for (nn::Conv3d* c : model.PrunableConvs()) {
      specs.push_back({&c->weight(), kEta, c->name()});
    }
    core::FilterPruner pruner(specs);
    pruner.HardPrune();
    const double after_prune = nn::Evaluate(model, test).accuracy;
    const RetrainAccs accs =
        MaskedRetrain(model, pruner, train, test, kShort, kLong);
    table.Row({"filter (structured)", report::Table::Pct(kEta),
               report::Table::Pct(after_prune),
               report::Table::Pct(accs.short_budget),
               report::Table::Pct(accs.long_budget),
               report::Table::Pct(
                   AvgSkippable(pruner, specs.size(), block))});
  }

  table.Print();
  std::printf(
      "\nReading: with a constrained retraining budget (3 epochs) ADMM's\n"
      "pre-conditioning recovers more accuracy than one-shot blockwise\n"
      "pruning; with ample retraining both converge (the paper retrains 100\n"
      "epochs and reports near-dense accuracy). Magnitude pruning retains\n"
      "accuracy but yields ~0%% skippable blocks, i.e. no FPGA speedup —\n"
      "the hardware-awareness argument of Section I.\n");
  return 0;
}
