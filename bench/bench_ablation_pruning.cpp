// Ablation over the pruning ratios eta — the latency/ops trade-off
// curve. Sweeps the conv2_x/conv3_x targets around the paper's
// (0.9, 0.8) point and reports surviving ops, modeled latency and
// speedup, i.e. the series a "speedup vs pruning rate" figure plots.
#include <cstdio>

#include "fpga/scheduler.h"
#include "report/table.h"

using namespace hwp3d;

int main() {
  const fpga::FpgaDevice dev = fpga::Zcu102();
  fpga::NetworkScheduler sched(fpga::PaperTilingTn8(), fpga::Ports{}, dev,
                               150.0);

  const models::NetworkSpec dense = models::MakeR2Plus1DSpec();
  const double unpruned_ms = sched.Evaluate(dense).latency_ms;
  const double total_ops = dense.TotalOps();

  struct EtaPoint {
    double eta2, eta3;
  };
  const EtaPoint points[] = {{0.0, 0.0},  {0.3, 0.2},  {0.5, 0.4},
                             {0.7, 0.6},  {0.8, 0.7},  {0.9, 0.8},
                             {0.95, 0.9}, {0.98, 0.95}};

  report::Table table(
      "Ablation — pruning ratio sweep on R(2+1)D, (Tm,Tn)=(64,8)");
  table.Header({"eta conv2_x", "eta conv3_x", "Ops kept (G)", "Ops rate",
                "Latency (ms)", "Speedup"});
  for (const EtaPoint& p : points) {
    models::NetworkSpec spec = models::MakeR2Plus1DSpec();
    for (auto& l : spec.layers) {
      if (l.group == "conv2_x") l.eta = p.eta2;
      if (l.group == "conv3_x") l.eta = p.eta3;
    }
    const fpga::SpecMasks masks = fpga::GenerateSpecMasks(spec, {64, 8});
    const fpga::NetworkPerfReport r = sched.Evaluate(spec, &masks);
    table.Row({report::Table::Pct(p.eta2), report::Table::Pct(p.eta3),
               report::Table::Num(2.0 * masks.kept_macs / 1e9, 1),
               report::Table::Ratio(total_ops / (2.0 * masks.kept_macs), 2),
               report::Table::Num(r.latency_ms, 0),
               report::Table::Ratio(unpruned_ms / r.latency_ms, 2)});
  }
  table.Print();
  std::printf(
      "\nReading: speedup saturates once conv2_x/conv3_x no longer dominate\n"
      "the schedule (Amdahl) — the paper's (90%%, 80%%) point buys ~2.6x;\n"
      "pruning harder returns little because conv4_x/conv5_x and conv1 are\n"
      "untouched.\n");
  return 0;
}
